//! Property-based equivalence of the delta-refresh pipeline: after an
//! arbitrary sequence of data mutations, draining the core change log
//! through [`DerivedMaintainer::apply_changes`] must leave a derived
//! subclass with exactly the membership a full `refresh_derived_class`
//! (re-evaluation over the whole parent extent) would compute.

use isis::prelude::*;
use isis_sample::{instrumental_music, InstrumentalMusic};
use proptest::prelude::*;

/// A generated atom over musicians: `lhs-map op constant-set`.
#[derive(Debug, Clone)]
struct GenAtom {
    /// 0 = plays, 1 = plays∘family, 2 = union
    lhs: u8,
    op_idx: u8,
    negated: bool,
    consts: Vec<u8>,
}

fn atom_strategy() -> impl Strategy<Value = GenAtom> {
    (
        0u8..3,
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..3),
    )
        .prop_map(|(lhs, op_idx, negated, consts)| GenAtom {
            lhs,
            op_idx,
            negated,
            consts,
        })
}

/// One generated data mutation; indices are taken modulo the live pools.
#[derive(Debug, Clone)]
struct GenOp {
    kind: u8,
    a: u8,
    b: u8,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    (0u8..6, any::<u8>(), any::<u8>()).prop_map(|(kind, a, b)| GenOp { kind, a, b })
}

fn build_atom(im: &InstrumentalMusic, yes: EntityId, g: &GenAtom) -> Atom {
    let (lhs, pool_class, pool): (Map, ClassId, Vec<EntityId>) = match g.lhs {
        0 => (
            Map::single(im.plays),
            im.instruments,
            im.all_instruments.clone(),
        ),
        1 => (
            Map::new(vec![im.plays, im.family]),
            im.families,
            vec![im.brass, im.woodwind, im.stringed, im.keyboard],
        ),
        _ => (
            Map::single(im.union_attr),
            im.db.predefined(BaseKind::Booleans),
            vec![yes],
        ),
    };
    let ops = [
        CompareOp::SetEq,
        CompareOp::Subset,
        CompareOp::Superset,
        CompareOp::Match,
    ];
    let anchors: Vec<EntityId> = g
        .consts
        .iter()
        .map(|i| pool[*i as usize % pool.len()])
        .collect();
    Atom::new(
        lhs,
        Operator {
            op: ops[g.op_idx as usize % ops.len()],
            negated: g.negated,
        },
        Rhs::constant(pool_class, anchors),
    )
}

/// Applies one generated mutation to the live database. Returns `false`
/// when the op degenerates (e.g. deleting from an emptied pool).
fn apply_op(
    im: &mut InstrumentalMusic,
    live: &mut Vec<EntityId>,
    fresh: &mut u32,
    op: &GenOp,
) -> bool {
    let yes = im.db.boolean(true);
    let no = im.db.boolean(false);
    match op.kind {
        // Replace a musician's instrument set with one or two instruments.
        0 => {
            if live.is_empty() {
                return false;
            }
            let m = live[op.a as usize % live.len()];
            let i1 = im.all_instruments[op.b as usize % im.all_instruments.len()];
            let i2 = im.all_instruments[(op.b as usize / 7) % im.all_instruments.len()];
            im.db.assign_multi(m, im.plays, [i1, i2]).unwrap();
        }
        // Add one instrument to a musician's set.
        1 => {
            if live.is_empty() {
                return false;
            }
            let m = live[op.a as usize % live.len()];
            let i = im.all_instruments[op.b as usize % im.all_instruments.len()];
            im.db.add_value(m, im.plays, i).unwrap();
        }
        // Flip a musician's union membership.
        2 => {
            if live.is_empty() {
                return false;
            }
            let m = live[op.a as usize % live.len()];
            let v = if op.b.is_multiple_of(2) { yes } else { no };
            im.db.assign_single(m, im.union_attr, v).unwrap();
        }
        // Reclassify an instrument's family (hits the plays∘family map).
        3 => {
            let i = im.all_instruments[op.a as usize % im.all_instruments.len()];
            let fams = [im.brass, im.woodwind, im.stringed, im.keyboard];
            let f = fams[op.b as usize % fams.len()];
            im.db.assign_single(i, im.family, f).unwrap();
        }
        // Insert a new musician (joins the parent extent with no values).
        4 => {
            *fresh += 1;
            let id = im
                .db
                .insert_entity(im.musicians, &format!("gen_musician_{fresh}"))
                .unwrap();
            live.push(id);
        }
        // Delete a musician (leaves the parent extent entirely).
        _ => {
            if live.len() <= 2 {
                return false;
            }
            let idx = op.a as usize % live.len();
            let m = live.swap_remove(idx);
            im.db.delete_entity(m).unwrap();
        }
    }
    true
}

/// Drains the delta log through the maintainer, session-style: the
/// maintainer's own membership writes are re-read as echoes until the log
/// runs dry.
fn drain(db: &mut Database, maint: &mut DerivedMaintainer, cursor: &mut u64) {
    for _ in 0..8 {
        let cs = db.changes_since(*cursor).expect("delta window evicted");
        if cs.is_empty() {
            return;
        }
        *cursor = db.delta_epoch();
        maint.apply_changes(db, &cs).unwrap();
    }
    let cs = db.changes_since(*cursor).expect("delta window evicted");
    assert!(cs.is_empty(), "delta drain did not converge");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random predicate + random mutation sequence: the delta path and the
    /// full re-evaluation select exactly the same members.
    #[test]
    fn delta_refresh_matches_full_refresh(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
        ops in proptest::collection::vec(op_strategy(), 1..12),
        drain_each in any::<bool>(),
    ) {
        let mut im = instrumental_music().unwrap();
        let yes = im.db.boolean(true);
        let cs: Vec<Clause> = clauses
            .iter()
            .map(|atoms| Clause::new(atoms.iter().map(|g| build_atom(&im, yes, g)).collect()))
            .collect();
        let pred = if dnf { Predicate::dnf(cs) } else { Predicate::cnf(cs) };

        let derived = im.db.create_derived_subclass(im.musicians, "gen_derived").unwrap();
        im.db.commit_membership(derived, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, derived).unwrap();
        let mut cursor = im.db.delta_epoch();

        let mut live = im.all_musicians.clone();
        let mut fresh = 0u32;
        for op in &ops {
            apply_op(&mut im, &mut live, &mut fresh, op);
            if drain_each {
                drain(&mut im.db, &mut maint, &mut cursor);
            }
        }
        drain(&mut im.db, &mut maint, &mut cursor);

        let mut incremental: Vec<EntityId> =
            im.db.members(derived).unwrap().iter().collect();
        incremental.sort();
        let mut full: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.musicians, &pred)
            .unwrap()
            .iter()
            .collect();
        full.sort();
        prop_assert_eq!(
            &incremental, &full,
            "delta refresh diverged from full refresh for {} after {:?}",
            pred, ops
        );
        prop_assert!(im.db.is_consistent().unwrap());
    }
}
