//! Pooled-settle equivalence and fault surfacing (ISSUE 8 satellite).
//!
//! On a synthetic database whose parent extent holds 1e5 musicians, a
//! [`DerivedMaintainer::settle_with`] run over the shared [`EvalPool`]
//! must produce *exactly* the memberships — same members, same storage
//! order, same `(added, removed)` counts — as the serial settle over the
//! same affected set. And when a worker panics mid-shard, the panic must
//! surface as [`QueryError::WorkerPanic`] with **no** membership writes
//! applied (the two-phase contract: evaluation fully precedes writes).
//!
//! The panic hook (`test_hooks::PANIC_ON_ENTITY`) is a process-global
//! static, so everything here lives in one `#[test]` function, run
//! sequentially; the hook is armed and disarmed inside it.

use std::sync::atomic::Ordering;

use isis::prelude::*;
use isis_query::parallel::test_hooks;
use isis_query::{DerivedMaintainer, EvalPool, QueryError};
use isis_sample::{synthetic_scaled, SchemaShape, SynthSpec, ValueDist};

const SEED: u64 = 0x5E771E;

#[test]
fn pooled_settle_matches_serial_and_surfaces_worker_panics() {
    // 150k entities → 100k musicians: the affected set is the full parent
    // extent, meeting the 1e5-affected floor.
    let mut g = synthetic_scaled(SynthSpec {
        entities: 150_000,
        dist: ValueDist::Zipf,
        shape: SchemaShape::Wide,
        seed: SEED,
    })
    .unwrap();
    assert!(
        g.s.musician_ids.len() >= 100_000,
        "extent below the 1e5 floor"
    );

    // Membership tracks one tail instrument: `plays ~ {target}`. Assigning
    // `plays = [target]` provably makes a musician a member; assigning any
    // other instrument provably removes one.
    let target = *g.s.instrument_ids.last().unwrap();
    let other = g.s.instrument_ids[0];
    let pred = Predicate::cnf(vec![Clause::new(vec![Atom::new(
        Map::single(g.s.plays),
        CompareOp::Match,
        Rhs::constant(g.s.instruments, [target]),
    )])]);
    let derived =
        g.s.db
            .create_derived_subclass(g.s.musicians, "settle_target")
            .unwrap();
    g.s.db.commit_membership(derived, pred).unwrap();

    let affected: OrderedSet = g.s.musician_ids.iter().copied().collect();
    let pool = EvalPool::new(2);

    // --- Equivalence: serial and pooled arms on clones of the same state.
    // commit_membership already settled the initial extent, so force real
    // work: push musicians into membership and out of it.
    for k in 0..5_000usize {
        let m = g.s.musician_ids[(k * 31) % g.s.musician_ids.len()];
        let inst = if k % 2 == 0 { target } else { other };
        g.s.db.assign_multi(m, g.s.plays, [inst]).unwrap();
    }
    let mut db_serial = g.s.db.clone();
    let mut db_pool = g.s.db.clone();

    let maint_serial = DerivedMaintainer::new(&db_serial, derived).unwrap();
    let maint_pool = DerivedMaintainer::new(&db_pool, derived).unwrap();

    let serial_counts = maint_serial.settle(&mut db_serial, &affected).unwrap();
    let pool_counts = maint_pool
        .settle_with(&mut db_pool, &affected, Some(&pool))
        .unwrap();
    assert_eq!(serial_counts, pool_counts, "(added, removed) must match");
    assert!(
        serial_counts.0 + serial_counts.1 > 0,
        "the perturbation must force membership writes"
    );
    let serial_members = db_serial.members(derived).unwrap();
    let pool_members = db_pool.members(derived).unwrap();
    assert_eq!(
        serial_members.as_slice(),
        pool_members.as_slice(),
        "pooled settle must reproduce serial memberships in storage order"
    );

    // Both arms are converged now: a repeat settle is a no-op either way.
    assert_eq!(
        maint_serial.settle(&mut db_serial, &affected).unwrap(),
        (0, 0)
    );
    assert_eq!(
        maint_pool
            .settle_with(&mut db_pool, &affected, Some(&pool))
            .unwrap(),
        (0, 0)
    );

    // --- Fault surfacing: perturb again so a settle *would* write, arm
    // the hook on an entity deep in the affected list, and prove the
    // pooled settle fails with WorkerPanic and writes nothing.
    for k in 0..1_000usize {
        let m = g.s.musician_ids[(k * 53 + 7) % g.s.musician_ids.len()];
        let inst = if k % 2 == 0 { target } else { other };
        db_pool.assign_multi(m, g.s.plays, [inst]).unwrap();
    }
    let members_before = db_pool.members(derived).unwrap().clone();
    let trap = g.s.musician_ids[g.s.musician_ids.len() / 2];
    test_hooks::PANIC_ON_ENTITY.store(trap.raw(), Ordering::SeqCst);
    let res = maint_pool.settle_with(&mut db_pool, &affected, Some(&pool));
    test_hooks::PANIC_ON_ENTITY.store(u32::MAX, Ordering::SeqCst);
    match res {
        Err(QueryError::WorkerPanic(msg)) => {
            assert!(
                msg.contains("injected worker fault"),
                "panic payload must survive the worker boundary: {msg}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    assert!(
        db_pool.members(derived).unwrap().set_eq(&members_before),
        "a failed settle must not write memberships"
    );

    // With the hook disarmed the same settle succeeds and writes.
    let (added, removed) = maint_pool
        .settle_with(&mut db_pool, &affected, Some(&pool))
        .unwrap();
    assert!(added + removed > 0, "recovery settle must apply the writes");
}
