//! Property battery for the [`ProgramCache`] invalidation contract
//! (ISSUE 8 satellite): under *random interleavings* of data commits,
//! schema edits, and queries — including a capacity so small that entries
//! are constantly evicted — a cache-served answer must always equal a
//! from-scratch compile AND the core interpreter. A stale program (one
//! whose hoisted images or schema assumptions survived an edit they
//! shouldn't have) shows up as a divergence here.

use isis::prelude::*;
use isis_query::{PredicateProgram, ProgramCache};
use isis_sample::instrumental_music;
use proptest::prelude::*;

/// One step of a generated session.
#[derive(Debug, Clone)]
enum Step {
    /// Reassign a musician's `plays` (data-only delta: re-hoist path).
    Reassign(u8, u8),
    /// Move an instrument between families (data-only, but it moves the
    /// images mapped constants hoist — the stale-hoist trap).
    Refamily(u8, u8),
    /// Create a fresh base class (schema edit: must invalidate).
    NewClass(u8),
    /// Query predicate shape `i` and check every arm agrees.
    Query(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Reassign(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Step::Refamily(a, b)),
        any::<u8>().prop_map(Step::NewClass),
        any::<u8>().prop_map(Step::Query),
    ]
}

/// The predicate family under test: shapes that exercise identity
/// constants, mapped constants (hoisting), and a fallible ordering atom.
fn shape(im: &isis_sample::InstrumentalMusic, i: u8) -> Predicate {
    let insts: Vec<EntityId> = im.all_instruments.clone();
    let inst = insts[i as usize % insts.len()];
    match i % 4 {
        0 => Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [inst]),
        )])]),
        1 => Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.family),
            CompareOp::SetEq,
            Rhs::Constant {
                class: im.instruments,
                anchors: [inst].into_iter().collect(),
                map: Map::single(im.family),
            },
        )])]),
        2 => {
            let other = insts[(i as usize + 1) % insts.len()];
            Predicate::cnf(vec![
                Clause::new(vec![Atom::new(
                    Map::single(im.plays),
                    CompareOp::Match,
                    Rhs::constant(im.instruments, [inst]),
                )]),
                Clause::new(vec![Atom::new(
                    Map::single(im.plays),
                    CompareOp::Superset,
                    Rhs::constant(im.instruments, [other]),
                )]),
            ])
        }
        // Fails on any candidate whose plays-set reaches the ordering
        // atom: error identity is part of the contract.
        _ => Predicate::cnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Lt,
            Rhs::constant(im.instruments, [inst]),
        )])]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cache_never_serves_a_stale_program(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        capacity in prop_oneof![Just(1usize), Just(2), Just(128)],
    ) {
        let mut im = instrumental_music().unwrap();
        let cache = ProgramCache::with_capacity(capacity);
        let parents = [im.musicians, im.instruments];
        for step in &steps {
            match *step {
                Step::Reassign(a, b) => {
                    let m = im.all_musicians[a as usize % im.all_musicians.len()];
                    let inst = im.all_instruments[b as usize % im.all_instruments.len()];
                    im.db.assign_multi(m, im.plays, [inst]).unwrap();
                }
                Step::Refamily(a, b) => {
                    let inst = im.all_instruments[a as usize % im.all_instruments.len()];
                    let fams = [im.brass, im.woodwind, im.stringed, im.keyboard];
                    im.db
                        .assign_single(inst, im.family, fams[b as usize % fams.len()])
                        .unwrap();
                }
                Step::NewClass(a) => {
                    // Names must be unique; reuse attempts are fine to skip.
                    let _ = im.db.create_baseclass(&format!("cls_{a}"));
                }
                Step::Query(i) => {
                    let pred = shape(&im, i);
                    // Parent for shape 1 is instruments (family lives
                    // there); everything else queries musicians.
                    let parent = if i % 4 == 1 { parents[1] } else { parents[0] };
                    let cached = cache.with_program(
                        &im.db, parent, None, &pred, None,
                        |prog| prog.evaluate_extent(&im.db, parent),
                    );
                    let fresh = PredicateProgram::compile(&im.db, parent, &pred)
                        .map(|p| p.evaluate_extent(&im.db, parent))
                        .and_then(|r| r);
                    let interp = im.db.evaluate_derived_members(parent, &pred);
                    match (&cached, &fresh) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(a.as_slice(), b.as_slice(),
                            "cached != fresh compile for {}", pred),
                        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                        _ => panic!("arms disagree for {pred}: {cached:?} vs {fresh:?}"),
                    }
                    match (&cached, &interp) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(a.as_slice(), b.as_slice(),
                            "cached != interpreted for {}", pred),
                        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                        _ => panic!("arms disagree for {pred}: {cached:?} vs {interp:?}"),
                    }
                }
            }
        }
        prop_assert!(cache.len() <= capacity);
    }
}
