//! Property-based layout tests: for randomly shaped schemas, the forest
//! view never overlaps boxes, hit-testing round-trips, and both renderers
//! stay total and deterministic.

use isis::prelude::*;
use isis::views::{
    data_view, forest_view, network_view, render, DataViewInput, ForestViewOptions, PageSpec, Point,
};
use proptest::prelude::*;

/// A compact schema description the strategy generates: per baseclass, the
/// number of attributes, subclasses, sub-subclasses and groupings.
#[derive(Debug, Clone)]
struct SchemaShape {
    bases: Vec<(u8, u8, u8, bool)>, // (attrs, subclasses, grandchildren, grouping?)
    name_len: u8,
}

fn shape_strategy() -> impl Strategy<Value = SchemaShape> {
    (
        proptest::collection::vec((0u8..4, 0u8..3, 0u8..2, any::<bool>()), 1..6),
        1u8..18,
    )
        .prop_map(|(bases, name_len)| SchemaShape { bases, name_len })
}

fn build(shape: &SchemaShape) -> Database {
    let mut db = Database::new("prop");
    let strings = db.predefined(BaseKind::Strings);
    let pad = "x".repeat(shape.name_len as usize);
    for (bi, (attrs, subs, grands, grouping)) in shape.bases.iter().enumerate() {
        let base = db.create_baseclass(&format!("base{bi}_{pad}")).unwrap();
        let mut first_attr = None;
        for a in 0..*attrs {
            let id = db
                .create_attribute(
                    base,
                    &format!("a{bi}_{a}_{pad}"),
                    strings,
                    if a % 2 == 0 {
                        Multiplicity::Single
                    } else {
                        Multiplicity::Multi
                    },
                )
                .unwrap();
            first_attr.get_or_insert(id);
        }
        if *grouping {
            if let Some(attr) = first_attr {
                db.create_grouping(base, &format!("g{bi}_{pad}"), attr)
                    .unwrap();
            }
        }
        for s in 0..*subs {
            let sub = db
                .create_subclass(base, &format!("s{bi}_{s}_{pad}"))
                .unwrap();
            for g in 0..*grands {
                db.create_subclass(sub, &format!("gs{bi}_{s}_{g}_{pad}"))
                    .unwrap();
            }
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn forest_layout_never_overlaps(shape in shape_strategy()) {
        let db = build(&shape);
        let view = forest_view(&db, &ForestViewOptions::default()).unwrap();
        for (i, (na, ra)) in view.positions.iter().enumerate() {
            for (nb, rb) in view.positions.iter().skip(i + 1) {
                prop_assert!(!ra.intersects(rb), "{na} overlaps {nb}");
            }
        }
        // Every drawn box hit-tests back to itself at its centre.
        for (node, rect) in &view.positions {
            prop_assert_eq!(view.pick(Point::new(rect.cx(), rect.cy())), Some(*node));
        }
    }

    #[test]
    fn renderers_are_total_and_deterministic(shape in shape_strategy()) {
        let db = build(&shape);
        let scene = forest_view(&db, &ForestViewOptions::default()).unwrap().scene;
        let a1 = render::ascii::render(&scene);
        let a2 = render::ascii::render(&scene);
        prop_assert_eq!(&a1, &a2);
        let v1 = render::svg::render(&scene);
        let v2 = render::svg::render(&scene);
        prop_assert_eq!(&v1, &v2);
        prop_assert!(v1.starts_with("<svg"));
        prop_assert!(v1.trim_end().ends_with("</svg>"));
        // ASCII rows are rectangular enough: no row exceeds the declared
        // bounds wildly (sanity against runaway layout).
        let max = a1.lines().map(|l| l.len()).max().unwrap_or(0);
        prop_assert!(max < 4000);
    }

    #[test]
    fn every_class_renders_in_network_and_data_views(shape in shape_strategy()) {
        let db = build(&shape);
        let classes: Vec<ClassId> = db
            .classes()
            .filter(|(_, c)| !c.is_predefined())
            .map(|(id, _)| id)
            .collect();
        for c in classes {
            let n = network_view(&db, c).unwrap();
            prop_assert!(!n.scene.elements.is_empty());
            let d = data_view(
                &db,
                &DataViewInput {
                    pages: vec![PageSpec::new(SchemaNode::Class(c))],
                    prompt: vec![],
                },
            )
            .unwrap();
            prop_assert!(!d.scene.elements.is_empty());
        }
    }

    /// Manual placement (the move command) keeps pick() consistent with
    /// the drawn rectangles.
    #[test]
    fn moved_boxes_still_hit_test(shape in shape_strategy(), dx in -20i32..20, dy in 0i32..10) {
        let db = build(&shape);
        let some_class = db
            .classes()
            .find(|(_, c)| !c.is_predefined())
            .map(|(id, _)| id);
        let Some(target) = some_class else { return Ok(()) };
        let view = forest_view(
            &db,
            &ForestViewOptions {
                offsets: vec![(SchemaNode::Class(target), (dx, dy))],
                ..Default::default()
            },
        )
        .unwrap();
        let rect = view
            .positions
            .iter()
            .find(|(n, _)| *n == SchemaNode::Class(target))
            .unwrap()
            .1;
        // A drag may stack the box under a later-drawn one; the pick must
        // then resolve to the *topmost* box containing the point — i.e.
        // some box whose rectangle really contains it.
        let p = Point::new(rect.cx(), rect.cy());
        let picked = view.pick(p);
        prop_assert!(picked.is_some());
        let picked_rect = view
            .positions
            .iter()
            .find(|(n, _)| Some(*n) == picked)
            .unwrap()
            .1;
        prop_assert!(picked_rect.contains(p));
    }
}
