//! Property-based robustness tests for the storage codec: decoders must
//! never panic on arbitrary or mutated bytes, log-op encoding round-trips
//! for generated operations, and frames reject every corruption.

use isis::prelude::*;
use isis::store::{read_snapshot_bytes, write_snapshot_bytes, LogOp, SyncPolicy};
use proptest::prelude::*;

fn arb_logop() -> impl Strategy<Value = LogOp> {
    let s = "[a-z]{1,12}";
    prop_oneof![
        s.prop_map(LogOp::CreateBaseclass),
        (any::<u32>(), s).prop_map(|(c, n)| LogOp::CreateSubclass(ClassId::from_raw(c), n)),
        (any::<u32>(), s).prop_map(|(c, n)| LogOp::RenameClass(ClassId::from_raw(c), n)),
        any::<u32>().prop_map(|c| LogOp::DeleteClass(ClassId::from_raw(c))),
        (any::<u32>(), s, any::<bool>(), any::<u32>()).prop_map(|(c, n, m, vc)| {
            LogOp::CreateAttribute(
                ClassId::from_raw(c),
                n,
                isis_core::ValueClassSpec::Class(ClassId::from_raw(vc)),
                if m {
                    Multiplicity::Multi
                } else {
                    Multiplicity::Single
                },
            )
        }),
        (any::<u32>(), s).prop_map(|(b, n)| LogOp::InsertEntity(ClassId::from_raw(b), n)),
        any::<i64>().prop_map(|v| LogOp::Intern(Literal::Int(v))),
        "[ -~]{0,20}".prop_map(|v| LogOp::Intern(Literal::Str(v))),
        any::<bool>().prop_map(|v| LogOp::Intern(Literal::Bool(v))),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(e, a, v)| {
            LogOp::AssignSingle(
                EntityId::from_raw(e),
                AttrId::from_raw(a),
                EntityId::from_raw(v),
            )
        }),
        (
            any::<u32>(),
            any::<u32>(),
            proptest::collection::vec(any::<u32>(), 0..6)
        )
            .prop_map(|(e, a, vs)| LogOp::AssignMulti(
                EntityId::from_raw(e),
                AttrId::from_raw(a),
                vs.into_iter().map(EntityId::from_raw).collect(),
            )),
        (any::<u32>(), any::<u32>())
            .prop_map(|(e, c)| { LogOp::AddToClass(EntityId::from_raw(e), ClassId::from_raw(c)) }),
        any::<u32>().prop_map(|e| LogOp::DeleteEntity(EntityId::from_raw(e))),
        Just(LogOp::EnableMultipleInheritance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Log operations round-trip exactly.
    #[test]
    fn logop_roundtrip(op in arb_logop()) {
        let bytes = op.encode();
        prop_assert_eq!(LogOp::decode(&bytes).unwrap(), op);
    }

    /// Arbitrary bytes never panic the op decoder.
    #[test]
    fn logop_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = LogOp::decode(&bytes);
    }

    /// Arbitrary bytes never panic the snapshot decoder.
    #[test]
    fn snapshot_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = read_snapshot_bytes(&bytes);
    }

    /// Any single-byte mutation of a valid snapshot either fails to decode
    /// or decodes to the identical image (no silent corruption).
    #[test]
    fn snapshot_mutation_detected(pos in any::<prop::sample::Index>(), flip in 1u8..) {
        let im = isis_sample::instrumental_music().unwrap();
        let bytes = write_snapshot_bytes(&im.db);
        let mut bad = bytes.clone();
        let i = pos.index(bad.len());
        bad[i] ^= flip;
        match read_snapshot_bytes(&bad) {
            Err(_) => {}
            Ok(db) => prop_assert_eq!(db.to_image(), im.db.to_image()),
        }
    }

    /// A truncated snapshot never decodes successfully.
    #[test]
    fn snapshot_truncation_detected(cut in any::<prop::sample::Index>()) {
        let db = Database::new("t");
        let bytes = write_snapshot_bytes(&db);
        let i = cut.index(bytes.len().saturating_sub(1));
        prop_assert!(read_snapshot_bytes(&bytes[..i]).is_err());
    }
}

/// WAL round-trip of a *generated* op stream through an actual file,
/// interleaved with torn-tail cuts at arbitrary points.
#[test]
fn wal_file_roundtrip_with_random_ops() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let ops: Vec<LogOp> = (0..100)
        .map(|_| arb_logop().new_tree(&mut runner).unwrap().current())
        .collect();
    let dir = std::env::temp_dir().join(format!("isis_store_props_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fuzz.wal");
    {
        let mut wal = isis::store::WalFile::open(&path, SyncPolicy::OsFlush).unwrap();
        for op in &ops {
            wal.append(op).unwrap();
        }
    }
    let replay = isis::store::replay_log(&path).unwrap();
    assert_eq!(replay.ops, ops);
    assert!(!replay.torn_tail);
    // Cut at a few arbitrary byte positions: replay never fails, never
    // returns more ops than written, and the recovered prefix matches.
    let full = std::fs::read(&path).unwrap();
    for cut in [1usize, 7, full.len() / 3, full.len() / 2, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        let r = isis::store::replay_log(&path).unwrap();
        assert!(r.ops.len() <= ops.len());
        assert_eq!(&ops[..r.ops.len()], r.ops.as_slice());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
