//! Property-based equivalence of the four query engines: the ISIS
//! per-candidate evaluator, the compiled relational algebra plan, the
//! index-pruned evaluator, and the optimizer-reordered predicate — all must
//! select exactly the same entities for arbitrary generated predicates.
//!
//! This is the machine-checked form of §2's "these predicates provide the
//! full power of relational algebra".

use isis::prelude::*;
use isis_query::{compile_and_eval, optimize, IndexedEvaluator};
use isis_sample::instrumental_music;
use proptest::prelude::*;

/// A generated atom over the Instrumental_Music schema, ranging over
/// musicians: `lhs-map op constant-set`.
#[derive(Debug, Clone)]
struct GenAtom {
    /// 0 = plays, 1 = plays family, 2 = union, 3 = identity
    lhs: u8,
    op_idx: u8,
    negated: bool,
    /// Indices into the relevant constant pool.
    consts: Vec<u8>,
}

fn atom_strategy() -> impl Strategy<Value = GenAtom> {
    (
        0u8..4,
        0u8..6, // the six set operators (ordering ops excluded: maps are multivalued)
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..3),
    )
        .prop_map(|(lhs, op_idx, negated, consts)| GenAtom {
            lhs,
            op_idx,
            negated,
            consts,
        })
}

fn build_atom(im: &isis::sample::InstrumentalMusic, yes: EntityId, g: &GenAtom) -> Atom {
    let (lhs, pool_class, pool): (Map, ClassId, Vec<EntityId>) = match g.lhs {
        0 => (
            Map::single(im.plays),
            im.instruments,
            im.all_instruments.clone(),
        ),
        1 => (
            Map::new(vec![im.plays, im.family]),
            im.families,
            vec![
                im.brass,
                im.woodwind,
                im.stringed,
                im.percussion,
                im.keyboard,
            ],
        ),
        2 => (
            Map::single(im.union_attr),
            im.db.predefined(BaseKind::Booleans),
            vec![yes],
        ),
        _ => (Map::identity(), im.musicians, im.all_musicians.clone()),
    };
    let ops = [
        CompareOp::SetEq,
        CompareOp::Subset,
        CompareOp::Superset,
        CompareOp::ProperSubset,
        CompareOp::ProperSuperset,
        CompareOp::Match,
    ];
    let op = ops[g.op_idx as usize % ops.len()];
    let anchors: Vec<EntityId> = g
        .consts
        .iter()
        .map(|i| pool[*i as usize % pool.len()])
        .collect();
    Atom::new(
        lhs,
        Operator {
            op,
            negated: g.negated,
        },
        Rhs::constant(pool_class, anchors),
    )
}

fn build_predicate(
    im: &isis::sample::InstrumentalMusic,
    yes: EntityId,
    clauses: &[Vec<GenAtom>],
    dnf: bool,
) -> Predicate {
    let cs = clauses
        .iter()
        .map(|atoms| Clause::new(atoms.iter().map(|g| build_atom(im, yes, g)).collect()))
        .collect();
    if dnf {
        Predicate::dnf(cs)
    } else {
        Predicate::cnf(cs)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn four_engines_agree(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 0..3),
            0..3
        ),
        dnf in any::<bool>(),
    ) {
        let mut im = instrumental_music().unwrap();
        let yes = im.db.boolean(true);
        let pred = build_predicate(&im, yes, &clauses, dnf);

        // 1. The reference evaluator.
        let reference: Vec<EntityId> = {
            let mut v: Vec<EntityId> = im
                .db
                .evaluate_derived_members(im.musicians, &pred)
                .unwrap()
                .iter()
                .collect();
            v.sort();
            v
        };

        // 2. Compiled relational algebra.
        let mut ra = compile_and_eval(&im.db, im.musicians, &pred).unwrap();
        ra.sort();
        prop_assert_eq!(&ra, &reference, "RA disagrees for {}", pred);

        // 3. Index-pruned evaluation.
        let mut indexed = IndexedEvaluator::new();
        indexed.add_index(&im.db, im.plays).unwrap();
        indexed.add_index(&im.db, im.union_attr).unwrap();
        let mut idx: Vec<EntityId> = indexed
            .evaluate(&im.db, im.musicians, &pred)
            .unwrap()
            .iter()
            .collect();
        idx.sort();
        prop_assert_eq!(&idx, &reference, "indexed disagrees for {}", pred);

        // 4. Optimizer-reordered predicate.
        let (opt, _) = optimize(&im.db, im.musicians, &pred, Some(indexed.service())).unwrap();
        let mut o: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.musicians, &opt)
            .unwrap()
            .iter()
            .collect();
        o.sort();
        prop_assert_eq!(&o, &reference, "optimized disagrees for {}", pred);
    }

    /// Committing a generated predicate and re-loading the database through
    /// the storage engine preserves the query's answer set.
    #[test]
    fn committed_predicates_survive_persistence(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
    ) {
        let mut im = instrumental_music().unwrap();
        let yes = im.db.boolean(true);
        let pred = build_predicate(&im, yes, &clauses, dnf);
        let class = im.db.create_derived_subclass(im.musicians, "generated").unwrap();
        im.db.commit_membership(class, pred).unwrap();
        let before: Vec<EntityId> = im.db.members(class).unwrap().iter().collect();

        let bytes = isis::store::write_snapshot_bytes(&im.db);
        let back = isis::store::read_snapshot_bytes(&bytes).unwrap();
        let after: Vec<EntityId> = back.members(class).unwrap().iter().collect();
        prop_assert_eq!(before, after);
        // And refreshing re-derives the same extent.
        let mut back = back;
        back.refresh_derived_class(class).unwrap();
        let refreshed: Vec<EntityId> = back.members(class).unwrap().iter().collect();
        let orig: Vec<EntityId> = im.db.members(class).unwrap().iter().collect();
        prop_assert_eq!(refreshed, orig);
    }
}

/// The DNF↔CNF relationship is honoured: a one-clause, one-atom predicate
/// means the same under both readings.
#[test]
fn single_atom_reading_independent() {
    let im = instrumental_music().unwrap();
    let atom = Atom::new(
        Map::single(im.plays),
        CompareOp::Match,
        Rhs::constant(im.instruments, [im.piano]),
    );
    let dnf = Predicate::dnf(vec![Clause::new(vec![atom.clone()])]);
    let cnf = Predicate::cnf(vec![Clause::new(vec![atom])]);
    let a = im.db.evaluate_derived_members(im.musicians, &dnf).unwrap();
    let b = im.db.evaluate_derived_members(im.musicians, &cnf).unwrap();
    assert!(a.set_eq(&b));
}
