//! Structural verification of every figure of the paper against the
//! replayed §4.2 session — the reproduction's "evaluation section".
//!
//! Each test asserts the content the paper's figure shows: which boxes,
//! which highlights, which windows, which hand position.

use isis::holiday::{diagram1_scene, run_holiday_party};
use isis::sample::instrumental_music;
use isis::views::{ArrowKind, Element, Emphasis, Scene};
use isis_session::Transcript;

fn transcript() -> Transcript {
    let (_s, t) = run_holiday_party(None).expect("session replays");
    t
}

fn figure<'a>(t: &'a Transcript, name: &str) -> &'a Scene {
    t.scene(name).unwrap_or_else(|| panic!("missing {name}"))
}

#[test]
fn diagram1_shows_both_levels_and_the_loop() {
    let s = diagram1_scene();
    assert!(s.has_text("inheritance forest"));
    assert!(s.has_text("semantic network"));
    assert!(s.has_text("predicate worksheet"));
    let txt = isis::views::render::ascii::render(&s);
    assert!(txt.contains("SCHEMA LEVEL"));
    assert!(txt.contains("DATA LEVEL"));
    assert!(txt.contains("view contents"));
    assert!(txt.contains("select constant (loop: S, D unchanged)"));
}

#[test]
fn fig01_forest_with_soloists_selected() {
    let t = transcript();
    let s = figure(&t, "fig01_forest_soloists");
    // The four baseclasses in reverse video, subclasses and groupings.
    for base in ["musicians", "instruments", "music_groups", "families"] {
        assert!(s.has_text_with(base, Emphasis::Reverse), "{base}");
    }
    for node in [
        "soloists",
        "play_strings",
        "by_instrument",
        "work_status",
        "by_family",
    ] {
        assert!(s.has_text(node), "{node}");
    }
    // The hand icon is present (pointing at soloists).
    assert!(s.hand().is_some());
    // Attribute sections: own attributes only in this view; play_strings
    // shows in_group but not (inherited) plays in its own box — plays
    // appears once, in musicians' box.
    let plays_count = s.texts().filter(|(t, _)| *t == "plays").count();
    assert_eq!(plays_count, 1);
}

#[test]
fn fig02_network_of_instruments() {
    let t = transcript();
    let s = figure(&t, "fig02_network_instruments");
    assert!(s.has_text_with("instruments", Emphasis::Reverse));
    // Outgoing arcs: name → STRINGS, family → families, popular → YES/NO.
    for target in ["STRINGS", "families", "YES/NO"] {
        assert!(s.has_text(target), "{target}");
    }
    // Incoming: musicians.plays, a double (multivalued) arrow.
    assert!(s.has_text("musicians"));
    let labels: Vec<&str> = s
        .elements
        .iter()
        .filter_map(|e| match e {
            Element::Arrow { label: Some(l), .. } => Some(l.as_str()),
            _ => None,
        })
        .collect();
    assert!(labels.contains(&"plays"));
    assert!(labels.contains(&"family"));
    assert!(
        s.count(|e| matches!(
            e,
            Element::Arrow {
                kind: ArrowKind::Double,
                ..
            }
        )) >= 1
    );
}

#[test]
fn fig03_flute_and_oboe_selected() {
    let t = transcript();
    let s = figure(&t, "fig03_data_select_oboe");
    assert!(s.has_text_with("flute", Emphasis::Bold));
    assert!(s.has_text_with("oboe", Emphasis::Bold));
    assert!(s.has_text_with("piano", Emphasis::Plain));
    // All attributes with inherited ones at the data level.
    for a in ["name", "family", "popular"] {
        assert!(s.has_text(a));
    }
    assert!(s.has_text("select/reject"));
}

#[test]
fn fig04_follow_family_shows_the_error() {
    let t = transcript();
    let s = figure(&t, "fig04_follow_family");
    // brass is the only highlighted family — the data error.
    assert!(s.has_text_with("brass", Emphasis::Bold));
    assert!(s.has_text_with("woodwind", Emphasis::Plain));
    // Two overlapping pages with a follow arrow.
    assert!(
        s.count(|e| matches!(
            e,
            Element::Frame {
                style: isis::views::FrameStyle::Page,
                ..
            }
        )) >= 2
    );
    assert!(s.count(|e| matches!(e, Element::Arrow { .. })) >= 1);
}

#[test]
fn fig05_reassignment_corrected_both() {
    let (session, t) = run_holiday_party(None).unwrap();
    let s = figure(&t, "fig05_reassign_family");
    // The text window reports the simultaneous update.
    assert!(s
        .texts()
        .any(|(txt, _)| txt.contains("assigned family = woodwind for 2 entities")));
    // And the database agrees.
    let im = instrumental_music().unwrap();
    let db = session.database();
    for inst in ["flute", "oboe"] {
        let e = db.entity_by_name(im.instruments, inst).unwrap();
        let fam = db.attr_value_set(e, im.family).unwrap();
        let name = db.entity_name(fam.as_singleton().unwrap()).unwrap();
        assert_eq!(name, "woodwind");
    }
}

#[test]
fn fig06_grouping_page_with_percussion_selected() {
    let t = transcript();
    let s = figure(&t, "fig06_grouping_percussion");
    assert!(s.has_text("by_family"));
    assert!(s
        .texts()
        .any(|(txt, e)| txt.contains("percussion") && e == Emphasis::Bold));
    // The grouping's sets show their sizes.
    assert!(s.texts().any(|(txt, _)| txt.contains("(2)")));
}

#[test]
fn fig07_follow_into_instruments_highlights_percussion_members() {
    let t = transcript();
    let s = figure(&t, "fig07_follow_into_instruments");
    assert!(s.has_text_with("drums", Emphasis::Bold));
    assert!(s.has_text_with("cymbals", Emphasis::Bold));
    assert!(s.has_text_with("viola", Emphasis::Plain));
}

#[test]
fn fig08_forest_gains_quartets() {
    let t = transcript();
    let s = figure(&t, "fig08_create_quartets");
    assert!(s.has_text("quartets"));
    assert!(s.hand().is_some());
    // fig01 did not have it.
    assert!(!figure(&t, "fig01_forest_soloists").has_text("quartets"));
}

#[test]
fn fig09_worksheet_atoms_and_cnf() {
    let t = transcript();
    let s = figure(&t, "fig09_worksheet_quartets");
    assert!(s.title.contains("quartets"));
    assert!(s.title.contains("CNF"));
    // Atom list shows both atoms with resolved names.
    assert!(s.texts().any(|(txt, _)| txt.contains("size = {4}")));
    assert!(s
        .texts()
        .any(|(txt, _)| txt.contains("members plays") && txt.contains("{piano}")));
    // The class stack of the last-edited atom (members plays).
    for c in ["music_groups", "musicians", "instruments"] {
        assert!(s.has_text(c) || s.has_text_with(c, Emphasis::Bold), "{c}");
    }
}

#[test]
fn fig10_derivation_with_hand_icon() {
    let t = transcript();
    let s = figure(&t, "fig10_derivation_all_inst");
    assert!(s.title.contains("all_inst"));
    assert!(s.hand().is_some(), "the unary hand operator is shown");
}

#[test]
fn fig11_only_edith_highlighted() {
    let t = transcript();
    let s = figure(&t, "fig11_focus_edith");
    assert!(s.has_text_with("Edith", Emphasis::Bold));
    for other in ["Ian", "Kurt", "Donna"] {
        assert!(s.has_text_with(other, Emphasis::Plain), "{other}");
    }
}

#[test]
fn fig12_forest_with_edith_plays_under_instruments() {
    let (session, t) = run_holiday_party(None).unwrap();
    let s = figure(&t, "fig12_forest_edith_plays");
    assert!(s.has_text("edith_plays"));
    assert!(s.hand().is_some());
    let db = session.database();
    let im = instrumental_music().unwrap();
    let ep = db.class_by_name("edith_plays").unwrap();
    assert_eq!(db.class(ep).unwrap().parent, Some(im.instruments));
}

#[test]
fn session_outcome_matches_the_narrative() {
    let (session, _t) = run_holiday_party(None).unwrap();
    let db = session.database();
    let im = instrumental_music().unwrap();
    // "Finding only one quartet has met his requirements."
    let quartets = db.class_by_name("quartets").unwrap();
    let members: Vec<String> = db
        .members(quartets)
        .unwrap()
        .iter()
        .map(|e| db.entity_name(e).unwrap().to_string())
        .collect();
    assert_eq!(members, vec!["LaBelle Musique"]);
    // all_inst lists the four instruments of the quartet.
    let all_inst = db.attr_by_name(quartets, "all_inst").unwrap();
    let labelle = db
        .entity_by_name(im.music_groups, "LaBelle Musique")
        .unwrap();
    let mut played: Vec<String> = db
        .attr_value_set(labelle, all_inst)
        .unwrap()
        .iter()
        .map(|e| db.entity_name(e).unwrap().to_string())
        .collect();
    played.sort();
    assert_eq!(played, vec!["cello", "piano", "viola", "violin"]);
    // edith_plays = {viola, violin}.
    let ep = db.class_by_name("edith_plays").unwrap();
    let mut remembered: Vec<String> = db
        .members(ep)
        .unwrap()
        .iter()
        .map(|e| db.entity_name(e).unwrap().to_string())
        .collect();
    remembered.sort();
    assert_eq!(remembered, vec!["viola", "violin"]);
    // The whole thing stayed consistent.
    assert!(db.is_consistent().unwrap());
}
