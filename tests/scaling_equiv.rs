//! The scaling equivalence battery (ISSUE 8 satellite): on a 100k-entity
//! synthetic database, query answers served through the [`IndexService`]
//! program cache must be *identical* — same members, same order, same
//! errors — to per-query recompilation through the same path and to the
//! core interpreter, across navigation rounds interleaved with the data
//! and schema edits that exercise every arm of the cache's invalidation
//! contract (pure hit, data-only re-hoist, schema-edit recompile).

use isis::prelude::*;
use isis_query::{IndexService, PredicateProgram};
use isis_sample::workload::navigation_chain;
use isis_sample::{synthetic_scaled, ScaledMusic, SchemaShape, SynthSpec, ValueDist};

const SEED: u64 = 0xE8;

fn scaled_db() -> ScaledMusic {
    synthetic_scaled(SynthSpec {
        entities: 100_000,
        dist: ValueDist::Zipf,
        shape: SchemaShape::Wide,
        seed: 0x100_000,
    })
    .unwrap()
}

/// A predicate that fails during evaluation: `plays < {instrument}` orders
/// a multi-valued set, which the evaluator rejects on the first candidate
/// that reaches the atom.
fn error_pred(s: &ScaledMusic, inst: EntityId) -> Predicate {
    Predicate::cnf(vec![
        Clause::new(vec![Atom::new(
            Map::single(s.s.plays),
            CompareOp::Match,
            Rhs::constant(s.s.instruments, [inst]),
        )]),
        Clause::new(vec![Atom::new(
            Map::single(s.s.plays),
            CompareOp::Lt,
            Rhs::constant(s.s.instruments, [inst]),
        )]),
    ])
}

/// Cached (svc) vs freshly-compiled-per-query (svc_fresh, cache cleared
/// before each lookup) — both through the identical pruned path — and,
/// when `deep` is set, additionally against the interpreter and a raw
/// compiled extent scan. All four must agree exactly, on success and on
/// failure.
fn check_arms(
    svc: &IndexService,
    svc_fresh: &IndexService,
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    deep: bool,
) {
    let cached = svc.evaluate(db, parent, pred);
    svc_fresh.program_cache().clear();
    let fresh = svc_fresh.evaluate(db, parent, pred);
    match (&cached, &fresh) {
        (Ok(a), Ok(b)) => assert_eq!(a.as_slice(), b.as_slice(), "cached != fresh for {pred}"),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "cached/fresh errors differ for {pred}"),
        _ => panic!("one arm failed for {pred}: cached={cached:?} fresh={fresh:?}"),
    }
    if !deep {
        return;
    }
    let interp = db.evaluate_derived_members(parent, pred);
    let compiled = PredicateProgram::compile(db, parent, pred)
        .map(|p| p.evaluate_extent(db, parent))
        .and_then(|r| r);
    match (&cached, &interp) {
        (Ok(a), Ok(b)) => assert_eq!(a.as_slice(), b.as_slice(), "cached != interpreted: {pred}"),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "cached/interpreted errors differ: {pred}"),
        _ => panic!("cached/interpreted disagree for {pred}: {cached:?} vs {interp:?}"),
    }
    match (&cached, &compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a.as_slice(), b.as_slice(), "cached != compiled: {pred}"),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "cached/compiled errors differ: {pred}"),
        _ => panic!("cached/compiled disagree for {pred}: {cached:?} vs {compiled:?}"),
    }
}

#[test]
fn cached_queries_stay_equivalent_through_edits_at_scale() {
    let mut g = scaled_db();
    let mut svc = IndexService::new(&g.s.db);
    svc.ensure_index(&g.s.db, g.s.plays).unwrap();
    svc.ensure_index(&g.s.db, g.s.union_attr).unwrap();
    let mut svc_fresh = IndexService::new(&g.s.db);
    svc_fresh.ensure_index(&g.s.db, g.s.plays).unwrap();
    svc_fresh.ensure_index(&g.s.db, g.s.union_attr).unwrap();

    let mut invalidations_seen = 0;
    for round in 0..6 {
        // Interpreter + raw-compiled cross-checks are O(extent); run them
        // on the first rounds, the cheap pruned arms on every round.
        let deep = round < 2;
        let chain = navigation_chain(&mut g.s, 5, SEED + round);
        for pred in &chain {
            check_arms(&svc, &svc_fresh, &g.s.db, g.s.musicians, pred, deep);
        }
        // Repeat the chain: pure hits must serve the identical answers.
        for pred in &chain {
            check_arms(&svc, &svc_fresh, &g.s.db, g.s.musicians, pred, false);
        }
        // Error identity through every arm.
        let bad = error_pred(
            &g,
            g.s.instrument_ids[round as usize % g.s.instrument_ids.len()],
        );
        check_arms(&svc, &svc_fresh, &g.s.db, g.s.musicians, &bad, deep);

        match round % 3 {
            0 => {
                // Data edit: reassign some plays values. The cache must
                // revalidate (re-hoist) without a recompile and the new
                // answers must reflect the edit.
                for k in 0..50 {
                    let m =
                        g.s.musician_ids[(round as usize * 131 + k * 17) % g.s.musician_ids.len()];
                    let inst = g.s.instrument_ids[k % g.s.instrument_ids.len()];
                    g.s.db.assign_multi(m, g.s.plays, [inst]).unwrap();
                }
                svc.refresh(&g.s.db).unwrap();
                svc_fresh.refresh(&g.s.db).unwrap();
            }
            1 => {
                // Schema edit: every cached program must be invalidated,
                // not served stale.
                g.s.db
                    .create_baseclass(&format!("aux_class_{round}"))
                    .unwrap();
                svc.refresh(&g.s.db).unwrap();
                svc_fresh.refresh(&g.s.db).unwrap();
                let before = svc.program_cache().stats().invalidations;
                let probe = &navigation_chain(&mut g.s, 2, SEED + round)[1];
                check_arms(&svc, &svc_fresh, &g.s.db, g.s.musicians, probe, false);
                let after = svc.program_cache().stats().invalidations;
                assert!(
                    after > before,
                    "schema edit must invalidate cached programs (round {round})"
                );
                invalidations_seen += after - before;
            }
            _ => {}
        }
    }
    assert!(
        invalidations_seen >= 2,
        "battery must exercise invalidation"
    );
    let stats = svc.program_cache().stats();
    assert!(
        stats.hits > 0 && stats.misses > 0,
        "battery must exercise the cache: {stats:?}"
    );
}
