//! Session determinism and the Diagram-1 invariants, tested end-to-end:
//! replaying the same script twice yields byte-identical renderings, undo
//! rewinds modifications faithfully, and temporary visits never disturb the
//! schema or data selection.

use isis::holiday::{holiday_party_script, FIGURES};
use isis::prelude::*;
use isis::views::render::{ascii, svg};
use isis_sample::instrumental_music;
use isis_session::{Command, Mode, Session};

#[test]
fn replay_is_deterministic_to_the_byte() {
    let run = || {
        let mut im = instrumental_music().unwrap();
        let script = holiday_party_script(&mut im).unwrap();
        let mut session = Session::builder(im.db.clone()).build();
        let t = script.run(&mut session).unwrap();
        let mut out = String::new();
        for name in FIGURES {
            out.push_str(&ascii::render(t.scene(name).unwrap()));
            out.push_str(&svg::render(t.scene(name).unwrap()));
        }
        (out, session.database().to_image())
    };
    let (a_render, a_img) = run();
    let (b_render, b_img) = run();
    assert_eq!(a_render, b_render);
    assert_eq!(a_img, b_img);
}

#[test]
fn scripted_database_equals_directly_built_one() {
    // Driving the engine through commands produces the same database as
    // calling the core API directly.
    let mut im = instrumental_music().unwrap();
    let script = holiday_party_script(&mut im).unwrap();
    let mut session = Session::builder(im.db.clone()).build();
    script.run(&mut session).unwrap();
    let via_session = session.database();

    // Direct construction of the same final state.
    let mut direct = im.db.clone();
    for (inst, fam) in [("flute", im.woodwind), ("oboe", im.woodwind)] {
        let e = direct.entity_by_name(im.instruments, inst).unwrap();
        direct.assign_single(e, im.family, fam).unwrap();
    }
    let quartets = direct
        .create_derived_subclass(im.music_groups, "quartets")
        .unwrap();
    let mut im2 = im.clone();
    im2.db = direct;
    let pred = isis_sample::quartets_predicate(&mut im2);
    let mut direct = im2.db;
    direct.commit_membership(quartets, pred).unwrap();
    let all_inst = direct
        .create_attribute(quartets, "all_inst", im.instruments, Multiplicity::Multi)
        .unwrap();
    direct
        .commit_derivation(
            all_inst,
            AttrDerivation::Assign(Map::new(vec![im.members, im.plays])),
        )
        .unwrap();
    let edith_plays = direct
        .create_subclass(im.instruments, "edith_plays")
        .unwrap();
    direct.add_to_class(im.viola, edith_plays).unwrap();
    direct.add_to_class(im.violin, edith_plays).unwrap();

    // Same classes, same memberships, same values (ids may differ for
    // objects created in different orders, so compare semantically).
    for name in ["quartets", "edith_plays"] {
        let a = via_session.class_by_name(name).unwrap();
        let b = direct.class_by_name(name).unwrap();
        let an: Vec<String> = via_session
            .members(a)
            .unwrap()
            .iter()
            .map(|e| via_session.entity_name(e).unwrap().to_string())
            .collect();
        let bn: Vec<String> = direct
            .members(b)
            .unwrap()
            .iter()
            .map(|e| direct.entity_name(e).unwrap().to_string())
            .collect();
        assert_eq!(an, bn, "{name}");
    }
}

#[test]
fn undo_rewinds_an_entire_session_of_modifications() {
    let im = instrumental_music().unwrap();
    let start = im.db.to_image();
    let mut s = Session::builder(im.db.clone()).build();
    // A run of modifications (each snapshots).
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    s.apply(Command::CreateSubclass("a".into())).unwrap();
    s.apply(Command::PickByName("a".into())).unwrap();
    s.apply(Command::CreateSubclass("b".into())).unwrap();
    s.apply(Command::PickByName("musicians".into())).unwrap();
    s.apply(Command::CreateAttribute {
        name: "nickname".into(),
        multiplicity: Multiplicity::Single,
    })
    .unwrap();
    s.apply(Command::Rename("alias".into())).unwrap();
    // Rewind everything.
    for _ in 0..4 {
        s.apply(Command::Undo).unwrap();
    }
    assert_eq!(s.database().to_image(), start);
    // Redo everything.
    for _ in 0..4 {
        s.apply(Command::Redo).unwrap();
    }
    assert!(s.database().class_by_name("b").is_ok());
    assert!(s.database().attr_by_name(im.musicians, "alias").is_ok());
}

#[test]
fn navigation_commands_do_not_snapshot() {
    let im = instrumental_music().unwrap();
    let mut s = Session::builder(im.db.clone()).build();
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    s.apply(Command::ViewAssociations).unwrap();
    s.apply(Command::Pop).unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::SelectEntity(im.edith)).unwrap();
    s.apply(Command::Follow(im.plays)).unwrap();
    s.apply(Command::Pop).unwrap();
    // Pure navigation leaves nothing to undo.
    assert!(s.apply(Command::Undo).is_err());
}

#[test]
fn mode_transitions_follow_diagram_1() {
    let im = instrumental_music().unwrap();
    let mut s = Session::builder(im.db.clone()).build();
    assert_eq!(*s.mode(), Mode::Forest);
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    s.apply(Command::ViewAssociations).unwrap();
    assert_eq!(*s.mode(), Mode::Network);
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    s.apply(Command::ViewContents).unwrap();
    assert_eq!(*s.mode(), Mode::Data);
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    // Worksheet entry and exit.
    s.apply(Command::Pick(SchemaNode::Class(im.play_strings)))
        .unwrap();
    s.apply(Command::DefineMembership).unwrap();
    assert_eq!(*s.mode(), Mode::Worksheet);
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Forest);
    // ConstantPick cancels back to the worksheet.
    s.apply(Command::DefineMembership).unwrap();
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsLhsPush(im.plays)).unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    assert!(matches!(s.mode(), Mode::ConstantPick { .. }));
    s.apply(Command::Pop).unwrap();
    assert_eq!(*s.mode(), Mode::Worksheet);
}

#[test]
fn every_view_renders_in_every_reachable_mode() {
    let im = instrumental_music().unwrap();
    let mut s = Session::builder(im.db.clone()).build();
    let check = |s: &Session| {
        let scene = s.scene().unwrap();
        // Renders cleanly in both backends and is non-trivial.
        assert!(!scene.elements.is_empty());
        let a = ascii::render(&scene);
        assert!(a.contains("Instrumental_Music"));
        let v = svg::render(&scene);
        assert!(v.starts_with("<svg"));
    };
    check(&s); // forest, no selection
    s.apply(Command::Pick(SchemaNode::Class(im.musicians)))
        .unwrap();
    check(&s);
    s.apply(Command::ViewAssociations).unwrap();
    check(&s); // network
    s.apply(Command::Pop).unwrap();
    s.apply(Command::ViewContents).unwrap();
    check(&s); // data
    s.apply(Command::SelectEntity(im.edith)).unwrap();
    s.apply(Command::Follow(im.plays)).unwrap();
    check(&s); // data, two pages
    s.apply(Command::Pop).unwrap();
    s.apply(Command::Pop).unwrap();
    s.apply(Command::Pick(SchemaNode::Class(im.play_strings)))
        .unwrap();
    s.apply(Command::DefineMembership).unwrap();
    check(&s); // worksheet, empty
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsLhsPush(im.plays)).unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    check(&s); // constant pick (temporary data level)
}

#[test]
fn grouping_page_via_session_renders_sets() {
    let im = instrumental_music().unwrap();
    let mut s = Session::builder(im.db.clone()).build();
    s.apply(Command::Pick(SchemaNode::Grouping(im.work_status)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    let scene = s.scene().unwrap();
    assert!(scene.texts().any(|(t, _)| t.contains("{YES}")));
}
