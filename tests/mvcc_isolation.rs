//! The MVCC isolation battery: seeded, randomized checks of the
//! snapshot-isolation contract of [`SharedDatabase`] (DESIGN.md §6).
//!
//! Three properties, each over hundreds of seeded cases:
//!
//! 1. **Reader stability** — a reader pinned at epoch `E` never observes
//!    any state beyond `E`, no matter what concurrent writers commit.
//! 2. **First committer wins** — of two writers whose write sets conflict,
//!    exactly one commit is admitted and the other gets a typed
//!    [`CommitConflict`].
//! 3. **Serializability** — the committed history equals *some* serial
//!    order: replaying the admitted commits' intents sequentially, in
//!    commit order, reproduces the shared head exactly (up to entity ids,
//!    which are line-local — states are compared by name).
//!
//! Plus a threaded stress run (the handle is `Send + Sync`; interleavings
//! vary by seed) and a fault-injected durability sweep: a commit whose WAL
//! append or fsync fails must be vetoed *and* leave nothing on disk for
//! recovery to replay — no phantom commits.
//!
//! Seeds are printed in every panic message; `ISIS_MVCC_SEED` overrides
//! the base seed.

use std::sync::Arc;

use isis::core::{
    AttrValue, BaseKind, Change, CommitConflict, Database, EntityId, Multiplicity, SharedDatabase,
};
use isis::store::{FaultVfs, StdVfs, StoreDir, SyncPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PEOPLE: usize = 8;

fn base_seed() -> u64 {
    std::env::var("ISIS_MVCC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00)
}

/// A shared database over a small known schema: `people` with a
/// singlevalued integer `age`, an enumerated subclass `club`, and eight
/// members `P0..P7` (evens in the club, ages pre-assigned).
fn base_shared() -> SharedDatabase {
    let mut db = Database::new("mvcc-battery");
    let people = db.create_baseclass("people").unwrap();
    let ints = db.predefined(BaseKind::Integers);
    let age = db
        .create_attribute(people, "age", ints, Multiplicity::Single)
        .unwrap();
    let club = db.create_subclass(people, "club").unwrap();
    for i in 0..PEOPLE {
        let e = db.insert_entity(people, &format!("P{i}")).unwrap();
        if i % 2 == 0 {
            db.add_to_class(e, club).unwrap();
        }
        let lit = db.intern(20 + i as i64).unwrap();
        db.assign_single(e, age, lit).unwrap();
    }
    SharedDatabase::new(db)
}

/// A name-based digest of the full user-visible state, stable across
/// databases whose entity ids differ (each MVCC line allocates its own).
fn fingerprint(db: &Database) -> String {
    // Literal extents (strings, integers, ...) grow as a side effect of
    // interning, which is semantically free — a commit that interned a
    // value without storing it anywhere changed nothing a user can see.
    let builtins: Vec<_> = BaseKind::ALL.iter().map(|k| db.predefined(*k)).collect();
    let mut lines = Vec::new();
    for (cid, rec) in db.classes() {
        if builtins.contains(&cid) {
            continue;
        }
        let mut members: Vec<String> = db
            .members(cid)
            .unwrap()
            .iter()
            .map(|e| display(db, e))
            .collect();
        members.sort();
        lines.push(format!("class {} = [{}]", rec.name, members.join(",")));
        for aid in db.visible_attrs(cid).unwrap() {
            let arec = db.attr(aid).unwrap();
            if arec.is_derived() {
                continue; // recomputable; refresh timing is line-local
            }
            for e in db.members(cid).unwrap().iter() {
                let val = match db.attr_value(e, aid).unwrap() {
                    AttrValue::Single(v) if v.is_null() => continue,
                    AttrValue::Single(v) => display(db, v),
                    AttrValue::Multi(s) => {
                        let mut vs: Vec<String> = s.iter().map(|v| display(db, v)).collect();
                        vs.sort();
                        vs.join("|")
                    }
                };
                lines.push(format!(
                    "value {}.{}.{} = {}",
                    rec.name,
                    display(db, e),
                    arec.name,
                    val
                ));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

fn display(db: &Database, e: EntityId) -> String {
    db.literal_of(e)
        .map(|l| l.display_name())
        .or_else(|| db.entity_name(e).ok().map(str::to_string))
        .unwrap_or_else(|| format!("#{e:?}"))
}

/// One writer's high-level step, phrased over names so the same intent can
/// be applied to any database line.
#[derive(Debug, Clone)]
enum Intent {
    Insert(String),
    Delete(String),
    Assign(String, i64),
    AddMember(String),
    RemoveMember(String),
}

fn random_intent(rng: &mut StdRng, writer: usize, step: usize) -> Intent {
    let subject = format!("P{}", rng.gen_range(0..PEOPLE));
    match rng.gen_range(0..6u32) {
        0 => Intent::Insert(format!("W{writer}_{step}")),
        1 => Intent::Delete(subject),
        2 | 3 => Intent::Assign(subject, rng.gen_range(0..100i64)),
        4 => Intent::AddMember(subject),
        _ => Intent::RemoveMember(subject),
    }
}

/// Applies one intent through the public mutators; `Err` means the intent
/// is inapplicable to this line's current state (e.g. the subject is
/// already deleted) and the caller should skip it.
fn apply_intent(db: &mut Database, intent: &Intent) -> Result<(), isis::core::CoreError> {
    let people = db.class_by_name("people")?;
    let club = db.class_by_name("club")?;
    let age = db.attr_by_name(people, "age")?;
    match intent {
        Intent::Insert(name) => {
            db.insert_entity(people, name)?;
        }
        Intent::Delete(name) => {
            let e = db.entity_by_name(people, name)?;
            db.delete_entity(e)?;
        }
        Intent::Assign(name, v) => {
            let e = db.entity_by_name(people, name)?;
            let lit = db.intern(*v)?;
            db.assign_single(e, age, lit)?;
        }
        Intent::AddMember(name) => {
            let e = db.entity_by_name(people, name)?;
            db.add_to_class(e, club)?;
        }
        Intent::RemoveMember(name) => {
            let e = db.entity_by_name(people, name)?;
            db.remove_from_class(e, club)?;
        }
    }
    Ok(())
}

/// Applies one intent and reports whether it recorded any *visible*
/// change. A no-op on this line (assigning the value already stored,
/// adding an existing membership) contributes nothing to the commit's
/// write set, so snapshot isolation rightly ignores it — a serial-order
/// check must too. Literal interns alone do not count (see
/// [`fingerprint`]).
fn apply_effective(db: &mut Database, intent: &Intent) -> bool {
    let mark = db.delta_epoch();
    if apply_intent(db, intent).is_err() {
        return false;
    }
    db.changes_since(mark)
        .expect("battery mutations fit the delta window")
        .iter()
        .any(|c| {
            !matches!(c, Change::EntityInserted { entity, .. }
                if db.literal_of(*entity).is_some())
        })
}

/// Property 1: 256 seeded cases of a pinned reader staying byte-stable
/// while writers commit around it.
#[test]
fn pinned_reader_never_observes_beyond_its_epoch() {
    for case in 0..256u64 {
        let seed = base_seed().wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = base_shared();

        let reader = shared.pin();
        let pinned_epoch = reader.delta_epoch();
        let before = fingerprint(&reader);

        let writers = rng.gen_range(1..4usize);
        for w in 0..writers {
            let mut local = shared.pin();
            let base = local.delta_epoch();
            let mut touched = false;
            for step in 0..rng.gen_range(1..4usize) {
                touched |= apply_intent(&mut local, &random_intent(&mut rng, w, step)).is_ok();
            }
            if touched {
                // First-committer-wins may reject a writer; stability of
                // the reader must hold either way.
                let _ = shared.commit(base, &local);
            }
        }

        assert_eq!(
            reader.delta_epoch(),
            pinned_epoch,
            "seed {seed:#x}: pinned epoch moved"
        );
        assert_eq!(
            fingerprint(&reader),
            before,
            "seed {seed:#x}: pinned snapshot changed under concurrent commits"
        );
        // After re-pinning the reader does see the committed head.
        let repinned = shared.pin();
        assert_eq!(
            fingerprint(&repinned),
            shared.read(fingerprint),
            "seed {seed:#x}: a fresh pin diverges from the head"
        );
    }
}

/// Property 2: 256 seeded conflicting pairs — exactly one admitted, the
/// loser's rejection is a typed conflict.
#[test]
fn conflicting_writers_exactly_one_commit_wins() {
    for case in 0..256u64 {
        let seed = base_seed().wrapping_add(0x1000).wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = base_shared();
        let subject = format!("P{}", rng.gen_range(0..PEOPLE));
        // Setup puts even-numbered people in the club, so an AddMember is
        // only effective on an odd subject and a RemoveMember on an even
        // one — a no-op records nothing and cannot conflict.
        let odd = format!("P{}", rng.gen_range(0..PEOPLE / 2) * 2 + 1);
        let even = format!("P{}", rng.gen_range(0..PEOPLE / 2) * 2);

        // A pair of intents guaranteed to overlap effectively.
        let (ia, ib) = match rng.gen_range(0..5u32) {
            0 => (
                Intent::Assign(subject.clone(), 1),
                Intent::Assign(subject.clone(), 2),
            ),
            1 => (
                Intent::Delete(subject.clone()),
                Intent::Assign(subject.clone(), 3),
            ),
            2 => (Intent::Delete(odd.clone()), Intent::AddMember(odd.clone())),
            3 => (
                Intent::AddMember(odd.clone()),
                Intent::AddMember(odd.clone()),
            ),
            _ => (
                Intent::RemoveMember(even.clone()),
                Intent::RemoveMember(even.clone()),
            ),
        };

        let mut a = shared.pin();
        let base_a = a.delta_epoch();
        let mut b = shared.pin();
        let base_b = b.delta_epoch();
        apply_intent(&mut a, &ia).unwrap();
        apply_intent(&mut b, &ib).unwrap();

        // Randomize which writer reaches the head first.
        let (first, second) = if rng.gen_bool(0.5) {
            (shared.commit(base_a, &a), shared.commit(base_b, &b))
        } else {
            (shared.commit(base_b, &b), shared.commit(base_a, &a))
        };
        assert!(
            first.is_ok(),
            "seed {seed:#x}: first committer must win, got {first:?}"
        );
        let conflict = second.expect_err(&format!(
            "seed {seed:#x}: second conflicting commit was admitted ({ia:?} vs {ib:?})"
        ));
        assert!(
            matches!(
                conflict,
                CommitConflict::Value { .. }
                    | CommitConflict::Membership { .. }
                    | CommitConflict::Delete { .. }
            ),
            "seed {seed:#x}: unexpected conflict kind {conflict:?}"
        );
        shared.read(|db| assert!(db.check_consistency().unwrap().is_empty()));
    }
}

/// Property 3: 128 seeded multi-writer rounds — the admitted history is
/// equivalent to replaying the admitted intents serially in commit order.
#[test]
fn committed_history_equals_some_serial_order() {
    for case in 0..128u64 {
        let seed = base_seed().wrapping_add(0x2000).wrapping_add(case);
        let mut rng = StdRng::seed_from_u64(seed);
        let shared = base_shared();
        let serial_base = shared.pin();

        let mut admitted: Vec<Vec<Intent>> = Vec::new();
        let writers = rng.gen_range(2..5usize);
        let mut lines = Vec::new();
        for w in 0..writers {
            let mut local = shared.pin();
            let base = local.delta_epoch();
            let mut applied = Vec::new();
            for step in 0..rng.gen_range(1..4usize) {
                let intent = random_intent(&mut rng, w, step);
                if apply_effective(&mut local, &intent) {
                    applied.push(intent);
                }
            }
            lines.push((base, local, applied));
        }
        for (base, local, applied) in lines {
            if applied.is_empty() {
                continue;
            }
            if shared.commit(base, &local).is_ok() {
                admitted.push(applied);
            }
        }

        // Serial replay of the admitted intents, in commit order, from the
        // same starting state.
        let mut serial = serial_base;
        for intents in &admitted {
            for intent in intents {
                apply_intent(&mut serial, intent).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed:#x}: admitted intent {intent:?} not serially \
                         applicable: {e} — conflict detection admitted a \
                         non-serializable pair"
                    )
                });
            }
        }
        let head = shared.read(fingerprint);
        let serial_fp = fingerprint(&serial);
        if serial_fp != head {
            let diff: Vec<String> = serial_fp
                .lines()
                .filter(|l| !head.contains(l))
                .map(|l| format!("serial-only: {l}"))
                .chain(
                    head.lines()
                        .filter(|l| !serial_fp.contains(l))
                        .map(|l| format!("head-only:   {l}")),
                )
                .collect();
            panic!(
                "seed {seed:#x}: head diverges from serial replay of admitted \
                 commits\nadmitted: {admitted:?}\n{}",
                diff.join("\n")
            );
        }
        shared.read(|db| assert!(db.check_consistency().unwrap().is_empty()));
    }
}

/// Threaded stress: the handle really is shared across threads, and under
/// seeded workloads every admitted commit survives to the head.
#[test]
fn threaded_writers_with_retries_converge() {
    for round in 0..4u64 {
        let shared = base_shared();
        let threads = 4;
        let per_thread = 12;
        let names: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(base_seed() ^ (round << 8) ^ t as u64);
                        let mut committed = Vec::new();
                        for i in 0..per_thread {
                            let name = format!("T{t}_{round}_{i}");
                            // Insert-only writers cannot conflict, but may
                            // race the head; retry until admitted.
                            loop {
                                let mut local = shared.pin();
                                let base = local.delta_epoch();
                                apply_intent(&mut local, &Intent::Insert(name.clone())).unwrap();
                                if rng.gen_bool(0.5) {
                                    std::thread::yield_now();
                                }
                                match shared.commit(base, &local) {
                                    Ok(_) => break,
                                    Err(CommitConflict::SnapshotTooOld { .. }) => continue,
                                    Err(e) => panic!("insert-only commit rejected: {e}"),
                                }
                            }
                            committed.push(name);
                        }
                        committed
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        shared.read(|db| {
            let people = db.class_by_name("people").unwrap();
            for name in names.iter().flatten() {
                assert!(
                    db.entity_by_name(people, name).is_ok(),
                    "round {round}: admitted commit of {name} lost"
                );
            }
            assert!(db.check_consistency().unwrap().is_empty());
        });
        assert_eq!(shared.commits(), (threads * per_thread) as u64);
    }
}

/// Durability: sweep a deterministic crash point across every vfs
/// operation of a durable commit. A vetoed commit must be invisible in
/// memory and absent from recovery; an admitted commit must never be half
/// on disk.
#[test]
fn faulted_durable_commits_admit_no_phantoms() {
    let root = std::env::temp_dir().join(format!("isis_mvcc_phantom_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Baseline store: one class, no members.
    let setup = StoreDir::open_with(&root, Arc::new(StdVfs::new())).unwrap();
    let (shared, _) = setup.open_shared("band", SyncPolicy::EverySync).unwrap();
    let mut w = shared.pin();
    let base = w.delta_epoch();
    w.create_baseclass("musicians").unwrap();
    shared.commit(base, &w).unwrap();
    drop(shared);

    for step in 0..48u64 {
        let faulty = Arc::new(FaultVfs::crash_at(step));
        let outcome = StoreDir::open_with(&root, faulty.clone())
            .and_then(|d| d.open_shared("band", SyncPolicy::EverySync))
            .map(|(shared, _)| {
                let mut local = shared.pin();
                let base = local.delta_epoch();
                let musicians = local.class_by_name("musicians").unwrap();
                local.insert_entity(musicians, "Edith").unwrap();
                let admitted = shared.commit(base, &local).is_ok();
                let visible = shared.read(|db| db.entity_by_name(musicians, "Edith").is_ok());
                assert_eq!(
                    admitted, visible,
                    "step {step}: commit admission and head visibility disagree"
                );
                admitted
            });

        // Clean recovery must agree with what the surviving handle said.
        let clean = StoreDir::open(&root).unwrap();
        let (db, _) = clean.recover("band").unwrap();
        assert!(db.check_consistency().unwrap().is_empty());
        let musicians = db.class_by_name("musicians").unwrap();
        let on_disk = db.entity_by_name(musicians, "Edith").is_ok();
        match outcome {
            Ok(true) => assert!(on_disk, "step {step}: admitted commit lost"),
            Ok(false) => assert!(!on_disk, "step {step}: phantom commit recovered"),
            // The handle itself died before reporting: either state is a
            // legal crash outcome, and consistency was already checked.
            Err(_) => {}
        }

        // Reset to the empty pre-commit state for the next step.
        let reset = StoreDir::open(&root).unwrap();
        let (mut db, _) = reset.recover("band").unwrap();
        if let Ok(e) = db.entity_by_name(musicians, "Edith") {
            db.delete_entity(e).unwrap();
        }
        reset.save(&db, "band").unwrap();
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Satellite regression (ISSUE 7): a session opened on a shared head
/// whose durability hook is poisoned must surface a typed error instead
/// of silently pinning. A poisoned hook means disk may already hold state
/// the head vetoed (or vice versa) — a session pinned there could serve
/// or replicate never-acknowledged data.
#[test]
fn session_open_on_poisoned_head_surfaces_typed_error() {
    use isis::session::{Session, SessionError};

    let root = std::env::temp_dir().join(format!("isis_mvcc_poison_open_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    // Baseline: one schema commit, then normalise the layout.
    let setup = StoreDir::open_with(&root, Arc::new(StdVfs::new())).unwrap();
    let (shared, _) = setup.open_shared("band", SyncPolicy::EverySync).unwrap();
    let mut w = shared.pin();
    let base = w.delta_epoch();
    w.create_baseclass("musicians").unwrap();
    shared.commit(base, &w).unwrap();
    drop(shared);

    // Find the fault-point band of a schema commit (the checkpoint path
    // holds the poison windows), then scan it until the hook poisons:
    // crash points below the band kill the reopen, points beyond it let
    // the commit succeed.
    let probe = Arc::new(FaultVfs::counting());
    let d = StoreDir::open_with(&root, probe.clone()).unwrap();
    let (shared, _) = d.open_shared("band", SyncPolicy::EverySync).unwrap();
    let after_open = probe.steps();
    let mut w = shared.pin();
    let base = w.delta_epoch();
    w.create_baseclass("venues").unwrap();
    shared.commit(base, &w).unwrap();
    let after_commit = probe.steps();
    drop(shared);

    let reset_state = || {
        let reset = StoreDir::open(&root).unwrap();
        let (mut db, _) = reset.recover("band").unwrap();
        if let Ok(venues) = db.class_by_name("venues") {
            db.delete_class(venues).unwrap();
        }
        reset.save(&db, "band").unwrap();
        drop(reset.open_shared("band", SyncPolicy::EverySync).unwrap());
    };
    reset_state();

    let width = after_commit - after_open;
    let mut poisoned_shared = None;
    for step in after_open.saturating_sub(2)..after_commit + width + 256 {
        let faulty = Arc::new(FaultVfs::crash_at(step));
        let attempt = StoreDir::open_with(&root, faulty)
            .and_then(|d| d.open_shared("band", SyncPolicy::EverySync));
        if let Ok((shared, _)) = attempt {
            let mut w = shared.pin();
            let base = w.delta_epoch();
            w.create_baseclass("venues").unwrap();
            let _ = shared.commit(base, &w);
            if shared.hook_poisoned() {
                poisoned_shared = Some(shared);
                break;
            }
        }
        reset_state();
    }
    let shared = poisoned_shared.expect("sweep never produced a poisoned hook");

    // The poisoned head refuses new sessions with a typed error...
    match Session::open(&shared).try_build() {
        Err(SessionError::Poisoned(detail)) => {
            assert!(!detail.is_empty());
        }
        Ok(_) => panic!("try_build silently pinned a poisoned head"),
        Err(other) => panic!("expected SessionError::Poisoned, got {other}"),
    }
    // ...while a healthy handle (same builder path) is unaffected.
    let healthy = SharedDatabase::new(Database::new("healthy"));
    assert!(Session::open(&healthy).try_build().is_ok());
    // Reopening the store heals: recovery re-derives a consistent head.
    drop(shared);
    let clean = StoreDir::open(&root).unwrap();
    let (healed, _) = clean.open_shared("band", SyncPolicy::EverySync).unwrap();
    assert!(!healed.hook_poisoned());
    assert!(Session::open(&healed).try_build().is_ok());

    std::fs::remove_dir_all(&root).unwrap();
}
