//! The §5 integrity-constraint extension, end to end: the paper's
//! employee/manager example specified through the worksheet (the same
//! screen-and-pointing-device mechanism as queries), enforced
//! transactionally, and persisted through snapshot and WAL.

use isis::core::{ConstraintId, ConstraintKind};
use isis::prelude::*;
use isis::store::{StoreDir, SyncPolicy};
use isis_session::{Command, Session};

struct Office {
    db: Database,
    employees: ClassId,
    salary: AttrId,
    manager: AttrId,
    alice: EntityId,
    bob: EntityId,
}

fn office() -> Office {
    let mut db = Database::new("office");
    let employees = db.create_baseclass("employees").unwrap();
    let ints = db.predefined(BaseKind::Integers);
    let salary = db
        .create_attribute(employees, "salary", ints, Multiplicity::Single)
        .unwrap();
    let manager = db
        .create_attribute(employees, "manager", employees, Multiplicity::Single)
        .unwrap();
    let alice = db.insert_entity(employees, "Alice").unwrap();
    let bob = db.insert_entity(employees, "Bob").unwrap();
    let s90 = db.int(90);
    let s60 = db.int(60);
    db.assign_single(alice, salary, s90).unwrap();
    db.assign_single(bob, salary, s60).unwrap();
    db.assign_single(bob, manager, alice).unwrap();
    Office {
        db,
        employees,
        salary,
        manager,
        alice,
        bob,
    }
}

/// The paper's question — "how would a user specify that an employee
/// cannot earn more than his/her manager using only a screen and a
/// pointing device?" — answered: on the predicate worksheet.
#[test]
fn manager_constraint_through_the_worksheet() {
    let o = office();
    let mut s = Session::builder(o.db.clone()).build();
    s.apply(Command::Pick(SchemaNode::Class(o.employees)))
        .unwrap();
    s.apply(Command::DefineConstraint {
        name: "no_overpaid".into(),
        kind: ConstraintKind::Forbidden,
    })
    .unwrap();
    // The worksheet banner names the constraint.
    let input = s.worksheet_input().unwrap();
    assert!(input.target.contains("no_overpaid"));
    assert!(input.target.contains("forbidden"));
    // Atom: salary(e) > manager salary(e) — form (a), two maps from e.
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(0)).unwrap();
    s.apply(Command::WsLhsPush(o.salary)).unwrap();
    s.apply(Command::WsOperator(CompareOp::Gt.into())).unwrap();
    s.apply(Command::WsRhsSelfMap(vec![o.manager, o.salary]))
        .unwrap();
    s.apply(Command::WsCommit).unwrap();
    assert!(s.messages().last().unwrap().contains("installed and holds"));
    // Break it in the data and have the checker catch it (the raw
    // escape hatch, deliberately skipping refresh).
    #[allow(deprecated)]
    let db = s.database_mut();
    let s95 = db.int(95);
    db.assign_single(o.bob, o.salary, s95).unwrap();
    s.apply(Command::CheckConstraints).unwrap();
    let msg = s.messages().last().unwrap();
    assert!(msg.contains("no_overpaid"), "{msg}");
    assert!(msg.contains("Bob"), "{msg}");
}

#[test]
fn transactional_enforcement_rolls_back() {
    let mut o = office();
    let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(o.salary),
        CompareOp::Gt,
        Rhs::SelfMap(Map::new(vec![o.manager, o.salary])),
    )])]);
    o.db.create_constraint("no_overpaid", o.employees, pred, ConstraintKind::Forbidden)
        .unwrap();
    let bob = o.bob;
    let salary = o.salary;
    let before = o.db.to_image();
    // A violating raise is rejected and rolled back…
    assert!(o
        .db
        .apply_checked(|db| {
            let s95 = db.int(95);
            db.assign_single(bob, salary, s95)
        })
        .is_err());
    assert_eq!(o.db.to_image(), before);
    // …a legal one is kept.
    o.db.apply_checked(|db| {
        let s80 = db.int(80);
        db.assign_single(bob, salary, s80)
    })
    .unwrap();
    assert_ne!(o.db.to_image(), before);
}

#[test]
fn constraints_survive_snapshot_and_wal() {
    let root = std::env::temp_dir().join(format!("isis_constraints_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = StoreDir::open(&root).unwrap();
    // Build through the logged database so the constraint goes to the WAL.
    let image;
    {
        let mut db = dir.open_logged("office", SyncPolicy::EverySync).unwrap();
        let employees = db.create_baseclass("employees").unwrap();
        let ints = db.database().predefined(BaseKind::Integers);
        let salary = db
            .create_attribute(employees, "salary", ints, Multiplicity::Single)
            .unwrap();
        let manager = db
            .create_attribute(employees, "manager", employees, Multiplicity::Single)
            .unwrap();
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(salary),
            CompareOp::Gt,
            Rhs::SelfMap(Map::new(vec![manager, salary])),
        )])]);
        let k = db
            .create_constraint("no_overpaid", employees, pred, ConstraintKind::Forbidden)
            .unwrap();
        assert_eq!(k, ConstraintId::from_raw(0));
        image = db.database().to_image();
        // Crash without checkpoint: recovery must replay the constraint.
    }
    let recovered = dir.load("office").unwrap();
    assert_eq!(recovered.to_image(), image);
    let k = recovered.constraint_by_name("no_overpaid").unwrap();
    assert_eq!(
        recovered.constraint(k).unwrap().kind,
        ConstraintKind::Forbidden
    );
    // And through a plain snapshot save/load too.
    dir.save(&recovered, "office2").unwrap();
    let again = dir.load("office2").unwrap();
    assert!(again.constraint_by_name("no_overpaid").is_ok());
    // Deleting the constraint is also durable.
    {
        let mut db = dir.open_logged("office", SyncPolicy::EverySync).unwrap();
        let k = db.database().constraint_by_name("no_overpaid").unwrap();
        db.delete_constraint(k).unwrap();
    }
    let recovered = dir.load("office").unwrap();
    assert!(recovered.constraint_by_name("no_overpaid").is_err());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn forall_constraint_through_worksheet_with_constant() {
    let o = office();
    let mut s = Session::builder(o.db.clone()).build();
    // Everyone must earn at least 10 — uses the constant temporary visit.
    s.apply(Command::Pick(SchemaNode::Class(o.employees)))
        .unwrap();
    s.apply(Command::DefineConstraint {
        name: "living_wage".into(),
        kind: ConstraintKind::ForAll,
    })
    .unwrap();
    s.apply(Command::WsNewAtom).unwrap();
    s.apply(Command::WsPlaceInClause(0)).unwrap();
    s.apply(Command::WsLhsPush(o.salary)).unwrap();
    s.apply(Command::WsOperator(CompareOp::Ge.into())).unwrap();
    s.apply(Command::WsRhsConstant(None)).unwrap();
    #[allow(deprecated)]
    let ten = s.database_mut().int(10);
    s.apply(Command::ConstantToggle(ten)).unwrap();
    s.apply(Command::ConstantDone).unwrap();
    s.apply(Command::WsCommit).unwrap();
    assert!(s.messages().last().unwrap().contains("living_wage"));
    let db = s.database();
    let k = db.constraint_by_name("living_wage").unwrap();
    assert!(db.check_constraint(k).unwrap().holds());
    // Alice violates after a pay cut.
    #[allow(deprecated)]
    let db = s.database_mut();
    let five = db.int(5);
    db.assign_single(o.alice, o.salary, five).unwrap();
    let report = s.database().check_constraint(k).unwrap();
    assert_eq!(report.violators, vec![o.alice]);
}
