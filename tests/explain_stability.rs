//! EXPLAIN is stats-faithful and observability is result-invisible.
//!
//! Two contracts from the telemetry design (DESIGN.md §5c), checked
//! end-to-end in their own process because they toggle the process-wide
//! `isis_obs::global()` switch:
//!
//! 1. **Equivalence**: evaluation results are byte-identical with
//!    observability enabled and disabled — instrumentation must never
//!    perturb an answer.
//! 2. **Stability**: `IndexService::explain` advances the `QueryStats`
//!    counters by exactly the same deltas as the `evaluate` it wraps, and
//!    the record's own numbers agree with those counters.

use isis_core::{Atom, Clause, CompareOp, Map, Predicate, Rhs};
use isis_query::IndexService;
use isis_sample::instrumental_music;

fn preds(im: &mut isis_sample::InstrumentalMusic) -> Vec<Predicate> {
    let yes = im.db.boolean(true);
    let booleans = im.db.predefined(isis_core::BaseKind::Booleans);
    vec![
        // One indexable ~ atom: the planner probes the plays index.
        Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [im.piano]),
        )])]),
        // Superset against two anchors: rarest-first intersection.
        Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Superset,
            Rhs::constant(im.instruments, [im.violin, im.viola]),
        )])]),
        // CNF over two clauses, mixing probed and scanned atoms.
        Predicate::cnf(vec![
            Clause::new(vec![Atom::new(
                Map::single(im.plays),
                CompareOp::Match,
                Rhs::constant(im.instruments, [im.violin]),
            )]),
            Clause::new(vec![Atom::new(
                Map::single(im.union_attr),
                CompareOp::Match,
                Rhs::constant(booleans, [yes]),
            )]),
        ]),
    ]
}

/// Results must be byte-identical with observability on and off, for the
/// serial service path and with slow-query capture forcing the capturing
/// wrapper on every evaluation.
#[test]
fn results_are_identical_with_observability_on_and_off() {
    let mut im = instrumental_music().unwrap();
    let obs = isis_obs::global();

    obs.set_enabled(false);
    let mut svc_off = IndexService::new(&im.db);
    svc_off.ensure_index(&im.db, im.plays).unwrap();
    let baseline: Vec<Vec<_>> = preds(&mut im)
        .iter()
        .map(|p| {
            svc_off
                .evaluate(&im.db, im.musicians, p)
                .unwrap()
                .as_slice()
                .to_vec()
        })
        .collect();

    obs.set_enabled(true);
    let mut svc_on = IndexService::new(&im.db);
    svc_on.ensure_index(&im.db, im.plays).unwrap();
    svc_on.set_slow_threshold_ns(1); // force the capture path everywhere
    for (pred, want) in preds(&mut im).iter().zip(&baseline) {
        let got = svc_on.evaluate(&im.db, im.musicians, pred).unwrap();
        assert_eq!(
            got.as_slice(),
            want.as_slice(),
            "observability changed an answer for {pred}"
        );
        let (explained, record) = svc_on.explain(&im.db, im.musicians, pred).unwrap();
        assert_eq!(
            explained.as_slice(),
            want.as_slice(),
            "explain changed an answer for {pred}"
        );
        assert_eq!(record.returned as usize, explained.len());
    }
    // Every forced-slow evaluation above landed in the slow-query ring.
    assert!(!svc_on.slow_queries().is_empty());
    obs.set_enabled(false);
}

/// The record's eval-mode facet is faithful: a program of single-step
/// constant atoms streams attribute columns (`batch`, with the run width
/// and per-column occupancy), while a multi-step map keeps the whole
/// program on the per-candidate interpreter (`scalar`, no column stats).
#[test]
fn explain_reports_eval_mode_and_column_stats() {
    let mut im = instrumental_music().unwrap();
    isis_obs::global().set_enabled(false);
    let svc = IndexService::new(&im.db);

    // `plays ~ {piano}`: one single-step constant atom, batch eligible.
    let streamable = Predicate::dnf(vec![Clause::new(vec![Atom::new(
        Map::single(im.plays),
        CompareOp::Match,
        Rhs::constant(im.instruments, [im.piano]),
    )])]);
    let (_, rec) = svc.explain(&im.db, im.musicians, &streamable).unwrap();
    assert_eq!(rec.eval_mode, "batch");
    assert_eq!(rec.batch_rows, isis_query::BATCH_ROWS);
    assert_eq!(rec.columns.len(), 1);
    assert_eq!(rec.columns[0].attr, "plays");
    assert!(rec.columns[0].dense_len + rec.columns[0].overflow_len > 0);
    assert!(
        rec.to_text().contains("column streaming"),
        "{}",
        rec.to_text()
    );

    // The quartets predicate walks `members plays` — a two-step map, so
    // the program never builds a batch body.
    let pred = isis_sample::quartets_predicate(&mut im);
    let (_, rec) = svc.explain(&im.db, im.music_groups, &pred).unwrap();
    assert_eq!(rec.eval_mode, "scalar");
    assert_eq!(rec.batch_rows, 0);
    assert!(rec.to_text().contains("eval: scalar"), "{}", rec.to_text());
}

/// `explain` advances the `QueryStats` counters by exactly the same deltas
/// as the equivalent `evaluate`, and the record agrees with the counters.
#[test]
fn explain_counter_deltas_match_evaluate() {
    let mut im = instrumental_music().unwrap();
    isis_obs::global().set_enabled(false);
    let mut svc = IndexService::new(&im.db);
    svc.ensure_index(&im.db, im.plays).unwrap();

    for pred in preds(&mut im) {
        // Warm once so both arms start from the same cache state.
        svc.evaluate(&im.db, im.musicians, &pred).unwrap();

        let s0 = svc.query_stats();
        let out = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        let s1 = svc.query_stats();
        let (explained, record) = svc.explain(&im.db, im.musicians, &pred).unwrap();
        let s2 = svc.query_stats();

        assert_eq!(out.as_slice(), explained.as_slice());
        let eval_delta = (
            s1.queries - s0.queries,
            s1.index_probes - s0.index_probes,
            s1.grouping_scans - s0.grouping_scans,
            s1.seq_scans - s0.seq_scans,
            s1.index_misses - s0.index_misses,
        );
        let explain_delta = (
            s2.queries - s1.queries,
            s2.index_probes - s1.index_probes,
            s2.grouping_scans - s1.grouping_scans,
            s2.seq_scans - s1.seq_scans,
            s2.index_misses - s1.index_misses,
        );
        assert_eq!(
            eval_delta, explain_delta,
            "explain must move the counters exactly like evaluate for {pred}"
        );
        assert_eq!(eval_delta.0, 1, "each arm counts as one query");

        // The record's own numbers agree with what the counters saw.
        assert_eq!(record.returned as usize, explained.len());
        assert_eq!(record.scanned as usize, record.candidates);
        assert_eq!(record.cache, "hit", "warmed predicate must hit the cache");
        assert!(record.plan_reused, "no mutations: the plan stays valid");
        assert_eq!(
            record.atoms.len(),
            pred.clauses.iter().map(|c| c.atoms.len()).sum::<usize>()
        );
    }
}
