//! The replication torture battery (ISSUE 7): a jepsen-style history
//! checker over the primary→replica log-shipping path, end-to-end in
//! process.
//!
//! Each seeded schedule drives one primary ([`StoreDir::open_shared`]),
//! its [`ReplicationLog`], and 1–2 [`Replica`]s through a randomized
//! interleaving of data commits, contended commits, schema commits
//! (checkpoint shipping), replica syncs and reads, replica crashes, and
//! primary power cycles — all through a seeded [`FaultVfs`] injecting
//! torn writes, failed fsyncs, dropped renames, and ENOSPC. (Silent bit
//! flips are excluded: they are corruption, not crashes, and would make
//! the exact history checker unsound; `crash_consistency.rs` covers
//! salvage.)
//!
//! The checker records the fingerprint of every *acknowledged* primary
//! commit, in order, and asserts three invariants throughout:
//!
//! 1. **Replica prefix** — every state a replica ever serves (directly or
//!    through a read-only [`Session`]) is an acknowledged primary state,
//!    and each replica only moves forward through that history, across
//!    its own crashes and reopens.
//! 2. **Durability both sides** — a primary power cycle recovers exactly
//!    the last acknowledged state (or, in the documented poisoned
//!    veto-but-durable window, exactly the vetoed candidate — which then
//!    *becomes* acknowledged); a replica reopen never loses an applied
//!    frame.
//! 3. **No dirty reads** — a replica never serves a state the primary did
//!    not acknowledge (implied by 1, checked on every read).
//!
//! At the end of each schedule both sides power-cycle cleanly and every
//! replica must converge to the primary's final state.
//!
//! `ISIS_REPL_SEED` overrides the base seed, `ISIS_REPL_SCHEDULES` the
//! schedule count (default 500). Failing schedules print their seed.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use isis::core::{
    AttrValue, BaseKind, Database, EntityId, Multiplicity, RetryBackoff, SharedDatabase,
};
use isis::session::Session;
use isis::store::{FaultProfile, FaultVfs, Replica, ReplicationLog, StoreDir, SyncPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAME: &str = "torture";

fn base_seed() -> u64 {
    std::env::var("ISIS_REPL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5EED_0007)
}

fn schedule_count() -> u64 {
    std::env::var("ISIS_REPL_SCHEDULES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(500)
}

/// Every failure mode that still *reports* failure. Bit flips (silent
/// success over corrupt bytes) stay at zero — see the module docs.
fn torture_profile() -> FaultProfile {
    FaultProfile {
        short_write: 25,
        append_bit_flip: 0,
        fsync_failure: 25,
        rename_drop: 15,
        enospc: 10,
    }
}

fn display(db: &Database, e: EntityId) -> String {
    db.literal_of(e)
        .map(|l| l.display_name())
        .or_else(|| db.entity_name(e).ok().map(str::to_string))
        .unwrap_or_else(|| format!("#{e:?}"))
}

/// Name-based digest of the user-visible state (same shape as the MVCC
/// battery's): stable across lines whose entity ids differ.
fn fingerprint(db: &Database) -> String {
    let builtins: Vec<_> = BaseKind::ALL.iter().map(|k| db.predefined(*k)).collect();
    let mut lines = Vec::new();
    for (cid, rec) in db.classes() {
        if builtins.contains(&cid) {
            continue;
        }
        let mut members: Vec<String> = db
            .members(cid)
            .unwrap()
            .iter()
            .map(|e| display(db, e))
            .collect();
        members.sort();
        lines.push(format!("class {} = [{}]", rec.name, members.join(",")));
        for aid in db.visible_attrs(cid).unwrap() {
            let arec = db.attr(aid).unwrap();
            if arec.is_derived() {
                continue;
            }
            for e in db.members(cid).unwrap().iter() {
                let val = match db.attr_value(e, aid).unwrap() {
                    AttrValue::Single(v) if v.is_null() => continue,
                    AttrValue::Single(v) => display(db, v),
                    AttrValue::Multi(s) => {
                        let mut vs: Vec<String> = s.iter().map(|v| display(db, v)).collect();
                        vs.sort();
                        vs.join("|")
                    }
                };
                lines.push(format!(
                    "value {}.{}.{} = {}",
                    rec.name,
                    display(db, e),
                    arec.name,
                    val
                ));
            }
        }
    }
    lines.sort();
    lines.join("\n")
}

/// A writer's step, phrased over names so the same intent can be applied
/// to the commit line *and* (for the poisoned veto-but-durable check) to
/// a simulation of what the hook made durable.
#[derive(Debug, Clone)]
enum Intent {
    Insert(String),
    Assign(String, i64),
    Delete(String),
    CreateClass(String),
}

fn apply_intents(db: &mut Database, intents: &[Intent]) {
    for intent in intents {
        // Tolerant by design: an intent whose subject a concurrent commit
        // removed simply does not apply, mirroring how a rebase would
        // reject the recorded op without failing the whole schedule.
        let _ = (|| -> isis::core::Result<()> {
            let people = db.class_by_name("people")?;
            match intent {
                Intent::Insert(name) => {
                    db.insert_entity(people, name)?;
                }
                Intent::Assign(name, v) => {
                    let e = db.entity_by_name(people, name)?;
                    let age = db.attr_by_name(people, "age")?;
                    let lit = db.intern(*v)?;
                    db.assign_single(e, age, lit)?;
                }
                Intent::Delete(name) => {
                    let e = db.entity_by_name(people, name)?;
                    db.delete_entity(e)?;
                }
                Intent::CreateClass(name) => {
                    db.create_baseclass(name)?;
                }
            }
            Ok(())
        })();
    }
}

fn random_intents(rng: &mut StdRng, db: &Database, fresh: &mut u64) -> Vec<Intent> {
    let people = db.class_by_name("people").unwrap();
    let members: Vec<String> = db
        .members(people)
        .unwrap()
        .iter()
        .filter_map(|e| db.entity_name(e).ok().map(str::to_string))
        .collect();
    let count = rng.gen_range(1..=3usize);
    let mut intents = Vec::with_capacity(count);
    for _ in 0..count {
        let roll = rng.gen_range(0..10u32);
        let intent = if members.is_empty() || roll < 5 {
            *fresh += 1;
            Intent::Insert(format!("W{fresh}"))
        } else if roll < 8 {
            *fresh += 1;
            Intent::Assign(
                members[rng.gen_range(0..members.len())].clone(),
                *fresh as i64,
            )
        } else {
            Intent::Delete(members[rng.gen_range(0..members.len())].clone())
        };
        intents.push(intent);
    }
    intents
}

struct Harness {
    seed: u64,
    rng: StdRng,
    proot: PathBuf,
    primary: SharedDatabase,
    log: ReplicationLog,
    committed: Vec<String>,
    replicas: Vec<Slot>,
    fresh: u64,
    fresh_class: u64,
}

struct Slot {
    root: PathBuf,
    replica: Replica,
    /// Index into `committed` of the newest state this replica has
    /// served; it may only move forward (per-replica monotonic reads,
    /// preserved across replica crashes because applied frames are
    /// durable before they are visible).
    last_seen: usize,
}

fn open_primary(proot: &Path, fault_seed: u64) -> SharedDatabase {
    let faulty = Arc::new(FaultVfs::seeded_with(fault_seed, torture_profile()));
    StoreDir::open_with(proot, faulty)
        .and_then(|d| d.open_shared(NAME, SyncPolicy::EverySync))
        .or_else(|_| {
            // The faulty reopen died mid-recovery-fold; a clean power-on
            // must always succeed.
            StoreDir::open(proot).and_then(|d| d.open_shared(NAME, SyncPolicy::EverySync))
        })
        .expect("primary recovery must be total")
        .0
}

fn open_replica(root: &Path, fault_seed: u64) -> Replica {
    let faulty = Arc::new(FaultVfs::seeded_with(fault_seed, torture_profile()));
    StoreDir::open_with(root, faulty)
        .and_then(|d| Replica::open(&d, NAME, SyncPolicy::EverySync))
        .or_else(|_| {
            StoreDir::open(root).and_then(|d| Replica::open(&d, NAME, SyncPolicy::EverySync))
        })
        .expect("replica recovery must be total")
        .0
}

impl Harness {
    /// Checks the state a replica is serving right now against the
    /// acknowledged history: it must appear at or after the newest state
    /// this replica already served.
    fn serve(&mut self, i: usize) {
        let slot = &mut self.replicas[i];
        let fp = fingerprint(&slot.replica.pin());
        match self.committed[slot.last_seen..]
            .iter()
            .position(|c| *c == fp)
        {
            Some(k) => slot.last_seen += k,
            None => panic!(
                "seed {}: replica {i} served a state that is not an acknowledged \
                 primary state at or after its last read (last_seen {}, history len {})",
                self.seed,
                slot.last_seen,
                self.committed.len()
            ),
        }
    }

    /// Commits `intents` on a line pinned at the current head and records
    /// the acknowledged state. On a poisoned veto, power-cycles the
    /// primary and audits the veto-but-durable window.
    fn attempt_commit(&mut self, intents: Vec<Intent>) {
        let mut w = self.primary.pin();
        let base = w.delta_epoch();
        apply_intents(&mut w, &intents);
        self.finish_commit(base, &w, &intents);
    }

    fn finish_commit(&mut self, base: u64, w: &Database, intents: &[Intent]) {
        match self.primary.commit(base, w) {
            Ok(_) => self.committed.push(self.primary.read(fingerprint)),
            Err(_) if self.primary.hook_poisoned() => {
                // The hook cannot tell whether the vetoed commit became
                // durable; recovery decides. Simulate what the hook saw
                // (the intents applied to the head it was given).
                let mut sim = self.primary.pin();
                apply_intents(&mut sim, intents);
                let candidate = fingerprint(&sim);
                self.power_cycle(Some(candidate));
            }
            Err(_) => {}
        }
    }

    /// Drops the primary handle and recovers from disk: the recovered
    /// state must be exactly the last acknowledged state, or (after a
    /// poisoned veto) exactly the vetoed candidate, which then becomes
    /// acknowledged — the crash-after-fsync-before-ack outcome.
    fn power_cycle(&mut self, candidate: Option<String>) {
        let fault_seed = self.rng.gen();
        self.primary = open_primary(&self.proot, fault_seed);
        let fp = self.primary.read(fingerprint);
        if fp != *self.committed.last().unwrap() {
            match candidate {
                Some(c) if fp == c => self.committed.push(c),
                candidate => panic!(
                    "seed {}: primary recovery diverged from the acknowledged history \
                     (history len {})\n-- recovered --\n{fp}\n-- acknowledged --\n{}\n\
                     -- vetoed candidate --\n{}",
                    self.seed,
                    self.committed.len(),
                    self.committed.last().unwrap(),
                    candidate.as_deref().unwrap_or("<none>")
                ),
            }
        }
    }

    fn reopen_replica(&mut self, i: usize) {
        let fault_seed = self.rng.gen();
        let root = self.replicas[i].root.clone();
        self.replicas[i].replica = open_replica(&root, fault_seed);
        self.serve(i);
    }
}

fn run_schedule(case: u64, seed: u64, root: &Path) {
    let _ = std::fs::remove_dir_all(root);
    std::fs::create_dir_all(root).unwrap();
    let rng = StdRng::seed_from_u64(seed);
    let proot = root.join("primary");

    // Fresh primary on a clean VFS; the faults start with the schedule.
    let setup = StoreDir::open(&proot).unwrap();
    let (primary, _) = setup.open_shared(NAME, SyncPolicy::EverySync).unwrap();
    // The replication log reads the primary's files through a clean VFS:
    // shipping is read-only, and the fault budget belongs to the writers.
    let log = ReplicationLog::open(&StoreDir::open(&proot).unwrap(), NAME).unwrap();

    let mut h = Harness {
        seed,
        proot,
        committed: vec![primary.read(fingerprint)],
        primary,
        log,
        replicas: Vec::new(),
        fresh: 0,
        fresh_class: 0,
        rng,
    };

    // Seed schema (people + age): a schema commit, i.e. a checkpoint.
    let mut w = h.primary.pin();
    let base = w.delta_epoch();
    let people = w.create_baseclass("people").unwrap();
    let ints = w.predefined(BaseKind::Integers);
    w.create_attribute(people, "age", ints, Multiplicity::Single)
        .unwrap();
    h.primary.commit(base, &w).unwrap();
    h.committed.push(h.primary.read(fingerprint));

    let n_replicas = 1 + (h.rng.gen_range(0..2usize));
    for i in 0..n_replicas {
        let rroot = root.join(format!("replica{i}"));
        std::fs::create_dir_all(&rroot).unwrap();
        let fault_seed = h.rng.gen();
        h.replicas.push(Slot {
            replica: open_replica(&rroot, fault_seed),
            root: rroot,
            last_seen: 0,
        });
    }

    let events = 24 + h.rng.gen_range(0..16u32);
    for _ in 0..events {
        match h.rng.gen_range(0..100u32) {
            // A single writer's data commit.
            0..=34 => {
                let intents = random_intents(&mut h.rng, &h.primary.pin(), &mut h.fresh);
                h.attempt_commit(intents);
            }
            // Two writers pinned at the same head: the second either
            // rebases (disjoint) or conflicts (typed veto) — and its
            // durability faults flow through the same poisoned-window
            // audit as everything else.
            35..=49 => {
                let head = h.primary.pin();
                let ia = random_intents(&mut h.rng, &head, &mut h.fresh);
                let ib = random_intents(&mut h.rng, &head, &mut h.fresh);
                let mut wa = h.primary.pin();
                let base_a = wa.delta_epoch();
                apply_intents(&mut wa, &ia);
                let mut wb = h.primary.pin();
                let base_b = wb.delta_epoch();
                apply_intents(&mut wb, &ib);
                h.finish_commit(base_a, &wa, &ia);
                h.finish_commit(base_b, &wb, &ib);
            }
            // A schema commit: ships to replicas as a checkpoint.
            50..=57 => {
                h.fresh_class += 1;
                let intents = vec![Intent::CreateClass(format!("C{}", h.fresh_class))];
                h.attempt_commit(intents);
            }
            // Replica catch-up, one shipment at a time, then a read.
            58..=79 => {
                let i = h.rng.gen_range(0..h.replicas.len());
                let max = h.rng.gen_range(1..=4usize);
                match h.replicas[i].replica.sync_step(&h.log, max) {
                    Ok(_) => h.serve(i),
                    // Replay hit an injected fault (or poisoned the
                    // handle): crash the replica and recover it.
                    Err(_) => h.reopen_replica(i),
                }
            }
            // A read-only session over the replica's head.
            80..=87 => {
                let i = h.rng.gen_range(0..h.replicas.len());
                let session = Session::open(h.replicas[i].replica.shared())
                    .try_build()
                    .expect("replica heads are never hook-poisoned");
                let via_session = fingerprint(session.database());
                assert_eq!(
                    via_session,
                    fingerprint(&h.replicas[i].replica.pin()),
                    "seed {seed}: session view diverged from the replica head"
                );
                h.serve(i);
            }
            // Replica crash + recovery.
            88..=93 => {
                let i = h.rng.gen_range(0..h.replicas.len());
                h.reopen_replica(i);
            }
            // Primary power cycle.
            _ => h.power_cycle(None),
        }
    }

    // Final convergence: both sides power-cycle on clean VFS, every
    // replica catches up to exactly the primary's recovered state.
    let (primary, _) = StoreDir::open(&h.proot)
        .unwrap()
        .open_shared(NAME, SyncPolicy::EverySync)
        .unwrap();
    let final_fp = primary.read(fingerprint);
    assert_eq!(
        final_fp,
        *h.committed.last().unwrap(),
        "seed {seed} (case {case}): clean primary recovery diverged"
    );
    for (i, slot) in h.replicas.iter().enumerate() {
        let (mut replica, _) = StoreDir::open(&slot.root)
            .and_then(|d| Replica::open(&d, NAME, SyncPolicy::EverySync))
            .unwrap_or_else(|e| panic!("seed {seed}: replica {i} final recovery failed: {e}"));
        let status = replica.sync(&h.log).unwrap();
        assert!(
            status.caught_up(),
            "seed {seed}: replica {i} cannot catch up"
        );
        assert_eq!(
            fingerprint(&replica.pin()),
            final_fp,
            "seed {seed} (case {case}): replica {i} converged to a different state"
        );
    }

    let _ = std::fs::remove_dir_all(root);
}

/// The main battery: hundreds of seeded schedules over the full fault
/// matrix. Every schedule checks the three invariants continuously and
/// must converge at the end.
#[test]
fn seeded_schedules_preserve_replication_invariants() {
    let root = std::env::temp_dir().join(format!("isis_repl_torture_{}", std::process::id()));
    let base = base_seed();
    for case in 0..schedule_count() {
        run_schedule(case, base.wrapping_add(case), &root);
    }
}

/// Bounded-backoff retry must converge every conflicted workload: all
/// writers contend on one attribute of one entity, so every concurrent
/// pair conflicts, and every `transact_with_retry` call must still be
/// admitted exactly once.
#[test]
fn transact_with_retry_converges_under_threaded_contention() {
    const THREADS: usize = 4;
    const PER: usize = 25;

    let mut db = Database::new("retry");
    let people = db.create_baseclass("people").unwrap();
    let ints = db.predefined(BaseKind::Integers);
    db.create_attribute(people, "age", ints, Multiplicity::Single)
        .unwrap();
    db.insert_entity(people, "P0").unwrap();
    let shared = SharedDatabase::new(db);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let shared = shared.clone();
            std::thread::spawn(move || {
                let mut session = Session::open(&shared).build();
                let backoff = RetryBackoff {
                    seed: 0xAB00 + t as u64,
                    ..RetryBackoff::unslept(512)
                };
                for k in 0..PER {
                    session
                        .transact_with_retry(&backoff, |db| {
                            let people = db.class_by_name("people")?;
                            let p0 = db.entity_by_name(people, "P0")?;
                            let age = db.attr_by_name(people, "age")?;
                            let lit = db.intern((t * 1000 + k) as i64)?;
                            db.assign_single(p0, age, lit)?;
                            db.insert_entity(people, &format!("T{t}_{k}"))?;
                            Ok(())
                        })
                        .expect("bounded retry must converge under pure contention");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Every call was admitted exactly once...
    assert_eq!(shared.commits(), (THREADS * PER) as u64);
    // ...and every writer's inserts survived the rebases.
    shared.read(|db| {
        let people = db.class_by_name("people").unwrap();
        for t in 0..THREADS {
            for k in 0..PER {
                assert!(
                    db.entity_by_name(people, &format!("T{t}_{k}")).is_ok(),
                    "T{t}_{k} lost in a rebase"
                );
            }
        }
    });
}
