//! The §4.2 session, once more — this time as a plain-text REPL script,
//! proving the text front end covers the whole narrative a mouse would.

use isis::repl::Repl;
use isis_session::Session;

/// The holiday-party session in the REPL command language.
const SCRIPT: &str = r#"
# --- familiarisation (Figures 1-2) ---
pick soloists
associations
pick instruments
pop

# --- the data error (Figures 3-5) ---
contents
select flute
select oboe
follow family
select brass
select woodwind
pop
assign family woodwind

# --- groupings (Figures 6-7) ---
pop
pick by_family
predicate
contents
select percussion
followg

# --- the query (Figures 8-9) ---
pop
pop
pick music_groups
subclass quartets
define
atom
clause 2
push size
op =
const
toggle 4
done
atom
clause 1
push members
push plays
op >=s
const
toggle piano
done
switch
commit

# --- all_inst (Figure 10) ---
attribute all_inst multi
valueclass instruments
derive
hand members plays
commit

# --- exploring the result (Figures 11-12) ---
pick quartets
contents
select "LaBelle Musique"
follow members
toggle Ian
toggle Kurt
toggle Donna
follow plays
makesub edith_plays
pop
pop
pop
stop
"#;

#[test]
fn the_whole_session_runs_as_a_text_script() {
    let im = isis::sample::instrumental_music().unwrap();
    let mut repl = Repl::new(Session::builder(im.db.clone()).build());
    for (lineno, line) in SCRIPT.lines().enumerate() {
        repl.exec(line)
            .unwrap_or_else(|e| panic!("line {}: {:?}: {e}", lineno + 1, line));
    }
    assert!(repl.session.stopped());
    let db = repl.session.database();
    // The session's outcomes, same as the typed-command replay.
    let quartets = db.class_by_name("quartets").unwrap();
    let members: Vec<&str> = db
        .members(quartets)
        .unwrap()
        .iter()
        .map(|e| db.entity_name(e).unwrap())
        .collect();
    assert_eq!(members, vec!["LaBelle Musique"]);
    let all_inst = db.attr_by_name(quartets, "all_inst").unwrap();
    assert!(db.attr(all_inst).unwrap().is_derived());
    let ep = db.class_by_name("edith_plays").unwrap();
    assert_eq!(db.members(ep).unwrap().len(), 2);
    let flute = db.entity_by_name(im.instruments, "flute").unwrap();
    let fam = db.attr_value_set(flute, im.family).unwrap();
    assert_eq!(
        db.entity_name(fam.as_singleton().unwrap()).unwrap(),
        "woodwind"
    );
    assert!(db.is_consistent().unwrap());
}

/// The same script replayed twice gives byte-identical final renderings.
#[test]
fn text_script_replay_is_deterministic() {
    let run = || {
        let im = isis::sample::instrumental_music().unwrap();
        let mut repl = Repl::new(Session::builder(im.db).build());
        for line in SCRIPT.lines() {
            repl.exec(line).unwrap();
        }
        repl.exec("show").unwrap()
    };
    assert_eq!(run(), run());
}
