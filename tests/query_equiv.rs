//! The indexed-vs-naive equivalence battery: for random predicates, random
//! index subsets, and random mutation sequences, every query answered
//! through the shared [`IndexService`] must equal the naive full-scan
//! evaluator — before any mutation, after every incremental refresh, and
//! after a final drain. The generator deliberately includes a
//! grouping-ranged attribute (`likes`, valued in the `by_family` grouping)
//! so that re-keying a grouping's base attribute mid-window is exercised
//! against the maintained indexes.

use isis::prelude::*;
use isis_query::IndexService;
use isis_sample::instrumental_music;
use proptest::prelude::*;

/// Copyable handles into the generated schema (the sample database plus
/// the extra grouping-ranged attribute), so mutation helpers can work on a
/// bare `&mut Database` after the database has moved into a `Session`.
#[derive(Debug, Clone)]
struct Ids {
    musicians: ClassId,
    instruments: ClassId,
    families: ClassId,
    booleans: ClassId,
    plays: AttrId,
    family: AttrId,
    union_attr: AttrId,
    /// Multi-valued, ranged over the `by_family` grouping: its value set
    /// expands to the union of the named families' instrument sets, and a
    /// `family` reassignment silently re-keys that expansion.
    likes: AttrId,
    all_instruments: Vec<EntityId>,
    fams: [EntityId; 4],
    yes: EntityId,
    no: EntityId,
}

fn setup() -> (Database, Ids, Vec<EntityId>) {
    let mut im = instrumental_music().unwrap();
    let likes = im
        .db
        .create_attribute(im.musicians, "likes", im.by_family, Multiplicity::Multi)
        .unwrap();
    let yes = im.db.boolean(true);
    let no = im.db.boolean(false);
    let ids = Ids {
        musicians: im.musicians,
        instruments: im.instruments,
        families: im.families,
        booleans: im.db.predefined(BaseKind::Booleans),
        plays: im.plays,
        family: im.family,
        union_attr: im.union_attr,
        likes,
        all_instruments: im.all_instruments.clone(),
        fams: [im.brass, im.woodwind, im.stringed, im.keyboard],
        yes,
        no,
    };
    let live = im.all_musicians.clone();
    (im.db, ids, live)
}

/// A generated atom over musicians: `lhs-map op constant-set`.
#[derive(Debug, Clone)]
struct GenAtom {
    /// 0 = plays, 1 = plays∘family, 2 = union, 3 = likes (grouping-ranged)
    lhs: u8,
    op_idx: u8,
    negated: bool,
    consts: Vec<u8>,
}

fn atom_strategy() -> impl Strategy<Value = GenAtom> {
    (
        0u8..4,
        0u8..4,
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..3),
    )
        .prop_map(|(lhs, op_idx, negated, consts)| GenAtom {
            lhs,
            op_idx,
            negated,
            consts,
        })
}

fn build_atom(ids: &Ids, g: &GenAtom) -> Atom {
    let (lhs, pool_class, pool): (Map, ClassId, Vec<EntityId>) = match g.lhs {
        0 => (
            Map::single(ids.plays),
            ids.instruments,
            ids.all_instruments.clone(),
        ),
        1 => (
            Map::new(vec![ids.plays, ids.family]),
            ids.families,
            ids.fams.to_vec(),
        ),
        2 => (Map::single(ids.union_attr), ids.booleans, vec![ids.yes]),
        // The grouping-ranged attribute expands to instrument sets, so its
        // constants are instruments.
        _ => (
            Map::single(ids.likes),
            ids.instruments,
            ids.all_instruments.clone(),
        ),
    };
    let ops = [
        CompareOp::SetEq,
        CompareOp::Subset,
        CompareOp::Superset,
        CompareOp::Match,
    ];
    let anchors: Vec<EntityId> = g
        .consts
        .iter()
        .map(|i| pool[*i as usize % pool.len()])
        .collect();
    Atom::new(
        lhs,
        Operator {
            op: ops[g.op_idx as usize % ops.len()],
            negated: g.negated,
        },
        Rhs::constant(pool_class, anchors),
    )
}

fn build_predicate(ids: &Ids, clauses: &[Vec<GenAtom>], dnf: bool) -> Predicate {
    let cs: Vec<Clause> = clauses
        .iter()
        .map(|atoms| Clause::new(atoms.iter().map(|g| build_atom(ids, g)).collect()))
        .collect();
    if dnf {
        Predicate::dnf(cs)
    } else {
        Predicate::cnf(cs)
    }
}

/// One generated data mutation; indices are taken modulo the live pools.
#[derive(Debug, Clone)]
struct GenOp {
    kind: u8,
    a: u8,
    b: u8,
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    (0u8..8, any::<u8>(), any::<u8>()).prop_map(|(kind, a, b)| GenOp { kind, a, b })
}

/// Applies one generated mutation to the live database. Degenerate ops
/// (e.g. deleting from an emptied pool) are skipped.
fn apply_op(db: &mut Database, ids: &Ids, live: &mut Vec<EntityId>, fresh: &mut u32, op: &GenOp) {
    match op.kind {
        // Replace a musician's instrument set with one or two instruments.
        0 => {
            if live.is_empty() {
                return;
            }
            let m = live[op.a as usize % live.len()];
            let i1 = ids.all_instruments[op.b as usize % ids.all_instruments.len()];
            let i2 = ids.all_instruments[(op.b as usize / 7) % ids.all_instruments.len()];
            db.assign_multi(m, ids.plays, [i1, i2]).unwrap();
        }
        // Add one instrument to a musician's set.
        1 => {
            if live.is_empty() {
                return;
            }
            let m = live[op.a as usize % live.len()];
            let i = ids.all_instruments[op.b as usize % ids.all_instruments.len()];
            db.add_value(m, ids.plays, i).unwrap();
        }
        // Flip a musician's union membership.
        2 => {
            if live.is_empty() {
                return;
            }
            let m = live[op.a as usize % live.len()];
            let v = if op.b.is_multiple_of(2) {
                ids.yes
            } else {
                ids.no
            };
            db.assign_single(m, ids.union_attr, v).unwrap();
        }
        // Reclassify an instrument's family: re-keys the `by_family`
        // grouping, silently changing every `likes` expansion.
        3 => {
            let i = ids.all_instruments[op.a as usize % ids.all_instruments.len()];
            let f = ids.fams[op.b as usize % ids.fams.len()];
            db.assign_single(i, ids.family, f).unwrap();
        }
        // Insert a new musician (joins the parent extent with no values).
        4 => {
            *fresh += 1;
            let id = db
                .insert_entity(ids.musicians, &format!("gen_musician_{fresh}"))
                .unwrap();
            live.push(id);
        }
        // Delete a musician (leaves the parent extent entirely).
        5 => {
            if live.len() <= 2 {
                return;
            }
            let idx = op.a as usize % live.len();
            let m = live.swap_remove(idx);
            db.delete_entity(m).unwrap();
        }
        // Replace a musician's `likes` set with one or two families.
        6 => {
            if live.is_empty() {
                return;
            }
            let m = live[op.a as usize % live.len()];
            let f1 = ids.fams[op.b as usize % ids.fams.len()];
            let f2 = ids.fams[(op.b as usize / 5) % ids.fams.len()];
            db.assign_multi(m, ids.likes, [f1, f2]).unwrap();
        }
        // Add one family to a musician's `likes` set.
        _ => {
            if live.is_empty() {
                return;
            }
            let m = live[op.a as usize % live.len()];
            let f = ids.fams[op.b as usize % ids.fams.len()];
            db.add_value(m, ids.likes, f).unwrap();
        }
    }
}

/// Both evaluators are extent-ordered, so equality is exact (order and
/// all) — comparing slices also pins down determinism.
fn check(db: &Database, svc: &IndexService, ids: &Ids, pred: &Predicate, when: &str) {
    let indexed = svc.evaluate(db, ids.musicians, pred).unwrap();
    let naive = db.evaluate_derived_members(ids.musicians, pred).unwrap();
    assert_eq!(
        indexed.as_slice(),
        naive.as_slice(),
        "indexed disagrees with naive {when} for {pred}"
    );
}

proptest! {
    // The vendored stub's default is already 256; make the floor explicit.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The headline battery: random predicate, random subset of maintained
    /// indexes, random mutation sequence. The shared service must agree
    /// with the naive evaluator at every refresh point.
    #[test]
    fn indexed_evaluation_matches_naive_before_and_after_refreshes(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
        index_mask in proptest::collection::vec(any::<bool>(), 4),
        ops in proptest::collection::vec(op_strategy(), 1..12),
        drain_each in any::<bool>(),
    ) {
        let (mut db, ids, mut live) = setup();
        let pred = build_predicate(&ids, &clauses, dnf);
        db.validate_predicate(ids.musicians, None, &pred).unwrap();

        let mut svc = IndexService::new(&db);
        for (on, attr) in index_mask
            .iter()
            .zip([ids.plays, ids.union_attr, ids.likes, ids.family])
        {
            if *on {
                svc.ensure_index(&db, attr).unwrap();
            }
        }
        check(&db, &svc, &ids, &pred, "before any mutation");

        let mut fresh = 0u32;
        for op in &ops {
            apply_op(&mut db, &ids, &mut live, &mut fresh, op);
            if drain_each {
                svc.refresh(&db).unwrap();
                check(&db, &svc, &ids, &pred, "after an incremental refresh");
            }
        }
        svc.refresh(&db).unwrap();
        check(&db, &svc, &ids, &pred, "after the final drain");
        prop_assert!(db.is_consistent().unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The session-level contract: [`Session::query`] agrees with the naive
    /// evaluator under every refresh policy, and a refresh leaves the
    /// derived subclass (maintained through the same shared service) with
    /// exactly the membership the predicate selects.
    #[test]
    fn session_query_agrees_with_naive_under_every_policy(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
        policy_idx in 0u8..3,
    ) {
        let (mut db, ids, mut live) = setup();
        let pred = build_predicate(&ids, &clauses, dnf);
        db.validate_predicate(ids.musicians, None, &pred).unwrap();
        let derived = db.create_derived_subclass(ids.musicians, "gen_q").unwrap();
        db.commit_membership(derived, pred.clone()).unwrap();

        let policy = [
            RefreshPolicy::Manual,
            RefreshPolicy::OnCommit,
            RefreshPolicy::Immediate,
        ][policy_idx as usize % 3];
        let mut session = Session::builder(db).refresh_policy(policy).build();

        let mut fresh = 0u32;
        for op in &ops {
            #[allow(deprecated)]
            apply_op(session.database_mut(), &ids, &mut live, &mut fresh, op);
        }

        let got = session.query(ids.musicians, &pred).unwrap();
        let naive = session
            .database()
            .evaluate_derived_members(ids.musicians, &pred)
            .unwrap();
        prop_assert_eq!(got.as_slice(), naive.as_slice(), "policy {:?}", policy);

        session.refresh_derived().unwrap();
        // Incremental settling appends re-joining members at the end of the
        // derived extent, so membership equality is set equality.
        let mut members: Vec<EntityId> =
            session.database().members(derived).unwrap().iter().collect();
        members.sort();
        let mut expect: Vec<EntityId> = naive.iter().collect();
        expect.sort();
        prop_assert_eq!(&members, &expect, "derived membership after refresh");

        // Post-refresh the pipeline is synchronised, so the answer must
        // come through the shared indexes (not the scan fallback).
        let again = session.query(ids.musicians, &pred).unwrap();
        prop_assert_eq!(again.as_slice(), naive.as_slice());
        let svc = session.index_service().expect("refresh builds the service");
        prop_assert!(svc.query_stats().queries >= 1);
    }
}
