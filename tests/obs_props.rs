//! Property checks for the observability layer (`isis-obs`).
//!
//! Uses private [`isis_obs::Obs`] instances rather than the process-wide
//! `isis_obs::global()` so cases don't race with other tests in this
//! binary: the only thread-shared piece is the span stack, which is
//! thread-local and empty again once every guard drops.

use isis_obs::{Histogram, Json, Obs, Recorder, TraceRecord};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Span trees are well-nested.
// ---------------------------------------------------------------------

const NAMES: [&str; 4] = ["test.a.one", "test.b.two", "test.c.three", "test.d.four"];

/// Drive a random tree of nested spans: each byte either opens a child
/// span (recursing) or closes the current level.
fn nest(obs: &Obs, shape: &[u8], idx: &mut usize, depth: usize) {
    while *idx < shape.len() {
        let b = shape[*idx];
        *idx += 1;
        if b.is_multiple_of(4) || depth >= 8 {
            return;
        }
        let _span = obs.span(NAMES[b as usize % NAMES.len()]);
        obs.event("test.event", || format!("depth {depth}"));
        nest(obs, shape, idx, depth + 1);
    }
}

/// Replay the record stream against an explicit stack: every start's
/// parent must be the span open at that moment, every end must close the
/// innermost open span, and nothing may stay open.
fn assert_well_nested(records: &[TraceRecord]) {
    let mut stack: Vec<u64> = Vec::new();
    for rec in records {
        match rec {
            TraceRecord::SpanStart { id, parent, .. } => {
                let expected = stack.last().copied().unwrap_or(0);
                assert_eq!(
                    *parent, expected,
                    "span {id} has parent {parent} but {expected} was open"
                );
                stack.push(*id);
            }
            TraceRecord::SpanEnd { id, .. } => {
                let top = stack.pop();
                assert_eq!(top, Some(*id), "span end {id} out of order");
            }
            TraceRecord::Event { span, .. } => {
                let expected = stack.last().copied().unwrap_or(0);
                assert_eq!(*span, expected, "event attributed to closed span");
            }
        }
    }
    assert!(stack.is_empty(), "spans left open: {stack:?}");
}

// ---------------------------------------------------------------------
// JSON generation from a byte seed (bounded depth, exact-round-trip
// values only: integers ≤ 2^53 survive the f64 number model losslessly).
// ---------------------------------------------------------------------

const STRINGS: [&str; 6] = [
    "",
    "plain",
    "with \"quotes\"",
    "line\nbreak\ttab",
    "naïve — π",
    "\\back\\slash",
];

fn json_from_seed(bytes: &[u8], idx: &mut usize, depth: usize) -> Json {
    let b = match bytes.get(*idx) {
        Some(b) => *b,
        None => return Json::Null,
    };
    *idx += 1;
    match b % if depth >= 3 { 5 } else { 7 } {
        0 => Json::Null,
        1 => Json::from(b % 2 == 0),
        2 => Json::from(u64::from(b) * 12_345),
        3 => Json::from(-(i64::from(b))),
        4 => Json::from(STRINGS[b as usize % STRINGS.len()]),
        5 => {
            let len = (b % 4) as usize;
            Json::Arr(
                (0..len)
                    .map(|_| json_from_seed(bytes, idx, depth + 1))
                    .collect(),
            )
        }
        _ => {
            let len = (b % 4) as usize;
            Json::Obj(
                (0..len)
                    .map(|k| {
                        (
                            format!("k{k}_{}", STRINGS[(b as usize + k) % STRINGS.len()]),
                            json_from_seed(bytes, idx, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Any interleaving of span opens/closes produces a well-nested record
    /// stream with correctly attributed parents and events.
    #[test]
    fn span_trees_are_well_nested(shape in proptest::collection::vec(any::<u8>(), 0..200)) {
        let obs = Obs::new();
        obs.set_tracing(true);
        let mut idx = 0;
        while idx < shape.len() {
            nest(&obs, &shape, &mut idx, 0);
        }
        let snap = obs.recorder().snapshot();
        prop_assert_eq!(snap.dropped, 0, "ring evicted records mid-test");
        assert_well_nested(&snap.records);
        // The reassembled tree renders every span exactly once.
        let text = snap.to_text();
        prop_assert!(text.contains(&format!("{} span(s)", snap.span_count())));
    }

    /// Histogram quantiles are upper bounds on the true sample quantiles,
    /// clamped to the exact observed range, and count/sum/min/max are exact.
    #[test]
    fn histogram_quantiles_bound_samples(samples in proptest::collection::vec(0u64..1_000_000_000, 1..300)) {
        let h = Histogram::default();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let n = sorted.len() as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert!(snap.p50 <= snap.p95 && snap.p95 <= snap.p99);
        for (q, reported) in [(0.50, snap.p50), (0.95, snap.p95), (0.99, snap.p99)] {
            let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
            let true_q = sorted[rank as usize - 1];
            prop_assert!(
                true_q <= reported && reported <= snap.max,
                "q={q}: true {true_q} reported {reported} max {}", snap.max
            );
        }
    }

    /// The ring never holds more than its capacity; evictions are counted.
    #[test]
    fn ring_is_bounded_and_counts_evictions(cap in 2usize..64, n in 0usize..300) {
        let rec = Recorder::with_capacity(cap);
        for i in 0..n {
            rec.push(TraceRecord::Event {
                span: 0,
                name: "test.ring.fill",
                detail: format!("{i}"),
                t_ns: i as u64,
            });
        }
        let snap = rec.snapshot();
        prop_assert_eq!(snap.capacity, cap);
        prop_assert_eq!(snap.records.len(), n.min(cap));
        prop_assert_eq!(snap.dropped, n.saturating_sub(cap) as u64);
        // Oldest-first eviction: the survivors are the most recent pushes.
        if let Some(TraceRecord::Event { t_ns, .. }) = snap.records.first() {
            prop_assert_eq!(*t_ns, n.saturating_sub(cap) as u64);
        }
    }

    /// Arbitrary documents round-trip through the vendored JSON codec, and
    /// serialization is stable across a parse/dump cycle.
    #[test]
    fn json_export_round_trips(seed in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut idx = 0;
        let doc = json_from_seed(&seed, &mut idx, 0);
        let compact = doc.dump();
        let parsed = Json::parse(&compact).expect("dump must parse");
        prop_assert_eq!(&parsed, &doc);
        prop_assert_eq!(parsed.dump(), compact);
        // Pretty form parses back to the same document too.
        let pretty = doc.pretty();
        prop_assert_eq!(Json::parse(&pretty).expect("pretty must parse"), doc);
    }

    /// Flight events with arbitrary payloads round-trip through the JSONL
    /// export line-by-line; the ring stays bounded, drops are counted, and
    /// sequence numbers stay strictly monotonic.
    #[test]
    fn flight_journal_round_trips_and_stays_bounded(
        seed in proptest::collection::vec(any::<u8>(), 0..64),
        cap in 2usize..32,
        n in 0usize..100,
    ) {
        let obs = Obs::new();
        obs.set_enabled(true);
        obs.flight().set_capacity(cap);
        const KINDS: [&str; 3] = ["test.flight.commit", "test.flight.ship", "test.flight.slow"];
        for i in 0..n {
            let mut idx = i % seed.len().max(1);
            obs.flight_event(KINDS[i % KINDS.len()], || json_from_seed(&seed, &mut idx, 0));
        }
        let snap = obs.flight().snapshot();
        prop_assert_eq!(snap.events.len(), n.min(cap));
        prop_assert_eq!(snap.dropped, n.saturating_sub(cap) as u64);
        for w in snap.events.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "seq must be strictly increasing");
        }
        let jsonl = snap.to_jsonl();
        prop_assert_eq!(jsonl.lines().count(), snap.events.len());
        for (line, ev) in jsonl.lines().zip(snap.events.iter()) {
            let parsed = Json::parse(line).expect("every JSONL line parses");
            prop_assert_eq!(parsed.get("seq").unwrap().as_f64(), Some(ev.seq as f64));
            prop_assert_eq!(parsed.get("kind").unwrap().as_str(), Some(ev.kind));
            prop_assert_eq!(parsed.get("data").unwrap(), &ev.data);
        }
        let doc = Json::parse(&snap.to_json().pretty()).expect("snapshot json parses");
        prop_assert_eq!(doc.get("schema").unwrap().as_str(), Some("isis-obs/flight/1"));
        prop_assert_eq!(
            doc.get("events").unwrap().as_arr().unwrap().len(),
            snap.events.len()
        );
        // Clearing empties the buffer but never reuses sequence numbers.
        let high = snap.events.last().map(|e| e.seq).unwrap_or(0);
        obs.flight().clear();
        obs.flight_event("test.flight.after", || Json::Null);
        let after = obs.flight().snapshot();
        prop_assert_eq!(after.events.len(), 1);
        prop_assert!(after.events[0].seq > high);
    }

    /// A run report from a live instance is always parseable and carries
    /// the metrics that were recorded.
    #[test]
    fn run_report_reflects_recorded_metrics(counts in proptest::collection::vec(1u64..1000, 1..20)) {
        let obs = Obs::new();
        obs.set_tracing(true);
        for (i, &c) in counts.iter().enumerate() {
            obs.count("test.report.hits", c);
            obs.observe("test.report.size", c * (i as u64 + 1));
            let _span = obs.span("test.report.work");
        }
        let report = obs.run_report();
        let parsed = Json::parse(&report.dump()).expect("report parses");
        prop_assert_eq!(parsed.get("schema").unwrap().as_str(), Some("isis-obs/1"));
        let hits = parsed
            .get("metrics").unwrap()
            .get("test.report.hits").unwrap()
            .get("value").unwrap()
            .as_f64().unwrap();
        prop_assert_eq!(hits as u64, counts.iter().sum::<u64>());
        let spans = parsed.get("trace").unwrap().get("spans").unwrap();
        prop_assert_eq!(spans.as_arr().unwrap().len(), counts.len());
    }
}
