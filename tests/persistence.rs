//! Cross-crate persistence tests: snapshot + WAL recovery of real
//! databases, corruption injection at every byte, and crash-point sweeps.

use isis::prelude::*;
use isis::store::{read_snapshot_bytes, replay_log, write_snapshot_bytes, StoreDir, SyncPolicy};
use isis_sample::{instrumental_music, synthetic_music, Scale};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("isis_it_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn instrumental_music_full_roundtrip() {
    let root = tempdir("im");
    let dir = StoreDir::open(&root).unwrap();
    let mut im = instrumental_music().unwrap();
    // Commit the session's derived artifacts first so predicates and
    // derivations go through the codec.
    let pred = isis_sample::quartets_predicate(&mut im);
    let quartets = im
        .db
        .create_derived_subclass(im.music_groups, "quartets")
        .unwrap();
    im.db.commit_membership(quartets, pred).unwrap();
    let all_inst = im
        .db
        .create_attribute(quartets, "all_inst", im.instruments, Multiplicity::Multi)
        .unwrap();
    im.db
        .commit_derivation(all_inst, isis_sample::all_inst_derivation(&im))
        .unwrap();
    dir.save(&im.db, "Instrumental_Music").unwrap();
    let back = dir.load("Instrumental_Music").unwrap();
    assert_eq!(back.to_image(), im.db.to_image());
    assert!(back.is_consistent().unwrap());
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn synthetic_database_roundtrips_at_scale() {
    let s = synthetic_music(Scale::of(400), 5).unwrap();
    let bytes = write_snapshot_bytes(&s.db);
    let back = read_snapshot_bytes(&bytes).unwrap();
    assert_eq!(back.to_image(), s.db.to_image());
}

/// Every single-byte corruption of a snapshot is detected (CRC plus the
/// decoder's structural checks — nothing loads silently wrong).
#[test]
fn single_byte_corruption_never_loads_silently() {
    let im = instrumental_music().unwrap();
    let bytes = write_snapshot_bytes(&im.db);
    let original = im.db.to_image();
    // Sampling every 37th byte keeps the test fast while covering header,
    // frame, and payload regions.
    let mut checked = 0;
    for i in (0..bytes.len()).step_by(37) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x5A;
        match read_snapshot_bytes(&bad) {
            Err(_) => {}
            Ok(db) => {
                // A lucky flip may still decode — then it must decode to
                // *identical* state (e.g. flip inside ignored padding is
                // impossible here, so this should not happen).
                assert_eq!(db.to_image(), original, "byte {i} silently altered state");
            }
        }
        checked += 1;
    }
    assert!(checked > 10);
}

/// Crash-point sweep: cut the WAL at every prefix length; recovery must
/// always yield a consistent database equal to some prefix of the history.
#[test]
fn wal_crash_point_sweep() {
    let root = tempdir("sweep");
    let dir = StoreDir::open(&root).unwrap();
    // A history of states: snapshot the image after every logged op.
    let mut history = Vec::new();
    {
        let mut db = dir.open_logged("w", SyncPolicy::EverySync).unwrap();
        history.push(db.database().to_image());
        let m = db.create_baseclass("musicians").unwrap();
        history.push(db.database().to_image());
        let i = db.create_baseclass("instruments").unwrap();
        history.push(db.database().to_image());
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        history.push(db.database().to_image());
        let e = db.insert_entity(m, "Edith").unwrap();
        history.push(db.database().to_image());
        let v = db.insert_entity(i, "viola").unwrap();
        history.push(db.database().to_image());
        db.assign_multi(e, plays, [v]).unwrap();
        history.push(db.database().to_image());
        db.delete_entity(v).unwrap();
        history.push(db.database().to_image());
    }
    let wal_path = root.join("w.wal");
    let full = std::fs::read(&wal_path).unwrap();
    for cut in 0..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let recovered = dir.load("w").unwrap();
        assert!(recovered.is_consistent().unwrap(), "cut at {cut}");
        let img = recovered.to_image();
        assert!(
            history.contains(&img),
            "cut at {cut} produced a state outside the history"
        );
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// The WAL replays a long randomized workload to the identical image.
#[test]
fn randomized_workload_replays_exactly() {
    let root = tempdir("rand");
    let dir = StoreDir::open(&root).unwrap();
    let final_image;
    {
        let mut db = dir.open_logged("w", SyncPolicy::OsFlush).unwrap();
        let m = db.create_baseclass("m").unwrap();
        let i = db.create_baseclass("i").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let mut insts = Vec::new();
        for k in 0..40 {
            insts.push(db.insert_entity(i, &format!("inst{k}")).unwrap());
        }
        for k in 0..120 {
            let e = db.insert_entity(m, &format!("mus{k}")).unwrap();
            db.assign_multi(
                e,
                plays,
                [insts[k % insts.len()], insts[(k * 7) % insts.len()]],
            )
            .unwrap();
            if k % 5 == 0 {
                db.rename_entity(e, &format!("renamed{k}")).unwrap();
            }
            if k % 11 == 0 {
                db.delete_entity(insts[k % insts.len()]).unwrap();
                insts.remove(k % insts.len());
                let fresh = db.insert_entity(i, &format!("fresh{k}")).unwrap();
                insts.push(fresh);
            }
        }
        final_image = db.database().to_image();
        // No checkpoint: everything recovers from the log.
    }
    let recovered = dir.load("w").unwrap();
    assert_eq!(recovered.to_image(), final_image);
    let replay = replay_log(&root.join("w.wal")).unwrap();
    assert!(!replay.torn_tail);
    assert!(replay.ops.len() > 200);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Checkpoints interleave correctly with further logging.
#[test]
fn checkpoint_then_more_ops_recovers() {
    let root = tempdir("ckpt2");
    let dir = StoreDir::open(&root).unwrap();
    let final_image;
    {
        let mut db = dir.open_logged("w", SyncPolicy::EverySync).unwrap();
        db.create_baseclass("a").unwrap();
        db.checkpoint().unwrap();
        db.create_baseclass("b").unwrap();
        db.create_baseclass("c").unwrap();
        final_image = db.database().to_image();
    }
    let recovered = dir.load("w").unwrap();
    assert_eq!(recovered.to_image(), final_image);
    std::fs::remove_dir_all(&root).unwrap();
}

/// The "entertainment" save-as flow: both databases remain independently
/// loadable, and deleting one leaves the other.
#[test]
fn save_as_keeps_both() {
    let root = tempdir("saveas");
    let dir = StoreDir::open(&root).unwrap();
    let im = instrumental_music().unwrap();
    dir.save(&im.db, "Instrumental_Music").unwrap();
    let mut copy = dir.load("Instrumental_Music").unwrap();
    let mg = copy.class_by_name("music_groups").unwrap();
    copy.create_subclass(mg, "quartets").unwrap();
    dir.save(&copy, "entertainment").unwrap();
    assert_eq!(
        dir.list().unwrap(),
        vec![
            "Instrumental_Music".to_string(),
            "entertainment".to_string()
        ]
    );
    // The original is untouched.
    let orig = dir.load("Instrumental_Music").unwrap();
    assert!(orig.class_by_name("quartets").is_err());
    dir.delete("Instrumental_Music").unwrap();
    assert!(dir.load("entertainment").is_ok());
    std::fs::remove_dir_all(&root).unwrap();
}
