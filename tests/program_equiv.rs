//! The compiled-vs-interpreted equivalence battery: for random predicates
//! (both normal forms, identity and mapped constants, self-map right-hand
//! sides, ordering operators, negation), the compiled [`PredicateProgram`]
//! must agree with the core interpreter *exactly* — the same result set in
//! the same order when evaluation succeeds, and the same first error when
//! it fails (ordering atoms over non-literal or non-singleton sets). The
//! parallel battery repeats the check over randomized synthetic schemas
//! through the persistent-pool and spawn-per-call evaluators, and a third
//! battery pins the source-entity (`x`) atom semantics used by derived
//! attributes.

use isis::prelude::*;
use isis_query::{
    evaluate_derived_members_parallel, evaluate_derived_members_spawn, MemoTable, PredicateProgram,
    QueryError,
};
use isis_sample::{instrumental_music, synthetic_music, Scale};
use proptest::prelude::*;

/// Copyable handles into the instrumental-music schema plus two extra
/// attributes that make self-map comparisons non-degenerate: every
/// musician gets a `fav_instrument` set and a single `fav_family`.
#[derive(Debug, Clone)]
struct Ids {
    musicians: ClassId,
    instruments: ClassId,
    families: ClassId,
    booleans: ClassId,
    plays: AttrId,
    family: AttrId,
    union_attr: AttrId,
    fav_instrument: AttrId,
    fav_family: AttrId,
    all_musicians: Vec<EntityId>,
    all_instruments: Vec<EntityId>,
    fams: [EntityId; 4],
    yes: EntityId,
}

fn setup() -> (Database, Ids) {
    let mut im = instrumental_music().unwrap();
    let fav_instrument = im
        .db
        .create_attribute(
            im.musicians,
            "fav_instrument",
            im.instruments,
            Multiplicity::Multi,
        )
        .unwrap();
    let fav_family = im
        .db
        .create_attribute(
            im.musicians,
            "fav_family",
            im.families,
            Multiplicity::Single,
        )
        .unwrap();
    let fams = [im.brass, im.woodwind, im.stringed, im.keyboard];
    let insts = im.all_instruments.clone();
    for (i, &m) in im.all_musicians.iter().enumerate() {
        let i1 = insts[i % insts.len()];
        let i2 = insts[(i * 3 + 1) % insts.len()];
        im.db.assign_multi(m, fav_instrument, [i1, i2]).unwrap();
        im.db
            .assign_single(m, fav_family, fams[i % fams.len()])
            .unwrap();
    }
    let yes = im.db.boolean(true);
    let ids = Ids {
        musicians: im.musicians,
        instruments: im.instruments,
        families: im.families,
        booleans: im.db.predefined(BaseKind::Booleans),
        plays: im.plays,
        family: im.family,
        union_attr: im.union_attr,
        fav_instrument,
        fav_family,
        all_musicians: im.all_musicians.clone(),
        all_instruments: insts,
        fams,
        yes,
    };
    (im.db, ids)
}

/// A generated atom over musicians. `rhs_kind` picks among an identity
/// constant, a *mapped* constant (the hoisting target: its image must be
/// recomputed by the interpreter per candidate), and a self-map.
#[derive(Debug, Clone)]
struct GenAtom {
    /// 0 = plays, 1 = plays∘family, 2 = union, 3 = fav_instrument
    lhs: u8,
    /// Pool of 6: the 4 set ops plus Lt and Ge (the fallible ordering ops).
    op_idx: u8,
    negated: bool,
    /// 0 = identity constant, 1 = mapped constant, 2 = self-map
    rhs_kind: u8,
    consts: Vec<u8>,
}

fn atom_strategy() -> impl Strategy<Value = GenAtom> {
    (
        0u8..4,
        0u8..6,
        any::<bool>(),
        0u8..3,
        proptest::collection::vec(any::<u8>(), 0..3),
    )
        .prop_map(|(lhs, op_idx, negated, rhs_kind, consts)| GenAtom {
            lhs,
            op_idx,
            negated,
            rhs_kind,
            consts,
        })
}

const OPS: [CompareOp; 6] = [
    CompareOp::SetEq,
    CompareOp::Subset,
    CompareOp::Superset,
    CompareOp::Match,
    CompareOp::Lt,
    CompareOp::Ge,
];

fn build_atom(ids: &Ids, g: &GenAtom) -> Atom {
    let lhs = match g.lhs {
        0 => Map::single(ids.plays),
        1 => Map::new(vec![ids.plays, ids.family]),
        2 => Map::single(ids.union_attr),
        _ => Map::single(ids.fav_instrument),
    };
    let anchors = |pool: &[EntityId]| -> Vec<EntityId> {
        g.consts
            .iter()
            .map(|i| pool[*i as usize % pool.len()])
            .collect()
    };
    let rhs = match (g.lhs, g.rhs_kind % 3) {
        // Identity constants in the lhs terminal class.
        (0, 0) | (3, 0) => Rhs::constant(ids.instruments, anchors(&ids.all_instruments)),
        (1, 0) => Rhs::constant(ids.families, anchors(&ids.fams)),
        (2, 0) => Rhs::constant(ids.booleans, anchors(&[ids.yes])),
        // Mapped constants reaching the lhs terminal class through one
        // attribute step — the images the compiler hoists.
        (0, 1) | (3, 1) => Rhs::Constant {
            class: ids.musicians,
            anchors: anchors(&ids.all_musicians).into_iter().collect(),
            map: Map::single(ids.plays),
        },
        (1, 1) => Rhs::Constant {
            class: ids.instruments,
            anchors: anchors(&ids.all_instruments).into_iter().collect(),
            map: Map::single(ids.family),
        },
        (2, 1) => Rhs::Constant {
            class: ids.musicians,
            anchors: anchors(&ids.all_musicians).into_iter().collect(),
            map: Map::single(ids.union_attr),
        },
        // Self-maps with the same terminal class as the lhs.
        (0, _) | (3, _) => Rhs::SelfMap(Map::single(ids.fav_instrument)),
        (1, _) => Rhs::SelfMap(Map::single(ids.fav_family)),
        (2, _) => Rhs::SelfMap(Map::single(ids.union_attr)),
        _ => unreachable!(),
    };
    Atom::new(
        lhs,
        Operator {
            op: OPS[g.op_idx as usize % OPS.len()],
            negated: g.negated,
        },
        rhs,
    )
}

fn build_predicate(ids: &Ids, clauses: &[Vec<GenAtom>], dnf: bool) -> Predicate {
    let cs: Vec<Clause> = clauses
        .iter()
        .map(|atoms| Clause::new(atoms.iter().map(|g| build_atom(ids, g)).collect()))
        .collect();
    if dnf {
        Predicate::dnf(cs)
    } else {
        Predicate::cnf(cs)
    }
}

/// Both evaluators must agree on success (order and all) AND on failure
/// (the same first error — the compiled program's atom reordering keeps
/// fallible ordering atoms as barriers precisely so this holds).
fn check_serial(db: &Database, parent: ClassId, pred: &Predicate) {
    let interp = db.evaluate_derived_members(parent, pred);
    let prog = PredicateProgram::compile(db, parent, pred).unwrap();
    let compiled = prog.evaluate_extent(db, parent);
    match (interp, compiled) {
        (Ok(a), Ok(b)) => assert_eq!(a.as_slice(), b.as_slice(), "results differ for {pred}"),
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors differ for {pred}"),
        (a, b) => panic!("one side failed for {pred}: interpreted={a:?} compiled={b:?}"),
    }
}

proptest! {
    // The vendored stub's default is already 256; make the floor explicit.
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The headline battery: compiled ≡ interpreted over random predicate
    /// shapes on the instrumental-music schema, including the error paths.
    #[test]
    fn compiled_program_matches_interpreter(
        clauses in proptest::collection::vec(
            proptest::collection::vec(atom_strategy(), 1..4),
            1..4
        ),
        dnf in any::<bool>(),
    ) {
        let (db, ids) = setup();
        let pred = build_predicate(&ids, &clauses, dnf);
        db.validate_predicate(ids.musicians, None, &pred).unwrap();
        check_serial(&db, ids.musicians, &pred);
    }
}

/// A generated atom over synthetic music groups, for the parallel battery:
/// `size` atoms admit genuinely comparable ordering ops (integer
/// singletons), the map chains exercise memoised shared slots.
#[derive(Debug, Clone)]
struct GroupAtom {
    /// 0 = size, 1 = members, 2 = members∘plays, 3 = members∘plays∘family
    lhs: u8,
    op_idx: u8,
    negated: bool,
    /// 0 = identity constant, 1 = mapped constant
    rhs_kind: u8,
    consts: Vec<u8>,
}

fn group_atom_strategy() -> impl Strategy<Value = GroupAtom> {
    (
        0u8..4,
        0u8..6,
        any::<bool>(),
        0u8..2,
        proptest::collection::vec(any::<u8>(), 1..3),
    )
        .prop_map(|(lhs, op_idx, negated, rhs_kind, consts)| GroupAtom {
            lhs,
            op_idx,
            negated,
            rhs_kind,
            consts,
        })
}

fn build_group_atom(s: &mut isis_sample::SyntheticMusic, g: &GroupAtom) -> Atom {
    let ints = s.db.predefined(BaseKind::Integers);
    let int_pool: Vec<EntityId> = (2..7).map(|k| s.db.int(k)).collect();
    let lhs = match g.lhs {
        0 => Map::single(s.size),
        1 => Map::single(s.members),
        2 => Map::new(vec![s.members, s.plays]),
        _ => Map::new(vec![s.members, s.plays, s.family]),
    };
    let anchors = |pool: &[EntityId]| -> Vec<EntityId> {
        g.consts
            .iter()
            .map(|i| pool[*i as usize % pool.len()])
            .collect()
    };
    let rhs = match (g.lhs, g.rhs_kind % 2) {
        (0, 0) => Rhs::constant(ints, anchors(&int_pool)),
        (1, 0) => Rhs::constant(s.musicians, anchors(&s.musician_ids)),
        (2, 0) => Rhs::constant(s.instruments, anchors(&s.instrument_ids)),
        (3, 0) => Rhs::constant(s.families, anchors(&s.family_ids)),
        (0, _) => Rhs::Constant {
            class: s.music_groups,
            anchors: anchors(&s.group_ids).into_iter().collect(),
            map: Map::single(s.size),
        },
        (1, _) => Rhs::Constant {
            class: s.music_groups,
            anchors: anchors(&s.group_ids).into_iter().collect(),
            map: Map::single(s.members),
        },
        (2, _) => Rhs::Constant {
            class: s.musicians,
            anchors: anchors(&s.musician_ids).into_iter().collect(),
            map: Map::single(s.plays),
        },
        (3, _) => Rhs::Constant {
            class: s.instruments,
            anchors: anchors(&s.instrument_ids).into_iter().collect(),
            map: Map::single(s.family),
        },
        _ => unreachable!(),
    };
    Atom::new(
        lhs,
        Operator {
            op: OPS[g.op_idx as usize % OPS.len()],
            negated: g.negated,
        },
        rhs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The parallel battery over randomized schemas: interpreted ≡
    /// compiled-serial ≡ compiled-parallel (persistent pool) ≡
    /// compiled-parallel (spawn), for random scales and thread counts —
    /// including error agreement, which pins the chunk-splice rule that
    /// the globally-first error wins regardless of which worker hit it.
    #[test]
    fn parallel_compiled_matches_interpreter_on_random_schemas(
        n in 20usize..=300,
        seed in any::<u64>(),
        threads in 2usize..=8,
        clauses in proptest::collection::vec(
            proptest::collection::vec(group_atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
    ) {
        let mut s = synthetic_music(Scale::of(n), seed).unwrap();
        let cs: Vec<Clause> = clauses
            .iter()
            .map(|atoms| {
                Clause::new(atoms.iter().map(|g| build_group_atom(&mut s, g)).collect())
            })
            .collect();
        let pred = if dnf { Predicate::dnf(cs) } else { Predicate::cnf(cs) };
        s.db.validate_predicate(s.music_groups, None, &pred).unwrap();

        let interp = s.db.evaluate_derived_members(s.music_groups, &pred);
        check_serial(&s.db, s.music_groups, &pred);
        let cache = isis_query::ProgramCache::new();
        for run in [
            evaluate_derived_members_parallel(&cache, &s.db, s.music_groups, &pred, threads),
            evaluate_derived_members_spawn(&cache, &s.db, s.music_groups, &pred, threads),
        ] {
            match (&interp, run) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.as_slice(), b.as_slice()),
                (Err(ea), Err(QueryError::Core(eb))) => prop_assert_eq!(ea, &eb),
                (a, b) => {
                    panic!("parallel disagreement for {pred}: interpreted={a:?} parallel={b:?}")
                }
            }
        }
    }
}

/// A generated source-entity atom: instruments are the candidates, a
/// musician is the source `x`.
#[derive(Debug, Clone)]
struct SourceAtom {
    /// 0 = identity lhs vs plays(x), 1 = family lhs vs plays∘family(x)
    shape: u8,
    op_idx: u8,
    negated: bool,
}

fn source_atom_strategy() -> impl Strategy<Value = SourceAtom> {
    (0u8..2, 0u8..6, any::<bool>()).prop_map(|(shape, op_idx, negated)| SourceAtom {
        shape,
        op_idx,
        negated,
    })
}

fn build_source_atom(ids: &Ids, g: &SourceAtom) -> Atom {
    let (lhs, rhs) = match g.shape {
        0 => (Map::identity(), Rhs::SourceMap(Map::single(ids.plays))),
        _ => (
            Map::single(ids.family),
            Rhs::SourceMap(Map::new(vec![ids.plays, ids.family])),
        ),
    };
    Atom::new(
        lhs,
        Operator {
            op: OPS[g.op_idx as usize % OPS.len()],
            negated: g.negated,
        },
        rhs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The source-entity battery: for every (source musician, candidate
    /// instrument) pair, the compiled program with a live memo table must
    /// agree with the interpreter's `eval_predicate_for` — the memo keys
    /// source-slot images on the source entity, so sweeping sources is
    /// exactly the stress that would expose stale reuse.
    #[test]
    fn source_entity_atoms_match_interpreter(
        clauses in proptest::collection::vec(
            proptest::collection::vec(source_atom_strategy(), 1..3),
            1..3
        ),
        dnf in any::<bool>(),
    ) {
        let (db, ids) = setup();
        let cs: Vec<Clause> = clauses
            .iter()
            .map(|atoms| Clause::new(atoms.iter().map(|g| build_source_atom(&ids, g)).collect()))
            .collect();
        let pred = if dnf { Predicate::dnf(cs) } else { Predicate::cnf(cs) };
        db.validate_predicate(ids.instruments, Some(ids.musicians), &pred)
            .unwrap();
        let prog =
            PredicateProgram::compile_with(&db, ids.instruments, Some(ids.musicians), &pred, None)
                .unwrap();
        let mut memo = MemoTable::new(&prog);
        for &x in &ids.all_musicians {
            for &e in &ids.all_instruments {
                let interp = db.eval_predicate_for(e, &pred, Some(x));
                let compiled = prog.eval_for(&db, e, Some(x), &mut memo);
                match (interp, compiled) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "pair ({x:?}, {e:?}) for {pred}"),
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "errors for {pred}"),
                    (a, b) => {
                        panic!("one side failed for {pred}: interpreted={a:?} compiled={b:?}")
                    }
                }
            }
        }
    }
}
