//! Property-based tests of the §2 consistency invariants: arbitrary
//! sequences of schema and data operations leave the database consistent,
//! and every operation either succeeds preserving the invariants or is
//! refused leaving the database untouched.

use isis::prelude::*;
use proptest::prelude::*;

/// The operation alphabet for the fuzzer. Indices are taken modulo the
/// relevant population so every generated value is meaningful.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)]
enum Op {
    CreateBase(u8),
    CreateSub {
        parent: u8,
        tag: u8,
    },
    CreateAttr {
        class: u8,
        vc: u8,
        multi: bool,
        tag: u8,
    },
    CreateGroupingOp {
        class: u8,
        attr: u8,
        tag: u8,
    },
    InsertEntity {
        base: u8,
        tag: u8,
    },
    AddToClass {
        ent: u8,
        class: u8,
    },
    RemoveFromClass {
        ent: u8,
        class: u8,
    },
    AssignSingle {
        ent: u8,
        attr: u8,
        val: u8,
    },
    AssignMulti {
        ent: u8,
        attr: u8,
        vals: Vec<u8>,
    },
    Unassign {
        ent: u8,
        attr: u8,
    },
    DeleteEntity(u8),
    DeleteClass(u8),
    DeleteAttr(u8),
    DeleteGrouping(u8),
    RenameEntity {
        ent: u8,
        tag: u8,
    },
    RenameClass {
        class: u8,
        tag: u8,
    },
    InternInt(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::CreateBase),
        (any::<u8>(), any::<u8>()).prop_map(|(parent, tag)| Op::CreateSub { parent, tag }),
        (any::<u8>(), any::<u8>(), any::<bool>(), any::<u8>()).prop_map(
            |(class, vc, multi, tag)| Op::CreateAttr {
                class,
                vc,
                multi,
                tag
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(class, attr, tag)| Op::CreateGroupingOp { class, attr, tag }),
        (any::<u8>(), any::<u8>()).prop_map(|(base, tag)| Op::InsertEntity { base, tag }),
        (any::<u8>(), any::<u8>()).prop_map(|(ent, class)| Op::AddToClass { ent, class }),
        (any::<u8>(), any::<u8>()).prop_map(|(ent, class)| Op::RemoveFromClass { ent, class }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(ent, attr, val)| Op::AssignSingle {
            ent,
            attr,
            val
        }),
        (
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..4)
        )
            .prop_map(|(ent, attr, vals)| Op::AssignMulti { ent, attr, vals }),
        (any::<u8>(), any::<u8>()).prop_map(|(ent, attr)| Op::Unassign { ent, attr }),
        any::<u8>().prop_map(Op::DeleteEntity),
        any::<u8>().prop_map(Op::DeleteClass),
        any::<u8>().prop_map(Op::DeleteAttr),
        any::<u8>().prop_map(Op::DeleteGrouping),
        (any::<u8>(), any::<u8>()).prop_map(|(ent, tag)| Op::RenameEntity { ent, tag }),
        (any::<u8>(), any::<u8>()).prop_map(|(class, tag)| Op::RenameClass { class, tag }),
        (-50i64..50).prop_map(Op::InternInt),
    ]
}

fn pick<T: Copy>(items: &[T], i: u8) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[i as usize % items.len()])
    }
}

/// Applies one op; failures are fine (refused operations), panics are not.
fn apply(db: &mut Database, op: &Op) {
    let classes: Vec<ClassId> = db.classes().map(|(c, _)| c).collect();
    let attrs: Vec<AttrId> = db.attrs().map(|(a, _)| a).collect();
    let groupings: Vec<GroupingId> = db.groupings().map(|(g, _)| g).collect();
    let entities: Vec<EntityId> = db.entities().map(|(e, _)| e).collect();
    let _ = match op {
        Op::CreateBase(tag) => db.create_baseclass(&format!("base{tag}")).map(|_| ()),
        Op::CreateSub { parent, tag } => match pick(&classes, *parent) {
            Some(p) => db.create_subclass(p, &format!("sub{tag}")).map(|_| ()),
            None => Ok(()),
        },
        Op::CreateAttr {
            class,
            vc,
            multi,
            tag,
        } => match (pick(&classes, *class), pick(&classes, *vc)) {
            (Some(c), Some(v)) => db
                .create_attribute(
                    c,
                    &format!("attr{tag}"),
                    v,
                    if *multi {
                        Multiplicity::Multi
                    } else {
                        Multiplicity::Single
                    },
                )
                .map(|_| ()),
            _ => Ok(()),
        },
        Op::CreateGroupingOp { class, attr, tag } => {
            match (pick(&classes, *class), pick(&attrs, *attr)) {
                (Some(c), Some(a)) => db.create_grouping(c, &format!("grp{tag}"), a).map(|_| ()),
                _ => Ok(()),
            }
        }
        Op::InsertEntity { base, tag } => match pick(&classes, *base) {
            Some(b) => db.insert_entity(b, &format!("ent{tag}")).map(|_| ()),
            None => Ok(()),
        },
        Op::AddToClass { ent, class } => match (pick(&entities, *ent), pick(&classes, *class)) {
            (Some(e), Some(c)) => db.add_to_class(e, c).map(|_| ()),
            _ => Ok(()),
        },
        Op::RemoveFromClass { ent, class } => {
            match (pick(&entities, *ent), pick(&classes, *class)) {
                (Some(e), Some(c)) => db.remove_from_class(e, c).map(|_| ()),
                _ => Ok(()),
            }
        }
        Op::AssignSingle { ent, attr, val } => {
            match (
                pick(&entities, *ent),
                pick(&attrs, *attr),
                pick(&entities, *val),
            ) {
                (Some(e), Some(a), Some(v)) => db.assign_single(e, a, v).map(|_| ()),
                _ => Ok(()),
            }
        }
        Op::AssignMulti { ent, attr, vals } => match (pick(&entities, *ent), pick(&attrs, *attr)) {
            (Some(e), Some(a)) => {
                let vs: Vec<EntityId> = vals.iter().filter_map(|v| pick(&entities, *v)).collect();
                db.assign_multi(e, a, vs).map(|_| ())
            }
            _ => Ok(()),
        },
        Op::Unassign { ent, attr } => match (pick(&entities, *ent), pick(&attrs, *attr)) {
            (Some(e), Some(a)) => db.unassign(e, a).map(|_| ()),
            _ => Ok(()),
        },
        Op::DeleteEntity(i) => match pick(&entities, *i) {
            Some(e) => db.delete_entity(e).map(|_| ()),
            None => Ok(()),
        },
        Op::DeleteClass(i) => match pick(&classes, *i) {
            Some(c) => db.delete_class(c).map(|_| ()),
            None => Ok(()),
        },
        Op::DeleteAttr(i) => match pick(&attrs, *i) {
            Some(a) => db.delete_attr(a).map(|_| ()),
            None => Ok(()),
        },
        Op::DeleteGrouping(i) => match pick(&groupings, *i) {
            Some(g) => db.delete_grouping(g).map(|_| ()),
            None => Ok(()),
        },
        Op::RenameEntity { ent, tag } => match pick(&entities, *ent) {
            Some(e) => db.rename_entity(e, &format!("renamed{tag}")).map(|_| ()),
            None => Ok(()),
        },
        Op::RenameClass { class, tag } => match pick(&classes, *class) {
            Some(c) => db.rename_class(c, &format!("reclass{tag}")).map(|_| ()),
            None => Ok(()),
        },
        Op::InternInt(v) => db.intern(Literal::Int(*v)).map(|_| ()),
    };
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Invariant I: any operation sequence leaves the database consistent.
    #[test]
    fn random_ops_preserve_consistency(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut db = Database::new("fuzz");
        for op in &ops {
            apply(&mut db, op);
        }
        let violations = db.check_consistency().unwrap();
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    /// Invariant II: a refused operation leaves the database untouched.
    #[test]
    fn refused_ops_have_no_effect(ops in proptest::collection::vec(op_strategy(), 1..40), probe in op_strategy()) {
        let mut db = Database::new("fuzz");
        for op in &ops {
            apply(&mut db, op);
        }
        let before = db.to_image();
        // Try an operation; if it errors, the image must be unchanged.
        let classes: Vec<ClassId> = db.classes().map(|(c, _)| c).collect();
        let result_changed = {
            let mut db2 = db.clone();
            apply(&mut db2, &probe);
            db2.to_image() != before
        };
        apply(&mut db, &probe);
        // Either both applications changed it identically, or neither did.
        prop_assert_eq!(db.to_image() != before, result_changed);
        let _ = classes;
    }

    /// Invariant III: image round-trips are lossless for any reachable state.
    #[test]
    fn image_roundtrip_any_state(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut db = Database::new("fuzz");
        for op in &ops {
            apply(&mut db, op);
        }
        let img = db.to_image();
        let back = Database::from_image(img.clone()).unwrap();
        prop_assert_eq!(back.to_image(), img);
    }

    /// Invariant IV: membership is always closed upward (each member of a
    /// subclass is in every ancestor), checked independently of the
    /// consistency checker's own implementation.
    #[test]
    fn membership_upward_closed(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        let mut db = Database::new("fuzz");
        for op in &ops {
            apply(&mut db, op);
        }
        let classes: Vec<ClassId> = db.classes().map(|(c, _)| c).collect();
        for c in classes {
            let ancestry = db.ancestry(c).unwrap();
            for e in db.members(c).unwrap().iter() {
                for a in &ancestry {
                    prop_assert!(db.members(*a).unwrap().contains(e));
                }
            }
        }
    }
}

#[test]
fn interning_is_stable_across_mutation() {
    let mut db = Database::new("t");
    let a = db.int(7);
    let base = db.create_baseclass("things").unwrap();
    db.insert_entity(base, "x").unwrap();
    let b = db.int(7);
    assert_eq!(a, b);
}
