//! Session-level coverage on the university domain: deep inheritance in
//! the views, following a grouping-ranged attribute (the `B: S ↔ parent(G)`
//! reading of §2), and the advising constraint through `CheckConstraints`.

use isis::prelude::*;
use isis::sample::university;
use isis_session::{Command, Mode, Session};
use isis_views::Emphasis;

#[test]
fn deep_chain_renders_with_four_levels() {
    let u = university().unwrap();
    let mut s = Session::builder(u.db.clone()).build();
    s.apply(Command::Pick(SchemaNode::Class(u.teaching_assistants)))
        .unwrap();
    let scene = s.scene().unwrap();
    for name in [
        "people",
        "students",
        "graduate_students",
        "teaching_assistants",
        "staff",
    ] {
        assert!(scene.has_text(name), "{name}");
    }
    assert!(scene.hand().is_some());
}

#[test]
fn following_a_grouping_ranged_attribute_lands_on_the_grouping_page() {
    let u = university().unwrap();
    let mut s = Session::builder(u.db.clone()).build();
    // departments.teaches_in ranges over the by_building grouping: following
    // it must open the *grouping* page with the index sets highlighted.
    s.apply(Command::Pick(SchemaNode::Class(u.departments)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    let cs = s
        .database()
        .entity_by_name(u.departments, "computer_science")
        .unwrap();
    s.apply(Command::SelectEntity(cs)).unwrap();
    s.apply(Command::Follow(u.teaches_in)).unwrap();
    let top = s.pages().last().unwrap();
    assert_eq!(top.node, SchemaNode::Grouping(u.by_building));
    // The CIT building's set is the data selection.
    let cit = s
        .database()
        .entity_by_name(s.database().predefined(BaseKind::Strings), "CIT")
        .unwrap();
    assert_eq!(top.selected, vec![cit]);
    let scene = s.scene().unwrap();
    assert!(scene
        .texts()
        .any(|(t, e)| t.contains("CIT") && t.contains("(2)") && e == Emphasis::Bold));
    // Following onward from the grouping page reaches the rooms.
    s.apply(Command::FollowGrouping).unwrap();
    let top = s.pages().last().unwrap();
    assert_eq!(top.node, SchemaNode::Class(u.rooms));
    assert_eq!(top.selected.len(), 2); // CIT 368 and CIT 159
    assert_eq!(*s.mode(), Mode::Data);
}

#[test]
fn constraint_check_reports_through_the_session() {
    let u = university().unwrap();
    let mut s = Session::builder(u.db.clone()).build();
    s.apply(Command::CheckConstraints).unwrap();
    assert!(s
        .messages()
        .last()
        .unwrap()
        .contains("all 1 constraints hold"));
    // Corrupt advising behind the engine's back, then re-check.
    let paris = u.paris;
    let advisor = u.advisor;
    #[allow(deprecated)]
    s.database_mut()
        .assign_single(paris, advisor, paris)
        .unwrap();
    s.apply(Command::CheckConstraints).unwrap();
    let msg = s.messages().last().unwrap();
    assert!(msg.contains("no_self_advising"), "{msg}");
    assert!(msg.contains("Paris"), "{msg}");
}

#[test]
fn multi_parent_membership_through_session_commands() {
    let u = university().unwrap();
    let mut s = Session::builder(u.db.clone()).build();
    s.apply(Command::Pick(SchemaNode::Class(u.teaching_assistants)))
        .unwrap();
    s.apply(Command::ViewContents).unwrap();
    s.apply(Command::CreateEntity("Rivka".into())).unwrap();
    let db = s.database();
    let rivka = db.entity_by_name(u.people, "Rivka").unwrap();
    // Cascades through BOTH parent chains.
    for class in [
        u.teaching_assistants,
        u.graduate_students,
        u.students,
        u.staff,
        u.people,
    ] {
        assert!(db.members(class).unwrap().contains(rivka));
    }
    assert!(db.is_consistent().unwrap());
}
