//! Fuzzing the REPL front end: arbitrary input lines must never panic the
//! interpreter, and whatever sequence of commands survives, the database
//! stays consistent.

use isis::repl::Repl;
use isis_session::Session;
use proptest::prelude::*;

/// Lines biased toward almost-valid commands (random verbs with random
/// arguments drawn from real schema names and junk).
fn line_strategy() -> impl Strategy<Value = String> {
    let verbs = prop_oneof![
        Just("pick"),
        Just("pickattr"),
        Just("associations"),
        Just("contents"),
        Just("pop"),
        Just("rename"),
        Just("subclass"),
        Just("attribute"),
        Just("valueclass"),
        Just("grouping"),
        Just("delete"),
        Just("predicate"),
        Just("select"),
        Just("follow"),
        Just("followg"),
        Just("assign"),
        Just("newentity"),
        Just("makesub"),
        Just("scroll"),
        Just("move"),
        Just("pan"),
        Just("define"),
        Just("derive"),
        Just("constraint"),
        Just("atom"),
        Just("edit"),
        Just("push"),
        Just("poplhs"),
        Just("op"),
        Just("rhsmap"),
        Just("rhssrc"),
        Just("const"),
        Just("toggle"),
        Just("done"),
        Just("clause"),
        Just("switch"),
        Just("hand"),
        Just("commit"),
        Just("checks"),
        Just("undo"),
        Just("redo"),
        Just("show"),
        Just("help"),
    ];
    let args = prop_oneof![
        Just("musicians".to_string()),
        Just("instruments".to_string()),
        Just("plays".to_string()),
        Just("family".to_string()),
        Just("size".to_string()),
        Just("by_family".to_string()),
        Just("Edith".to_string()),
        Just("flute".to_string()),
        Just("4".to_string()),
        Just("yes".to_string()),
        Just("=".to_string()),
        Just(">=s".to_string()),
        Just("~".to_string()),
        Just("single".to_string()),
        Just("multi".to_string()),
        Just("forall".to_string()),
        Just("1".to_string()),
        Just("2".to_string()),
        Just("-3".to_string()),
        Just("A".to_string()),
        "[ -~]{0,12}",
    ];
    (verbs, proptest::collection::vec(args, 0..3)).prop_map(|(v, a)| {
        let mut line = v.to_string();
        for arg in a {
            line.push(' ');
            line.push_str(&arg);
        }
        line
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn repl_never_panics_and_db_stays_consistent(
        lines in proptest::collection::vec(line_strategy(), 1..40)
    ) {
        let im = isis::sample::instrumental_music().unwrap();
        let mut repl = Repl::new(Session::builder(im.db).build());
        for line in &lines {
            // Errors are fine; panics are not.
            let _ = repl.exec(line);
        }
        prop_assert!(repl.session.database().is_consistent().unwrap());
    }

    #[test]
    fn repl_handles_arbitrary_garbage(lines in proptest::collection::vec("[ -~]{0,60}", 1..20)) {
        let im = isis::sample::instrumental_music().unwrap();
        let mut repl = Repl::new(Session::builder(im.db).build());
        for line in &lines {
            let _ = repl.exec(line);
        }
        prop_assert!(repl.session.database().is_consistent().unwrap());
    }
}
