//! Rendering-level snapshot checks for the regenerated figures: the ASCII
//! output of each figure must contain the structural landmarks a reader of
//! the paper would look for, and the SVG must be well-formed.
//!
//! (Substring assertions rather than byte-golden files keep the tests
//! robust to cosmetic layout tweaks while still pinning the content.)

use isis::holiday::{diagram1_scene, run_holiday_party, FIGURES};
use isis::views::render::{ascii, svg};

struct Rendered {
    name: &'static str,
    txt: String,
    svg: String,
}

fn render_all() -> Vec<Rendered> {
    let (_s, t) = run_holiday_party(None).unwrap();
    let mut out = vec![Rendered {
        name: "diagram1",
        txt: ascii::render(&diagram1_scene()),
        svg: svg::render(&diagram1_scene()),
    }];
    for name in FIGURES {
        let scene = t.scene(name).unwrap();
        out.push(Rendered {
            name,
            txt: ascii::render(scene),
            svg: svg::render(scene),
        });
    }
    out
}

#[test]
fn all_svgs_are_wellformed() {
    for r in render_all() {
        assert!(r.svg.starts_with("<svg"), "{}", r.name);
        assert!(r.svg.trim_end().ends_with("</svg>"), "{}", r.name);
        for tag in ["text", "rect"] {
            let open = r.svg.matches(&format!("<{tag}")).count();
            let close = r.svg.matches(&format!("</{tag}>")).count() + r.svg.matches("/>").count();
            assert!(open <= close, "{}: unbalanced <{tag}>", r.name);
        }
        // No raw ampersands or angle brackets from names leaked through.
        assert!(!r.svg.contains("& "), "{}", r.name);
    }
}

#[test]
fn ascii_landmarks_per_figure() {
    let rendered = render_all();
    let find = |name: &str| rendered.iter().find(|r| r.name == name).unwrap();

    let d = find("diagram1");
    for s in ["SCHEMA LEVEL", "DATA LEVEL", "view contents", "pop"] {
        assert!(d.txt.contains(s), "diagram1 missing {s}");
    }
    let f1 = find("fig01_forest_soloists");
    for s in [
        "#musicians#",
        "soloists",
        "by_instrument",
        "=>",
        "view associations",
    ] {
        assert!(f1.txt.contains(s), "fig01 missing {s:?}");
    }
    let f2 = find("fig02_network_instruments");
    for s in ["#instruments#", "family", "plays", "#STRINGS#"] {
        assert!(f2.txt.contains(s), "fig02 missing {s:?}");
    }
    let f3 = find("fig03_data_select_oboe");
    for s in ["*flute*", "*oboe*", "members:", "select/reject", "follow"] {
        assert!(f3.txt.contains(s), "fig03 missing {s:?}");
    }
    let f4 = find("fig04_follow_family");
    for s in ["*brass*", "woodwind", "families"] {
        assert!(f4.txt.contains(s), "fig04 missing {s:?}");
    }
    let f5 = find("fig05_reassign_family");
    assert!(f5.txt.contains("assigned family = woodwind for 2 entities"));
    let f6 = find("fig06_grouping_percussion");
    assert!(f6.txt.contains("*{percussion} (2)*"));
    let f7 = find("fig07_follow_into_instruments");
    for s in ["*drums*", "*cymbals*"] {
        assert!(f7.txt.contains(s), "fig07 missing {s:?}");
    }
    let f8 = find("fig08_create_quartets");
    assert!(f8.txt.contains("quartets"));
    let f9 = find("fig09_worksheet_quartets");
    for s in [
        "clause 1",
        "clause 2",
        "size = {4}",
        "{piano}",
        "CNF",
        "switch and/or",
        "commit",
    ] {
        assert!(f9.txt.contains(s), "fig09 missing {s:?}");
    }
    let f10 = find("fig10_derivation_all_inst");
    for s in ["all_inst", "=>"] {
        assert!(f10.txt.contains(s), "fig10 missing {s:?}");
    }
    let f11 = find("fig11_focus_edith");
    assert!(f11.txt.contains("*Edith*"));
    assert!(!f11.txt.contains("*Kurt*"));
    let f12 = find("fig12_forest_edith_plays");
    assert!(f12.txt.contains("edith_plays"));
}

#[test]
fn figures_are_reasonably_sized() {
    for r in render_all() {
        let lines = r.txt.lines().count();
        assert!(lines > 5, "{} suspiciously small ({lines} lines)", r.name);
        assert!(lines < 200, "{} suspiciously large ({lines} lines)", r.name);
        assert!(r.svg.len() < 200_000, "{} svg too large", r.name);
    }
}

#[test]
fn every_figure_carries_the_database_banner() {
    for r in render_all().iter().skip(1) {
        assert!(
            r.txt.contains("Instrumental_Music"),
            "{} missing the title banner",
            r.name
        );
    }
}
