//! Crash-consistency suite: simulate a crash at *every* fault point a
//! workload exposes (every byte boundary of every write and append, every
//! fsync, rename, truncate, and remove) and assert that recovery always
//! succeeds with a state equal to some committed prefix of the operation
//! sequence, never losing an acknowledged operation.
//!
//! Also home to the codec corruption matrix (every-byte bit flips and
//! truncations over a real snapshot and log) and a seeded randomized
//! fault storm (`ISIS_CRASH_SEED` overrides the seed; it is printed on
//! failure).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use isis_core::DatabaseImage;
use isis_store::{
    read_snapshot_bytes, replay_log, replay_with, FaultVfs, LoggedDatabase, StdVfs, StoreDir,
    StoreError, SyncPolicy,
};

fn tempdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("isis_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One labelled step of the workload.
type Action = (
    &'static str,
    fn(&mut LoggedDatabase) -> Result<(), StoreError>,
);

/// The workload: a database-building session with two checkpoints. Every
/// action resolves the ids it needs by name, so a prefix of the sequence
/// is meaningful on its own and the same list drives both the probe run
/// and every crash run.
fn actions() -> Vec<Action> {
    use isis_core::Multiplicity;
    fn class(db: &LoggedDatabase, name: &str) -> Result<isis_core::ClassId, StoreError> {
        Ok(db.database().class_by_name(name)?)
    }
    vec![
        ("create musicians", |db| {
            db.create_baseclass("musicians").map(|_| ())
        }),
        ("create instruments", |db| {
            db.create_baseclass("instruments").map(|_| ())
        }),
        ("create plays", |db| {
            let m = class(db, "musicians")?;
            let i = class(db, "instruments")?;
            db.create_attribute(m, "plays", i, Multiplicity::Multi)
                .map(|_| ())
        }),
        ("insert Edith", |db| {
            let m = class(db, "musicians")?;
            db.insert_entity(m, "Edith").map(|_| ())
        }),
        ("insert viola", |db| {
            let i = class(db, "instruments")?;
            db.insert_entity(i, "viola").map(|_| ())
        }),
        ("assign plays", |db| {
            let m = class(db, "musicians")?;
            let i = class(db, "instruments")?;
            let plays = db.database().attr_by_name(m, "plays")?;
            let e = db.database().entity_by_name(m, "Edith")?;
            let v = db.database().entity_by_name(i, "viola")?;
            db.assign_multi(e, plays, [v]).map(|_| ())
        }),
        ("checkpoint 1", |db| db.checkpoint()),
        ("create violists", |db| {
            let m = class(db, "musicians")?;
            db.create_subclass(m, "violists").map(|_| ())
        }),
        ("insert cello", |db| {
            let i = class(db, "instruments")?;
            db.insert_entity(i, "cello").map(|_| ())
        }),
        ("add cello to plays", |db| {
            let m = class(db, "musicians")?;
            let i = class(db, "instruments")?;
            let plays = db.database().attr_by_name(m, "plays")?;
            let e = db.database().entity_by_name(m, "Edith")?;
            let c = db.database().entity_by_name(i, "cello")?;
            db.add_value(e, plays, c).map(|_| ())
        }),
        ("rename Edith", |db| {
            let m = class(db, "musicians")?;
            let e = db.database().entity_by_name(m, "Edith")?;
            db.rename_entity(e, "Edith P").map(|_| ())
        }),
        ("checkpoint 2", |db| db.checkpoint()),
        ("insert Karen", |db| {
            let m = class(db, "musicians")?;
            db.insert_entity(m, "Karen").map(|_| ())
        }),
        ("unassign plays", |db| {
            let m = class(db, "musicians")?;
            let plays = db.database().attr_by_name(m, "plays")?;
            let e = db.database().entity_by_name(m, "Edith P")?;
            db.unassign(e, plays).map(|_| ())
        }),
    ]
}

/// Runs the workload in `root` through `vfs`, stopping at the first
/// failure (a crash). Returns the number of acknowledged actions; with
/// `history`, records the image after the open and after each action.
fn run_workload(
    root: &Path,
    vfs: Arc<FaultVfs>,
    mut history: Option<&mut Vec<DatabaseImage>>,
) -> (usize, Result<(), StoreError>) {
    let mut acked = 0;
    let result = (|| {
        let dir = StoreDir::open_with(root, vfs)?;
        let mut db = dir.open_logged("w", SyncPolicy::EverySync)?;
        if let Some(h) = history.as_mut() {
            h.push(db.database().to_image());
        }
        for (_, action) in actions() {
            action(&mut db)?;
            acked += 1;
            if let Some(h) = history.as_mut() {
                h.push(db.database().to_image());
            }
        }
        Ok(())
    })();
    (acked, result)
}

/// The tentpole: a crash at every single fault point, recovery always
/// total, state always a committed prefix, no acknowledged action lost.
#[test]
fn crash_at_every_fault_point_recovers_a_committed_prefix() {
    // Probe: count the fault points and capture the image after every
    // committed prefix of the workload.
    let probe_root = tempdir("probe");
    let counter = Arc::new(FaultVfs::counting());
    let mut history = Vec::new();
    let (total_actions, result) = run_workload(&probe_root, counter.clone(), Some(&mut history));
    result.expect("probe run must complete");
    let steps = counter.steps();
    assert_eq!(history.len(), total_actions + 1);
    assert!(
        steps > 200,
        "expected a workload with hundreds of fault points, got {steps}"
    );
    std::fs::remove_dir_all(&probe_root).unwrap();

    let root = tempdir("sweep");
    for s in 0..=steps {
        let _ = std::fs::remove_dir_all(&root);
        let fault = Arc::new(FaultVfs::crash_at(s));
        let (acked, result) = run_workload(&root, fault.clone(), None);
        if s >= steps {
            assert!(
                result.is_ok(),
                "crash point past the workload must not fire"
            );
        } else {
            assert!(result.is_err(), "crash at step {s} must surface an error");
        }

        // Power back on: reopen with a clean VFS and recover.
        let clean = StoreDir::open(&root).unwrap();
        if !clean.exists("w") {
            assert_eq!(
                acked, 0,
                "crash at step {s}: actions were acknowledged but no database survived"
            );
            continue;
        }
        let (db, report) = clean
            .recover("w")
            .unwrap_or_else(|e| panic!("crash at step {s}: recovery failed: {e}"));
        assert!(
            db.is_consistent().unwrap(),
            "crash at step {s}: recovered database is inconsistent\n{report}"
        );
        let image = db.to_image();
        let idx = history
            .iter()
            .rposition(|h| *h == image)
            .unwrap_or_else(|| {
                panic!("crash at step {s}: recovered state is not a committed prefix\n{report}")
            });
        assert!(
            idx >= acked,
            "crash at step {s}: lost acknowledged work (recovered prefix {idx}, acked {acked})\n{report}"
        );
        // Recovery is repeatable and the handle-level open heals the
        // directory back to a pristine state.
        let reopened = clean.open_logged("w", SyncPolicy::EverySync).unwrap();
        assert_eq!(reopened.database().to_image(), image);
        drop(reopened);
        let (_, report2) = clean.recover("w").unwrap();
        assert!(
            report2.is_pristine(),
            "crash at step {s}: reopen did not heal: {report2}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A corrupted newest snapshot falls back to the previous generation and
/// the log suffix that belongs to it.
#[test]
fn fallback_generation_plus_wal_survives_newest_corruption() {
    let root = tempdir("fallback");
    let dir = StoreDir::open(&root).unwrap();
    let mut db = dir.open_logged("w", SyncPolicy::EverySync).unwrap();
    for (label, action) in actions() {
        action(&mut db).unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    let image = db.database().to_image();
    drop(db);
    // The last checkpoint left the previous generation in the fallback
    // slot; the log holds everything since. Corrupt the newest snapshot.
    let snap = root.join("w.isis");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&snap, &bytes).unwrap();
    let (recovered, report) = dir.recover("w").unwrap();
    assert!(report.used_fallback);
    assert!(recovered.is_consistent().unwrap());
    // Fallback generation is checkpoint 2's fold; its log is the stale
    // newest generation's, so the recovered state is checkpoint 2's.
    assert!(report.wal_stale);
    let _ = image;
    std::fs::remove_dir_all(&root).unwrap();
}

/// Satellite: the corruption matrix. Every single-bit flip and every
/// truncation of a real snapshot errors cleanly; every single-bit flip of
/// a real log leaves strict replay a committed prefix and salvage replay a
/// subsequence — and none of it panics.
#[test]
fn corruption_matrix_over_snapshot_and_log() {
    let root = tempdir("matrix");
    let dir = StoreDir::open(&root).unwrap();
    let mut db = dir.open_logged("w", SyncPolicy::OsFlush).unwrap();
    for (i, (_, action)) in actions().into_iter().enumerate() {
        // Skip the checkpoints: keep every op in one log segment.
        if i != 6 && i != 11 {
            action(&mut db).unwrap();
        }
    }
    drop(db);
    let snap_bytes = std::fs::read(root.join("w.isis")).unwrap();
    let wal_path = root.join("w.wal");
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let original = read_snapshot_bytes(&snap_bytes).unwrap();
    let baseline = replay_log(&wal_path).unwrap();
    assert!(baseline.ops.len() >= 10);
    assert!(!baseline.torn_tail);

    // Snapshot: every single-bit flip is detected (the generation lives
    // inside the checksummed frame, so it is covered too).
    for pos in 0..snap_bytes.len() {
        let mut bad = snap_bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        assert!(
            read_snapshot_bytes(&bad).is_err(),
            "flip at byte {pos} went undetected"
        );
    }
    // Snapshot: every truncation is detected.
    for len in 0..snap_bytes.len() {
        assert!(
            read_snapshot_bytes(&snap_bytes[..len]).is_err(),
            "truncation to {len} bytes went undetected"
        );
    }
    let _ = original;

    let vfs = StdVfs::new();
    for pos in 0..wal_bytes.len() {
        let mut bad = wal_bytes.clone();
        bad[pos] ^= 1 << (pos % 8);
        std::fs::write(&wal_path, &bad).unwrap();
        // Strict replay: never panics, always yields a committed prefix.
        let strict = replay_with(&vfs, &wal_path, false)
            .unwrap_or_else(|e| panic!("flip at byte {pos}: strict replay failed: {e}"));
        assert!(
            baseline.ops.starts_with(&strict.ops),
            "flip at byte {pos}: strict replay is not a prefix"
        );
        // Salvage replay: resynchronises, yields a subsequence.
        let salvage = replay_with(&vfs, &wal_path, true)
            .unwrap_or_else(|e| panic!("flip at byte {pos}: salvage replay failed: {e}"));
        let mut it = baseline.ops.iter();
        assert!(
            salvage.ops.iter().all(|op| it.any(|b| b == op)),
            "flip at byte {pos}: salvage replay is not a subsequence"
        );
        assert!(
            salvage.ops.len() >= strict.ops.len(),
            "flip at byte {pos}: salvage recovered less than strict"
        );
    }
    // Log truncations: strict replay drops the torn tail, keeps the prefix.
    for len in 0..wal_bytes.len() {
        std::fs::write(&wal_path, &wal_bytes[..len]).unwrap();
        let r = replay_with(&vfs, &wal_path, false).unwrap();
        assert!(
            baseline.ops.starts_with(&r.ops),
            "truncation to {len}: not a prefix"
        );
        if len < wal_bytes.len() {
            assert!(r.ops.len() < baseline.ops.len() || r.torn_tail || len == 0);
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}

/// Seeded fault storm: under random torn writes, fsync failures, dropped
/// renames, ENOSPC, and silent bit flips in the log, the directory always
/// reopens to a consistent database. Set `ISIS_CRASH_SEED` to reproduce a
/// failure; the seed is in every panic message.
#[test]
fn seeded_fault_storm_always_reopens_consistent() {
    let seed: u64 = std::env::var("ISIS_CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    let mut injected_total = 0;
    for round in 0..12u64 {
        let seed = seed.wrapping_add(round.wrapping_mul(0x9E37_79B9));
        let root = tempdir("storm");
        let fault = Arc::new(FaultVfs::seeded(seed));
        {
            let dir = match StoreDir::open_with(&root, fault.clone()) {
                Ok(d) => d,
                Err(_) => continue,
            };
            // Apply the workload, shrugging off injected failures; retry
            // the open a few times since recovery itself runs on the
            // faulty device.
            let mut handle = None;
            for _ in 0..8 {
                match dir.open_logged("w", SyncPolicy::EverySync) {
                    Ok(db) => {
                        handle = Some(db);
                        break;
                    }
                    Err(_) => continue,
                }
            }
            let Some(mut db) = handle else {
                let _ = std::fs::remove_dir_all(&root);
                continue;
            };
            for (_, action) in actions() {
                let _ = action(&mut db);
            }
        }
        injected_total += fault.stats().total();
        if !root.exists() {
            continue;
        }
        // Power back on with a healthy device: recovery must be total.
        let clean = StoreDir::open(&root).unwrap();
        if clean.exists("w") {
            let (db, report) = clean
                .recover("w")
                .unwrap_or_else(|e| panic!("seed {seed:#x}: recovery failed: {e}"));
            assert!(
                db.is_consistent().unwrap(),
                "seed {seed:#x}: inconsistent after fault storm\n{report}"
            );
            let fsck = clean.fsck("w").unwrap();
            assert!(
                fsck.consistent,
                "seed {seed:#x}: fsck found inconsistency\n{fsck}"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    assert!(
        injected_total > 0,
        "seed {seed:#x}: twelve storm rounds injected nothing"
    );
}

/// The recovery report is surfaced end to end: through the session's
/// `doctor` and `fsck` commands after a torn-log load.
#[test]
fn doctor_and_fsck_surface_recovery_through_the_session() {
    use isis_session::{Command, Session};
    let root = tempdir("doctor");
    let dir = StoreDir::open(&root).unwrap();
    let mut db = dir.open_logged("w", SyncPolicy::EverySync).unwrap();
    for (i, (_, action)) in actions().into_iter().enumerate() {
        if i < 6 {
            action(&mut db).unwrap();
        }
    }
    drop(db);
    // Tear the log's final record.
    let wal_path = root.join("w.wal");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

    let mut session = Session::builder(isis_core::Database::new("scratch"))
        .store(dir)
        .build();
    session.apply(Command::Load("w".into())).unwrap();
    let log = session.messages().join("\n");
    assert!(log.contains("torn tail"), "load did not report: {log}");
    let report = session.last_recovery().expect("load records recovery");
    assert!(report.wal_torn_tail);
    assert!(!report.is_pristine());

    let before = session.messages().len();
    session.apply(Command::Doctor(None)).unwrap();
    let doctor = session.messages()[before..].join("\n");
    assert!(doctor.contains("torn tail"), "doctor: {doctor}");

    let before = session.messages().len();
    session.apply(Command::Fsck(Some("w".into()))).unwrap();
    let fsck = session.messages()[before..].join("\n");
    assert!(fsck.contains("consistency: ok"), "fsck: {fsck}");
    std::fs::remove_dir_all(&root).unwrap();
}
