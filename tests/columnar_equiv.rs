//! The columnar equivalence battery (ISSUE 10 satellite): the hybrid
//! column layout behind `AttrRecord::values` and the batched evaluator
//! built on it must be *invisible* — on a 100k-entity synthetic database,
//! seeded random mutation storms must leave every tracked value identical
//! to a reference shadow (and the storage invariants intact), and the
//! streaming `eval_batch` driver must return the same members, in the same
//! order, with the same errors, as the per-candidate scalar loop it
//! replaced — including candidate lists polluted with non-members.

use std::collections::HashMap;

use isis::prelude::*;
use isis_core::AttrValue;
use isis_query::{MemoTable, PredicateProgram};
use isis_sample::{synthetic_scaled, ScaledMusic, SchemaShape, SynthSpec, ValueDist};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn scaled_db() -> ScaledMusic {
    synthetic_scaled(SynthSpec {
        entities: 100_000,
        dist: ValueDist::Zipf,
        shape: SchemaShape::Wide,
        seed: 0xC0_1A,
    })
    .unwrap()
}

/// The per-candidate reference loop: exactly what every driver ran before
/// column streaming existed.
fn scalar_arm(
    prog: &PredicateProgram,
    db: &Database,
    cands: &[EntityId],
) -> Result<Vec<EntityId>, CoreError> {
    let mut memo = MemoTable::new(prog);
    let mut out = Vec::new();
    for &e in cands {
        if prog.eval_for(db, e, None, &mut memo)? {
            out.push(e);
        }
    }
    Ok(out)
}

fn batch_arm(
    prog: &PredicateProgram,
    db: &Database,
    cands: &[EntityId],
) -> Result<Vec<EntityId>, CoreError> {
    let mut memo = MemoTable::new(prog);
    prog.eval_batch(db, cands, None, &mut memo)
}

/// Both arms must agree exactly: same members in the same order on
/// success, the same first error on failure.
fn assert_arms_agree(prog: &PredicateProgram, db: &Database, cands: &[EntityId], ctx: &str) {
    let scalar = scalar_arm(prog, db, cands);
    let batch = batch_arm(prog, db, cands);
    match (&scalar, &batch) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "batch != scalar ({ctx})"),
        (Err(a), Err(b)) => assert_eq!(a, b, "batch/scalar errors differ ({ctx})"),
        _ => panic!("arms disagree ({ctx}): scalar={scalar:?} batch={batch:?}"),
    }
}

/// Seeded mutation storm against a reference shadow. Every round mixes
/// multi reassignment, single reassignment, incremental `add_value`, and
/// `unassign` (column shrink — the demotion direction) over a tracked
/// sample, then replays the whole shadow through `value_of`. The first and
/// last rounds additionally run the full consistency sweep, which walks
/// every column cell and would surface any canonical-form violation
/// (stored NULL singles, empty multis, dense/overflow double-booking).
#[test]
fn columnar_layout_matches_reference_semantics_under_mutation() {
    let mut g = scaled_db();
    let mut rng = StdRng::seed_from_u64(0xC01);
    let yes = g.s.db.boolean(true);
    let no = g.s.db.boolean(false);

    let tracked: Vec<EntityId> = (0..2_000)
        .map(|_| g.s.musician_ids[rng.gen_range(0..g.s.musician_ids.len())])
        .collect();
    let mut shadow: HashMap<(EntityId, AttrId), AttrValue> = HashMap::new();
    for &m in &tracked {
        for attr in [g.s.plays, g.s.union_attr] {
            shadow.insert((m, attr), g.s.db.attr(attr).unwrap().value_of(m));
        }
    }

    const ROUNDS: usize = 6;
    for round in 0..ROUNDS {
        for _ in 0..400 {
            let m = tracked[rng.gen_range(0..tracked.len())];
            match rng.gen_range(0..5) {
                0 => {
                    let k = rng.gen_range(1..=4);
                    let insts: OrderedSet = (0..k)
                        .map(|_| g.s.instrument_ids[rng.gen_range(0..g.s.instrument_ids.len())])
                        .collect();
                    g.s.db
                        .assign_multi(m, g.s.plays, insts.iter().collect::<Vec<_>>())
                        .unwrap();
                    shadow.insert((m, g.s.plays), AttrValue::Multi(insts));
                }
                1 => {
                    let v = if rng.gen_bool(0.5) { yes } else { no };
                    g.s.db.assign_single(m, g.s.union_attr, v).unwrap();
                    shadow.insert((m, g.s.union_attr), AttrValue::Single(v));
                }
                2 => {
                    let inst = g.s.instrument_ids[rng.gen_range(0..g.s.instrument_ids.len())];
                    g.s.db.add_value(m, g.s.plays, inst).unwrap();
                    let mut set = shadow
                        .get(&(m, g.s.plays))
                        .map(AttrValue::as_set)
                        .unwrap_or_default();
                    set.insert(inst);
                    shadow.insert((m, g.s.plays), AttrValue::Multi(set));
                }
                3 => {
                    g.s.db.unassign(m, g.s.plays).unwrap();
                    shadow.insert((m, g.s.plays), AttrValue::Multi(OrderedSet::new()));
                }
                _ => {
                    g.s.db.unassign(m, g.s.union_attr).unwrap();
                    shadow.insert((m, g.s.union_attr), AttrValue::Single(EntityId::NULL));
                }
            }
        }

        for (&(m, attr), want) in &shadow {
            let got = g.s.db.attr(attr).unwrap().value_of(m);
            assert_eq!(
                got.as_set(),
                want.as_set(),
                "round {round}: column value for entity {m:?} diverged from the shadow"
            );
        }
        if round == 0 || round + 1 == ROUNDS {
            let violations = g.s.db.check_consistency().unwrap();
            assert!(
                violations.is_empty(),
                "round {round}: consistency sweep found {violations:?}"
            );
        }
    }
}

fn random_pred(g: &ScaledMusic, booleans: ClassId, yes: EntityId, rng: &mut StdRng) -> Predicate {
    let ops = [
        CompareOp::Match,
        CompareOp::Subset,
        CompareOp::Superset,
        CompareOp::SetEq,
        CompareOp::ProperSubset,
        CompareOp::ProperSuperset,
    ];
    let clause = |rng: &mut StdRng| {
        let n = rng.gen_range(1..=2);
        Clause::new(
            (0..n)
                .map(|_| {
                    if rng.gen_bool(0.7) {
                        let k = rng.gen_range(1..=3);
                        let insts: Vec<EntityId> = (0..k)
                            .map(|_| g.s.instrument_ids[rng.gen_range(0..g.s.instrument_ids.len())])
                            .collect();
                        Atom::new(
                            Map::single(g.s.plays),
                            ops[rng.gen_range(0..ops.len())],
                            Rhs::constant(g.s.instruments, insts),
                        )
                    } else {
                        Atom::new(
                            Map::single(g.s.union_attr),
                            CompareOp::Match,
                            Rhs::constant(booleans, [yes]),
                        )
                    }
                })
                .collect(),
        )
    };
    let clauses: Vec<Clause> = (0..rng.gen_range(1..=2)).map(|_| clause(rng)).collect();
    if rng.gen_bool(0.5) {
        Predicate::dnf(clauses)
    } else {
        Predicate::cnf(clauses)
    }
}

/// Random single-step constant predicates (always batch-compatible) over
/// random candidate lists: the full extent, strided subsets, and subsets
/// with non-member entities spliced in (which must surface the scalar
/// loop's exact membership error from the same position).
#[test]
fn batch_and_scalar_agree_on_random_predicates_and_candidates() {
    let mut g = scaled_db();
    let mut rng = StdRng::seed_from_u64(0x0BA7C4);
    let yes = g.s.db.boolean(true);
    let booleans = g.s.db.predefined(BaseKind::Booleans);
    let members: Vec<EntityId> = g.s.db.members(g.s.musicians).unwrap().iter().collect();

    for trial in 0..12 {
        let pred = random_pred(&g, booleans, yes, &mut rng);
        let prog = PredicateProgram::compile(&g.s.db, g.s.musicians, &pred).unwrap();
        assert!(
            prog.batch_compatible(),
            "single-step constant atoms must stream: {pred}"
        );

        assert_arms_agree(
            &prog,
            &g.s.db,
            &members,
            &format!("trial {trial}, full extent"),
        );

        let stride = rng.gen_range(2..7);
        let subset: Vec<EntityId> = members.iter().copied().step_by(stride).collect();
        assert_arms_agree(
            &prog,
            &g.s.db,
            &subset,
            &format!("trial {trial}, stride {stride}"),
        );

        // Splice non-members (instruments and groups) into the candidate
        // list at random positions; both arms must fail identically.
        let mut rogue = subset;
        for _ in 0..3 {
            let pos = rng.gen_range(0..=rogue.len());
            let alien = if rng.gen_bool(0.5) {
                g.s.instrument_ids[rng.gen_range(0..g.s.instrument_ids.len())]
            } else {
                g.s.group_ids[rng.gen_range(0..g.s.group_ids.len())]
            };
            rogue.insert(pos, alien);
        }
        let scalar = scalar_arm(&prog, &g.s.db, &rogue);
        assert!(
            scalar.is_err(),
            "trial {trial}: rogue candidates must trip the membership check"
        );
        assert_arms_agree(&prog, &g.s.db, &rogue, &format!("trial {trial}, rogue"));
    }

    // An ordering atom over a multivalued map is not streamable: the
    // program must refuse the batch body and both arms must surface the
    // same evaluation error.
    let bad = Predicate::cnf(vec![
        Clause::new(vec![Atom::new(
            Map::single(g.s.plays),
            CompareOp::Match,
            Rhs::constant(g.s.instruments, [g.s.instrument_ids[0]]),
        )]),
        Clause::new(vec![Atom::new(
            Map::single(g.s.plays),
            CompareOp::Lt,
            Rhs::constant(g.s.instruments, [g.s.instrument_ids[0]]),
        )]),
    ]);
    let prog = PredicateProgram::compile(&g.s.db, g.s.musicians, &bad).unwrap();
    assert!(
        !prog.batch_compatible(),
        "ordering atoms must keep the program scalar"
    );
    assert_arms_agree(&prog, &g.s.db, &members, "ordering fallback");
}

/// Mutations between evaluations: reassignments that shrink and regrow
/// columns (exercising demotion and re-promotion of the dense region) must
/// never desynchronise the two arms.
#[test]
fn batch_and_scalar_agree_across_mutation_interleavings() {
    let mut g = scaled_db();
    let mut rng = StdRng::seed_from_u64(0x1_E5);
    let yes = g.s.db.boolean(true);
    let booleans = g.s.db.predefined(BaseKind::Booleans);

    for round in 0..4 {
        // Mutate a slice of the population: clear some plays sets entirely
        // (shrinking the column) and reassign others.
        for k in 0..300 {
            let m = g.s.musician_ids[(round * 977 + k * 31) % g.s.musician_ids.len()];
            if k % 3 == 0 {
                g.s.db.unassign(m, g.s.plays).unwrap();
            } else {
                let inst = g.s.instrument_ids[rng.gen_range(0..g.s.instrument_ids.len())];
                g.s.db.assign_multi(m, g.s.plays, [inst]).unwrap();
            }
        }
        let pred = random_pred(&g, booleans, yes, &mut rng);
        let prog = PredicateProgram::compile(&g.s.db, g.s.musicians, &pred).unwrap();
        let members: Vec<EntityId> = g.s.db.members(g.s.musicians).unwrap().iter().collect();
        assert_arms_agree(&prog, &g.s.db, &members, &format!("round {round}"));
    }
}
