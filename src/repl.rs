//! A line-oriented front end for the ISIS interface.
//!
//! The original system was driven by a one-button mouse and function keys;
//! this module maps a small text command language onto the same
//! [`Command`] stream, resolving names to ids
//! against the live database, so a session can be driven from a terminal
//! (see the `isis-repl` binary) or from test scripts.
//!
//! Type `help` at the prompt for the command list.

use isis_core::{CompareOp, ConstraintKind, EntityId, Literal, Multiplicity, Operator, SchemaNode};
use isis_session::{Command, Mode, RefreshPolicy, Session, SessionError};
use isis_views::render::ascii;

/// Errors raised by the REPL layer (on top of session errors).
#[derive(Debug)]
pub enum ReplError {
    /// The line could not be parsed.
    Parse(String),
    /// A name did not resolve.
    Unknown(String),
    /// The session rejected the command.
    Session(SessionError),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::Parse(m) => write!(f, "parse error: {m}"),
            ReplError::Unknown(m) => write!(f, "unknown name: {m}"),
            ReplError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<SessionError> for ReplError {
    fn from(e: SessionError) -> Self {
        ReplError::Session(e)
    }
}

impl From<isis_core::CoreError> for ReplError {
    fn from(e: isis_core::CoreError) -> Self {
        ReplError::Session(SessionError::Core(e))
    }
}

/// The REPL help text.
pub const HELP: &str = "\
navigation:   pick NAME | pickattr CLASS.ATTR | associations | contents | pop | show
schema:       rename NAME | subclass NAME | attribute NAME single|multi
              valueclass NAME | grouping NAME ATTR | delete | predicate
data level:   select NAME|LITERAL | follow ATTR | followg | move DX DY | pan DX DY
              assign ATTR VALUE | newentity NAME | makesub NAME | scroll N
worksheet:    define | derive | constraint NAME forall|forbidden
              atom | edit TAG | push ATTR | poplhs | op OPERATOR (prefix ! negates)
              rhsmap ATTR... | rhssrc ATTR... | const [CLASS] | toggle NAME|LITERAL
              done | clause N | switch | hand ATTR... | commit
session:      load NAME | save NAME | checks | undo | redo | stop | help
              publish — commit this session's buffered changes to the
              shared database head (first committer wins; non-conflicting
              concurrent commits are rebased underneath)
              pull — fast-forward a clean session to the shared head
              refresh [manual|oncommit|immediate] — re-evaluate derived state
              (no argument) or set when it happens automatically
              stats — planner and index-maintenance counters of the shared
              index service (built by the first refresh)
              metrics [json|reset|on|off] — the process-wide observability
              registry (counters and latency histograms; ISIS_OBS=1 to
              enable at startup)
              trace on|off|dump|json|clear — span recording across the
              query/refresh/storage pipeline (bounded ring buffer)
              explain NAME [json] — run a derived class's predicate and
              show the full plan record: access path per atom and why,
              program-cache outcome, chunking decision, phase timings
              slowlog [json|clear|threshold MILLIS] — evaluations that
              crossed the slow-query threshold, each with its full plan
              health [json] — one-screen triage: cache hit rates, commit
              conflict rates, replica lag, slow-query highlights
              flight dump|json|clear|export [PATH] — the flight recorder's
              structured event journal (export writes JSONL)
              doctor [NAME] — print the recovery report (last load, or a
              dry-run recovery of a stored database)
              fsck [NAME] — verify a stored database: recovery dry run plus
              consistency check (defaults to the current database's name)
operators:    = ~ <=s >=s <s >s < <= > >=       literals: 42, 2.5, yes, no, \"text\"";

/// A text-driven ISIS session.
#[derive(Debug)]
pub struct Repl {
    /// The underlying session.
    pub session: Session,
}

impl Repl {
    /// Wraps a session.
    pub fn new(session: Session) -> Repl {
        Repl { session }
    }

    /// Executes one line, returning the text to show the user.
    pub fn exec(&mut self, line: &str) -> Result<String, ReplError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let mut parts = tokenize(line);
        if parts.is_empty() {
            // e.g. a line of quotes or stray whitespace inside quotes.
            return Ok(String::new());
        }
        let verb = parts.remove(0);
        let before = self.session.messages().len();
        match verb.as_str() {
            "help" => return Ok(HELP.to_string()),
            "show" => return Ok(ascii::render(&self.session.scene()?)),
            "pick" => {
                let name = one(&parts, "pick NAME")?;
                self.session.apply(Command::PickByName(name))?;
            }
            "pickattr" => {
                let spec = one(&parts, "pickattr CLASS.ATTR")?;
                let (class, attr) = spec
                    .split_once('.')
                    .ok_or_else(|| ReplError::Parse("expected CLASS.ATTR".into()))?;
                let c = self.session.database().class_by_name(class)?;
                let a = self.session.database().attr_by_name(c, attr)?;
                self.session.apply(Command::PickAttr(a))?;
            }
            "associations" => self.session.apply(Command::ViewAssociations)?,
            "contents" => self.session.apply(Command::ViewContents)?,
            "pop" => self.session.apply(Command::Pop)?,
            "rename" => {
                self.session
                    .apply(Command::Rename(one(&parts, "rename NAME")?))?;
            }
            "subclass" => {
                self.session
                    .apply(Command::CreateSubclass(one(&parts, "subclass NAME")?))?;
            }
            "attribute" => {
                let (name, multi) = two(&parts, "attribute NAME single|multi")?;
                let multiplicity = match multi.as_str() {
                    "single" => Multiplicity::Single,
                    "multi" => Multiplicity::Multi,
                    other => return Err(ReplError::Parse(format!("'{other}'? single or multi"))),
                };
                self.session
                    .apply(Command::CreateAttribute { name, multiplicity })?;
            }
            "valueclass" => {
                let name = one(&parts, "valueclass NAME")?;
                let node = self.session.database().node_by_name(&name)?;
                self.session.apply(Command::SpecifyValueClass(node))?;
            }
            "grouping" => {
                let (name, attr_name) = two(&parts, "grouping NAME ATTR")?;
                let class = match self.session.selection() {
                    Some(isis_session::Selection::Class(c)) => c,
                    _ => return Err(ReplError::Parse("pick a class first".into())),
                };
                let attr = self.session.database().attr_by_name(class, &attr_name)?;
                self.session.apply(Command::CreateGrouping { name, attr })?;
            }
            "delete" => self.session.apply(Command::Delete)?,
            "predicate" => self.session.apply(Command::DisplayPredicate)?,
            "select" | "toggle" => {
                let name = one(&parts, "select NAME")?;
                let e = self.resolve_entity(&name)?;
                self.session.apply(Command::SelectEntity(e))?;
            }
            "follow" => {
                let attr_name = one(&parts, "follow ATTR")?;
                let class = self.page_class()?;
                let attr = self.session.database().attr_by_name(class, &attr_name)?;
                self.session.apply(Command::Follow(attr))?;
            }
            "followg" => self.session.apply(Command::FollowGrouping)?,
            "assign" => {
                let (attr_name, value) = two(&parts, "assign ATTR VALUE")?;
                let class = self.page_class()?;
                let attr = self.session.database().attr_by_name(class, &attr_name)?;
                let vc = self.session.database().attr(attr)?.value_class;
                let value = self.resolve_value(vc, &value)?;
                self.session
                    .apply(Command::ReassignAttrValue { attr, value })?;
            }
            "newentity" => {
                self.session
                    .apply(Command::CreateEntity(one(&parts, "newentity NAME")?))?;
            }
            "makesub" => {
                self.session
                    .apply(Command::MakeSubclass(one(&parts, "makesub NAME")?))?;
            }
            "move" => {
                let (dx, dy) = two(&parts, "move DX DY")?;
                let (dx, dy): (i32, i32) = (
                    dx.parse()
                        .map_err(|_| ReplError::Parse("move takes integers".into()))?,
                    dy.parse()
                        .map_err(|_| ReplError::Parse("move takes integers".into()))?,
                );
                self.session.apply(Command::Move(dx, dy))?;
            }
            "pan" => {
                let (dx, dy) = two(&parts, "pan DX DY")?;
                let (dx, dy): (i32, i32) = (
                    dx.parse()
                        .map_err(|_| ReplError::Parse("pan takes integers".into()))?,
                    dy.parse()
                        .map_err(|_| ReplError::Parse("pan takes integers".into()))?,
                );
                self.session.apply(Command::Pan(dx, dy))?;
            }
            "scroll" => {
                let n: i32 = one(&parts, "scroll N")?
                    .parse()
                    .map_err(|_| ReplError::Parse("scroll takes an integer".into()))?;
                self.session.apply(Command::Scroll(n))?;
            }
            "define" => self.session.apply(Command::DefineMembership)?,
            "derive" => self.session.apply(Command::DefineDerivation)?,
            "constraint" => {
                let (name, kind) = two(&parts, "constraint NAME forall|forbidden")?;
                let kind = match kind.as_str() {
                    "forall" => ConstraintKind::ForAll,
                    "forbidden" => ConstraintKind::Forbidden,
                    other => {
                        return Err(ReplError::Parse(format!("'{other}'? forall or forbidden")))
                    }
                };
                self.session
                    .apply(Command::DefineConstraint { name, kind })?;
            }
            "atom" => self.session.apply(Command::WsNewAtom)?,
            "edit" => {
                let tag = one(&parts, "edit TAG")?;
                let c = tag
                    .chars()
                    .next()
                    .filter(|c| c.is_ascii_uppercase())
                    .ok_or_else(|| ReplError::Parse("tags are A, B, C, …".into()))?;
                self.session.apply(Command::WsEdit(c))?;
            }
            "push" => {
                let attr_name = one(&parts, "push ATTR")?;
                let attr = self.resolve_lhs_attr(&attr_name)?;
                self.session.apply(Command::WsLhsPush(attr))?;
            }
            "poplhs" => self.session.apply(Command::WsLhsPop)?,
            "op" => {
                let sym = one(&parts, "op OPERATOR")?;
                self.session
                    .apply(Command::WsOperator(parse_operator(&sym)?))?;
            }
            "rhsmap" | "rhssrc" | "hand" => {
                let start = match verb.as_str() {
                    "rhssrc" | "hand" => self.ws_source_class()?,
                    _ => self.ws_candidate_class()?,
                };
                let mut attrs = Vec::new();
                let mut cur = start;
                for name in &parts {
                    let a = self.session.database().attr_by_name(cur, name)?;
                    cur = match self.session.database().attr(a)?.value_class {
                        isis_core::ValueClass::Class(c) => c,
                        isis_core::ValueClass::Grouping(g) => {
                            self.session.database().grouping(g)?.parent
                        }
                    };
                    attrs.push(a);
                }
                self.session.apply(match verb.as_str() {
                    "rhsmap" => Command::WsRhsSelfMap(attrs),
                    "rhssrc" => Command::WsRhsSourceMap(attrs),
                    _ => Command::WsHandAssign(attrs),
                })?;
            }
            "const" => {
                let class = match parts.first() {
                    Some(name) => Some(self.session.database().class_by_name(name)?),
                    None => None,
                };
                self.session.apply(Command::WsRhsConstant(class))?;
            }
            "done" => self.session.apply(Command::ConstantDone)?,
            "clause" => {
                let n: usize = one(&parts, "clause N")?
                    .parse()
                    .map_err(|_| ReplError::Parse("clause takes a number (1-based)".into()))?;
                if n == 0 {
                    return Err(ReplError::Parse("clauses are numbered from 1".into()));
                }
                self.session.apply(Command::WsPlaceInClause(n - 1))?;
            }
            "switch" => self.session.apply(Command::WsSwitchAndOr)?,
            "commit" => self.session.apply(Command::WsCommit)?,
            "checks" => self.session.apply(Command::CheckConstraints)?,
            "stats" => {
                return Ok(match self.session.index_service() {
                    Some(svc) => {
                        let q = svc.query_stats();
                        let i = svc.index_stats();
                        let attrs: Vec<String> = svc
                            .indexed_attrs()
                            .filter_map(|a| {
                                self.session.database().attr(a).ok().map(|r| r.name.clone())
                            })
                            .collect();
                        let mut out = format!(
                            "indexed attrs:  {}\n\
                             queries:        {} ({} index probes, {} grouping scans, \
                             {} seq scans, {} misses)\n\
                             maintenance:    {} posting patches, {} rebuilds",
                            if attrs.is_empty() {
                                "(none)".to_string()
                            } else {
                                attrs.join(", ")
                            },
                            q.queries,
                            q.index_probes,
                            q.grouping_scans,
                            q.seq_scans,
                            q.index_misses,
                            i.incremental_updates,
                            i.rebuilds,
                        );
                        // With observability live, extend the per-service
                        // shim with the process-wide latency histogram.
                        let obs = isis_obs::global();
                        if obs.enabled() {
                            let snap = obs.registry().snapshot();
                            if let Some(isis_obs::MetricValue::Histogram(h)) = snap
                                .entries
                                .iter()
                                .find(|(n, _)| n == "query.service.evaluate")
                                .map(|(_, v)| v.clone())
                            {
                                out.push_str(&format!(
                                    "\nevaluate:       p50<={}ns p95<={}ns p99<={}ns \
                                     over {} queries (process-wide; see 'metrics')",
                                    h.p50, h.p95, h.p99, h.count
                                ));
                            }
                        }
                        out
                    }
                    None => "no index service yet — run 'refresh' to build it".to_string(),
                });
            }
            "metrics" => {
                let obs = isis_obs::global();
                return Ok(match parts.first().map(String::as_str) {
                    None => {
                        if obs.enabled() {
                            obs.registry().snapshot().to_text()
                        } else {
                            "observability is off — 'metrics on' (or ISIS_OBS=1) enables it"
                                .to_string()
                        }
                    }
                    Some("json") => obs.run_report().pretty(),
                    Some("reset") => {
                        obs.registry().reset();
                        obs.recorder().clear();
                        "metrics and trace ring reset".to_string()
                    }
                    Some("on") => {
                        obs.set_enabled(true);
                        "metrics collection on".to_string()
                    }
                    Some("off") => {
                        obs.set_tracing(false);
                        obs.set_enabled(false);
                        "metrics collection off".to_string()
                    }
                    Some(other) => {
                        return Err(ReplError::Parse(format!(
                            "'{other}'? metrics [json|reset|on|off]"
                        )))
                    }
                });
            }
            "trace" => {
                let obs = isis_obs::global();
                return Ok(match parts.first().map(String::as_str) {
                    Some("on") => {
                        obs.set_tracing(true);
                        "tracing on (metrics collection too)".to_string()
                    }
                    Some("off") => {
                        obs.set_tracing(false);
                        "tracing off".to_string()
                    }
                    Some("dump") => obs.recorder().snapshot().to_text(),
                    Some("json") => obs.recorder().snapshot().to_json().pretty(),
                    Some("clear") => {
                        obs.recorder().clear();
                        "trace ring cleared".to_string()
                    }
                    _ => {
                        return Err(ReplError::Parse(
                            "usage: trace on|off|dump|json|clear".into(),
                        ))
                    }
                });
            }
            "explain" => {
                let usage = "usage: explain NAME [json]";
                let name = parts
                    .first()
                    .cloned()
                    .ok_or_else(|| ReplError::Parse(usage.into()))?;
                let as_json = match parts.get(1).map(String::as_str) {
                    None => false,
                    Some("json") if parts.len() == 2 => true,
                    _ => return Err(ReplError::Parse(usage.into())),
                };
                let (parent, pred) = {
                    let db = self.session.database();
                    let class = db.class_by_name(&name)?;
                    let rec = db.class(class)?;
                    let parent = rec
                        .parent
                        .ok_or_else(|| ReplError::Parse(format!("'{name}' has no parent class")))?;
                    let pred = rec
                        .kind
                        .predicate()
                        .ok_or_else(|| {
                            ReplError::Parse(format!(
                                "'{name}' has no membership predicate — explain takes a \
                                 derived subclass"
                            ))
                        })?
                        .clone();
                    (parent, pred)
                };
                let (out, record) = self.session.explain(parent, &pred)?;
                return Ok(if as_json {
                    record.to_json().pretty()
                } else {
                    format!("{}\n{} members", record.to_text(), out.len())
                });
            }
            "slowlog" => {
                let svc = match self.session.index_service() {
                    Some(svc) => svc,
                    None => {
                        return Ok("no index service yet — run 'refresh' to build it".to_string())
                    }
                };
                return Ok(match parts.first().map(String::as_str) {
                    None => {
                        let entries = svc.slow_queries();
                        let threshold_ms = svc.slow_threshold_ns() as f64 / 1e6;
                        if entries.is_empty() {
                            format!("slow-query log empty (threshold {threshold_ms}ms)")
                        } else {
                            let mut out = format!(
                                "{} slow queries (threshold {threshold_ms}ms, {} evicted):\n",
                                entries.len(),
                                svc.slowlog_dropped(),
                            );
                            for sq in &entries {
                                out.push_str(&format!(
                                    "#{} {:.2}ms  {} where {}  (cache {}, {} scanned, \
                                     {} returned)\n",
                                    sq.seq,
                                    sq.total_ns as f64 / 1e6,
                                    sq.record.parent,
                                    sq.record.predicate,
                                    sq.record.cache,
                                    sq.record.scanned,
                                    sq.record.returned,
                                ));
                            }
                            out.pop();
                            out
                        }
                    }
                    Some("json") => isis_obs::Json::Arr(
                        svc.slow_queries().iter().map(|sq| sq.to_json()).collect(),
                    )
                    .pretty(),
                    Some("clear") => {
                        svc.clear_slowlog();
                        "slow-query log cleared".to_string()
                    }
                    Some("threshold") => {
                        let ms: u64 =
                            parts.get(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
                                ReplError::Parse("usage: slowlog threshold MILLIS".into())
                            })?;
                        svc.set_slow_threshold_ns(ms.saturating_mul(1_000_000));
                        if ms == 0 {
                            "slow-query capture off".to_string()
                        } else {
                            format!("slow-query threshold set to {ms}ms")
                        }
                    }
                    Some(other) => {
                        return Err(ReplError::Parse(format!(
                            "'{other}'? slowlog [json|clear|threshold MILLIS]"
                        )))
                    }
                });
            }
            "health" => {
                let as_json = match parts.first().map(String::as_str) {
                    None => false,
                    Some("json") if parts.len() == 1 => true,
                    _ => return Err(ReplError::Parse("usage: health [json]".into())),
                };
                return Ok(self.health_report(as_json));
            }
            "flight" => {
                let obs = isis_obs::global();
                return Ok(match parts.first().map(String::as_str) {
                    Some("dump") => obs.flight().snapshot().to_text(),
                    Some("json") => obs.flight().snapshot().to_json().pretty(),
                    Some("clear") => {
                        obs.flight().clear();
                        "flight recorder cleared".to_string()
                    }
                    Some("export") => {
                        let path = parts
                            .get(1)
                            .map(String::as_str)
                            .unwrap_or("out/obs/flight.jsonl");
                        let snap = obs.flight().snapshot();
                        if let Some(dir) = std::path::Path::new(path).parent() {
                            std::fs::create_dir_all(dir).map_err(|e| {
                                ReplError::Parse(format!("cannot create {}: {e}", dir.display()))
                            })?;
                        }
                        std::fs::write(path, snap.to_jsonl())
                            .map_err(|e| ReplError::Parse(format!("cannot write {path}: {e}")))?;
                        format!(
                            "{} events written to {path} ({} dropped by the ring)",
                            snap.events.len(),
                            snap.dropped
                        )
                    }
                    _ => {
                        return Err(ReplError::Parse(
                            "usage: flight dump|json|clear|export [PATH]".into(),
                        ))
                    }
                });
            }
            "refresh" => match parts.first().map(String::as_str) {
                None => self.session.apply(Command::Refresh)?,
                Some("manual") => self
                    .session
                    .apply(Command::SetRefreshPolicy(RefreshPolicy::Manual))?,
                Some("oncommit") => self
                    .session
                    .apply(Command::SetRefreshPolicy(RefreshPolicy::OnCommit))?,
                Some("immediate") => self
                    .session
                    .apply(Command::SetRefreshPolicy(RefreshPolicy::Immediate))?,
                Some(other) => {
                    return Err(ReplError::Parse(format!(
                        "'{other}'? manual, oncommit, or immediate"
                    )))
                }
            },
            "load" => self
                .session
                .apply(Command::Load(one(&parts, "load NAME")?))?,
            "save" => self
                .session
                .apply(Command::Save(one(&parts, "save NAME")?))?,
            "doctor" => self
                .session
                .apply(Command::Doctor(parts.first().cloned()))?,
            "fsck" => self.session.apply(Command::Fsck(parts.first().cloned()))?,
            "publish" => self.session.apply(Command::Commit)?,
            "pull" => self.session.apply(Command::Pull)?,
            "undo" => self.session.apply(Command::Undo)?,
            "redo" => self.session.apply(Command::Redo)?,
            "stop" | "quit" | "exit" => self.session.apply(Command::Stop)?,
            other => {
                return Err(ReplError::Parse(format!(
                    "unknown command '{other}' (try help)"
                )))
            }
        }
        // Report whatever the command logged.
        Ok(self.session.messages()[before..].join("\n"))
    }

    /// One-screen triage summary: program-cache hit rate, query access-path
    /// mix, MVCC commit/conflict rates, replica lag, slow-query highlights,
    /// and the flight-recorder fill. Service-level counters work even with
    /// observability off; the process-wide rates need `ISIS_OBS=1` or
    /// `metrics on`.
    fn health_report(&self, as_json: bool) -> String {
        let obs = isis_obs::global();
        let snap = obs.registry().snapshot();
        let counter = |name: &str| -> u64 {
            snap.entries
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| match v {
                    isis_obs::MetricValue::Counter(c) => Some(*c),
                    _ => None,
                })
                .unwrap_or(0)
        };
        let gauge = |name: &str| -> Option<i64> {
            snap.entries
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| match v {
                    isis_obs::MetricValue::Gauge(g) => Some(*g),
                    _ => None,
                })
        };
        let pct = |part: u64, whole: u64| -> f64 {
            if whole == 0 {
                0.0
            } else {
                part as f64 * 100.0 / whole as f64
            }
        };

        let svc = self.session.index_service();
        let cache = svc.map(|s| s.program_cache().stats());
        let queries = svc.map(|s| s.query_stats());
        let slow = svc.map(|s| s.slow_queries()).unwrap_or_default();
        let worst = slow.iter().max_by_key(|sq| sq.total_ns);
        let commits = counter("core.mvcc.commits");
        let conflicts = counter("core.mvcc.conflicts");
        let lag = gauge("store.replication.lag");
        let flight = obs.flight().snapshot();

        if as_json {
            return isis_obs::Json::obj([
                ("schema", isis_obs::Json::from("isis-repl/health/1")),
                ("obs_enabled", isis_obs::Json::from(obs.enabled())),
                (
                    "program_cache",
                    match &cache {
                        Some(c) => isis_obs::Json::obj([
                            ("hits", isis_obs::Json::from(c.hits)),
                            ("misses", isis_obs::Json::from(c.misses)),
                            ("invalidations", isis_obs::Json::from(c.invalidations)),
                            ("evictions", isis_obs::Json::from(c.evictions)),
                        ]),
                        None => isis_obs::Json::Null,
                    },
                ),
                (
                    "queries",
                    match &queries {
                        Some(q) => isis_obs::Json::obj([
                            ("total", isis_obs::Json::from(q.queries)),
                            ("index_probes", isis_obs::Json::from(q.index_probes)),
                            ("grouping_scans", isis_obs::Json::from(q.grouping_scans)),
                            ("seq_scans", isis_obs::Json::from(q.seq_scans)),
                            (
                                "unassisted",
                                isis_obs::Json::from(counter("session.query.unassisted")),
                            ),
                        ]),
                        None => isis_obs::Json::Null,
                    },
                ),
                (
                    "commits",
                    isis_obs::Json::obj([
                        ("total", isis_obs::Json::from(commits)),
                        (
                            "fast",
                            isis_obs::Json::from(counter("core.mvcc.fast_commits")),
                        ),
                        (
                            "rebased",
                            isis_obs::Json::from(counter("core.mvcc.rebased_commits")),
                        ),
                        ("conflicts", isis_obs::Json::from(conflicts)),
                        (
                            "retries",
                            isis_obs::Json::from(counter("core.mvcc.retries")),
                        ),
                    ]),
                ),
                (
                    "replication",
                    match lag {
                        Some(l) => isis_obs::Json::obj([
                            ("lag", isis_obs::Json::from(l)),
                            (
                                "applied_epoch",
                                gauge("store.replication.applied_epoch")
                                    .map_or(isis_obs::Json::Null, isis_obs::Json::from),
                            ),
                        ]),
                        None => isis_obs::Json::Null,
                    },
                ),
                (
                    "slowlog",
                    isis_obs::Json::obj([
                        ("captured", isis_obs::Json::from(slow.len())),
                        (
                            "worst_ns",
                            worst.map_or(isis_obs::Json::Null, |sq| {
                                isis_obs::Json::from(sq.total_ns)
                            }),
                        ),
                    ]),
                ),
                (
                    "flight",
                    isis_obs::Json::obj([
                        ("events", isis_obs::Json::from(flight.events.len())),
                        ("dropped", isis_obs::Json::from(flight.dropped)),
                        ("capacity", isis_obs::Json::from(flight.capacity)),
                    ]),
                ),
            ])
            .pretty();
        }

        let mut out = format!(
            "health — observability {}\n",
            if obs.enabled() { "on" } else { "off" }
        );
        match &cache {
            Some(c) => {
                let lookups = c.hits + c.misses + c.invalidations;
                out.push_str(&format!(
                    "program cache:  {:.1}% hit ({} hits, {} misses, {} invalidations, \
                     {} evictions)\n",
                    pct(c.hits, lookups),
                    c.hits,
                    c.misses,
                    c.invalidations,
                    c.evictions
                ));
            }
            None => out.push_str("program cache:  no index service yet (run 'refresh')\n"),
        }
        if let Some(q) = &queries {
            out.push_str(&format!(
                "queries:        {} ({:.0}% index probes, {:.0}% grouping scans, \
                 {:.0}% seq scans, {} unassisted)\n",
                q.queries,
                pct(q.index_probes, q.queries),
                pct(q.grouping_scans, q.queries),
                pct(q.seq_scans, q.queries),
                counter("session.query.unassisted"),
            ));
        }
        out.push_str(&format!(
            "commits:        {} ({} fast, {} rebased), {} conflicts ({:.1}%), {} retries\n",
            commits,
            counter("core.mvcc.fast_commits"),
            counter("core.mvcc.rebased_commits"),
            conflicts,
            pct(conflicts, commits + conflicts),
            counter("core.mvcc.retries"),
        ));
        match lag {
            Some(l) => out.push_str(&format!(
                "replication:    lag {l}{}\n",
                gauge("store.replication.applied_epoch")
                    .map(|e| format!(" (applied epoch {e})"))
                    .unwrap_or_default()
            )),
            None => out.push_str("replication:    no replica synced in this process\n"),
        }
        match worst {
            Some(sq) => out.push_str(&format!(
                "slow queries:   {} captured, worst {:.2}ms: {} where {}\n",
                slow.len(),
                sq.total_ns as f64 / 1e6,
                sq.record.parent,
                sq.record.predicate
            )),
            None => out.push_str("slow queries:   none captured\n"),
        }
        out.push_str(&format!(
            "flight:         {} events buffered, {} dropped (capacity {})",
            flight.events.len(),
            flight.dropped,
            flight.capacity
        ));
        out
    }

    /// The class behind the current page (data level or constant pick).
    fn page_class(&self) -> Result<isis_core::ClassId, ReplError> {
        let node = match self.session.mode() {
            Mode::ConstantPick { page, .. } => page.node,
            _ => {
                self.session
                    .pages()
                    .last()
                    .ok_or_else(|| ReplError::Parse("not at the data level".into()))?
                    .node
            }
        };
        match node {
            SchemaNode::Class(c) => Ok(c),
            SchemaNode::Grouping(g) => Ok(self.session.database().grouping_index_class(g)?),
        }
    }

    fn ws_candidate_class(&self) -> Result<isis_core::ClassId, ReplError> {
        self.session
            .worksheet()
            .map(|w| w.candidate_class)
            .ok_or_else(|| ReplError::Parse("no worksheet open".into()))
    }

    fn ws_source_class(&self) -> Result<isis_core::ClassId, ReplError> {
        match self.session.worksheet() {
            Some(w) => match w.source_class {
                Some(c) => Ok(c),
                // The hand/source commands on a membership/constraint
                // worksheet fall back to the candidate class.
                None => Ok(w.candidate_class),
            },
            None => Err(ReplError::Parse("no worksheet open".into())),
        }
    }

    /// The class the worksheet's editing atom's lhs currently terminates in
    /// (for `push`), or the page class outside the worksheet.
    fn resolve_lhs_attr(&self, name: &str) -> Result<isis_core::AttrId, ReplError> {
        let db = self.session.database();
        let ws = self
            .session
            .worksheet()
            .ok_or_else(|| ReplError::Parse("no worksheet open".into()))?;
        let lhs = ws
            .editing
            .and_then(|i| ws.atoms.get(i))
            .map(|a| a.lhs.clone())
            .unwrap_or_default();
        let terminal = db.trace_map(ws.candidate_class, &lhs)?.terminal();
        Ok(db.attr_by_name(terminal, name)?)
    }

    /// Resolves an entity for select/toggle: a literal, or a member name of
    /// the current page's class.
    fn resolve_entity(&mut self, token: &str) -> Result<EntityId, ReplError> {
        if let Some(lit) = parse_literal(token) {
            if let Some(id) = self.session.database().find_literal(lit.clone()) {
                return Ok(id);
            }
            return Ok(self.session.transact(|db| db.intern(lit))?);
        }
        let class = self.page_class()?;
        let db = self.session.database();
        let base = db.class(class)?.base;
        db.entity_by_name(base, token)
            .map_err(|_| ReplError::Unknown(token.into()))
    }

    /// Resolves a value token against an attribute's value class.
    fn resolve_value(
        &mut self,
        vc: isis_core::ValueClass,
        token: &str,
    ) -> Result<EntityId, ReplError> {
        if let Some(lit) = parse_literal(token) {
            if let Some(id) = self.session.database().find_literal(lit.clone()) {
                return Ok(id);
            }
            return Ok(self.session.transact(|db| db.intern(lit))?);
        }
        let db = self.session.database();
        let class = match vc {
            isis_core::ValueClass::Class(c) => c,
            isis_core::ValueClass::Grouping(g) => db.grouping_index_class(g)?,
        };
        let base = db.class(class)?.base;
        db.entity_by_name(base, token)
            .map_err(|_| ReplError::Unknown(token.into()))
    }
}

/// Splits a line into tokens, honouring double quotes.
fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn one(parts: &[String], usage: &str) -> Result<String, ReplError> {
    match parts {
        [a] => Ok(a.clone()),
        _ => Err(ReplError::Parse(format!("usage: {usage}"))),
    }
}

fn two(parts: &[String], usage: &str) -> Result<(String, String), ReplError> {
    match parts {
        [a, b] => Ok((a.clone(), b.clone())),
        _ => Err(ReplError::Parse(format!("usage: {usage}"))),
    }
}

/// Parses `42`, `2.5`, `yes`, `no`; quoted strings were already unquoted by
/// the tokenizer, so bare non-numeric tokens are *not* literals (they are
/// names) — use quotes to force a string literal.
fn parse_literal(token: &str) -> Option<Literal> {
    match token {
        "yes" | "YES" => return Some(Literal::Bool(true)),
        "no" | "NO" => return Some(Literal::Bool(false)),
        _ => {}
    }
    if let Ok(i) = token.parse::<i64>() {
        return Some(Literal::Int(i));
    }
    if token.contains('.') {
        if let Ok(r) = token.parse::<f64>() {
            return Some(Literal::Real(r));
        }
    }
    None
}

/// Parses an operator symbol, with a `!` prefix for negation.
pub fn parse_operator(sym: &str) -> Result<Operator, ReplError> {
    let (negated, body) = match sym.strip_prefix('!') {
        Some(rest) => (true, rest),
        None => (false, sym),
    };
    let op = match body {
        "=" => CompareOp::SetEq,
        "~" => CompareOp::Match,
        "<=s" | "⊆" => CompareOp::Subset,
        ">=s" | "⊇" => CompareOp::Superset,
        "<s" | "⊂" => CompareOp::ProperSubset,
        ">s" | "⊃" => CompareOp::ProperSuperset,
        "<" => CompareOp::Lt,
        "<=" | "≤" => CompareOp::Le,
        ">" => CompareOp::Gt,
        ">=" | "≥" => CompareOp::Ge,
        other => return Err(ReplError::Parse(format!("unknown operator '{other}'"))),
    };
    Ok(Operator { op, negated })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repl() -> Repl {
        let im = isis_sample::instrumental_music().unwrap();
        Repl::new(Session::builder(im.db).build())
    }

    #[test]
    fn publish_and_pull_share_one_database() {
        let im = isis_sample::instrumental_music().unwrap();
        let shared = isis_session::SharedDatabase::new(im.db);
        let mut writer = Repl::new(Session::open(&shared).build());
        let mut reader = Repl::new(Session::open(&shared).build());

        for line in ["pick musicians", "contents", "newentity Zoe"] {
            writer.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let out = writer.exec("publish").unwrap();
        assert!(out.contains("committed"), "{out}");

        // The reader's pinned snapshot is stable until it pulls.
        let musicians = reader
            .session
            .database()
            .class_by_name("musicians")
            .unwrap();
        assert!(reader
            .session
            .database()
            .entity_by_name(musicians, "Zoe")
            .is_err());
        let out = reader.exec("pull").unwrap();
        assert!(out.contains("pulled shared head"), "{out}");
        assert!(reader
            .session
            .database()
            .entity_by_name(musicians, "Zoe")
            .is_ok());
        assert!(reader
            .exec("pull")
            .unwrap()
            .contains("already at the shared head"));
        assert!(writer
            .exec("publish")
            .unwrap()
            .contains("nothing to commit"));
    }

    #[test]
    fn tokenizer_handles_quotes() {
        assert_eq!(tokenize("a b c"), vec!["a", "b", "c"]);
        assert_eq!(
            tokenize("select \"Edith Smith\""),
            vec!["select", "Edith Smith"]
        );
        assert_eq!(tokenize("  "), Vec::<String>::new());
    }

    #[test]
    fn literals() {
        assert_eq!(parse_literal("42"), Some(Literal::Int(42)));
        assert_eq!(parse_literal("-3"), Some(Literal::Int(-3)));
        assert_eq!(parse_literal("2.5"), Some(Literal::Real(2.5)));
        assert_eq!(parse_literal("yes"), Some(Literal::Bool(true)));
        assert_eq!(parse_literal("no"), Some(Literal::Bool(false)));
        assert_eq!(parse_literal("Edith"), None);
    }

    #[test]
    fn operators() {
        assert_eq!(parse_operator("=").unwrap().op, CompareOp::SetEq);
        assert_eq!(parse_operator(">=s").unwrap().op, CompareOp::Superset);
        assert!(parse_operator("!~").unwrap().negated);
        assert!(parse_operator("??").is_err());
    }

    #[test]
    fn browse_via_text() {
        let mut r = repl();
        assert!(r.exec("pick musicians").unwrap().contains("musicians"));
        r.exec("contents").unwrap();
        r.exec("select Edith").unwrap();
        r.exec("follow plays").unwrap();
        let shown = r.exec("show").unwrap();
        assert!(shown.contains("*viola*"));
        assert!(shown.contains("*violin*"));
        r.exec("pop").unwrap();
        r.exec("pop").unwrap();
        assert_eq!(*r.session.mode(), Mode::Forest);
    }

    #[test]
    fn the_whole_quartets_query_via_text() {
        let mut r = repl();
        for line in [
            "pick music_groups",
            "subclass quartets",
            "define",
            "atom",
            "clause 2",
            "push size",
            "op =",
            "const",
            "toggle 4",
            "done",
            "atom",
            "clause 1",
            "push members",
            "push plays",
            "op >=s",
            "const",
            "toggle piano",
            "done",
            "switch",
        ] {
            r.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let out = r.exec("commit").unwrap();
        assert!(out.contains("quartets committed: 1 members"), "{out}");
        let db = r.session.database();
        let q = db.class_by_name("quartets").unwrap();
        assert_eq!(db.members(q).unwrap().len(), 1);
    }

    #[test]
    fn stats_reports_the_shared_index_service() {
        let mut r = repl();
        assert!(r.exec("stats").unwrap().contains("no index service"));
        for line in [
            "pick music_groups",
            "subclass quartets",
            "define",
            "atom",
            "clause 1",
            "push size",
            "op =",
            "const",
            "toggle 4",
            "done",
            "commit",
            "refresh",
        ] {
            r.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let out = r.exec("stats").unwrap();
        assert!(out.contains("indexed attrs"), "{out}");
        assert!(out.contains("size"), "{out}");
        // A query routed through the session bumps the planner counters.
        let db = r.session.database();
        let groups = db.class_by_name("music_groups").unwrap();
        let quartets = db.class_by_name("quartets").unwrap();
        let pred = db
            .class(quartets)
            .unwrap()
            .kind
            .predicate()
            .unwrap()
            .clone();
        r.session.query(groups, &pred).unwrap();
        let out = r.exec("stats").unwrap();
        assert!(out.contains("1 index probes"), "{out}");
    }

    #[test]
    fn schema_building_and_errors_via_text() {
        let mut r = repl();
        r.exec("pick musicians").unwrap();
        r.exec("subclass stars").unwrap();
        r.exec("pick stars").unwrap();
        r.exec("attribute fee single").unwrap();
        r.exec("valueclass INTEGERS").unwrap();
        let db = r.session.database();
        let stars = db.class_by_name("stars").unwrap();
        assert!(db.attr_by_name(stars, "fee").is_ok());
        // Errors are reported, not panicked.
        assert!(r.exec("frobnicate").is_err());
        assert!(r.exec("attribute onlyname").is_err());
        assert!(r.exec("pick nonexistent").is_err());
        assert!(r.exec("scroll xyz").is_err());
        // Empty/comment lines are no-ops.
        assert_eq!(r.exec("").unwrap(), "");
        assert_eq!(r.exec("# a comment").unwrap(), "");
        // help mentions the worksheet.
        assert!(r.exec("help").unwrap().contains("worksheet"));
    }

    #[test]
    fn assign_with_value_resolution() {
        let mut r = repl();
        r.exec("pick instruments").unwrap();
        r.exec("contents").unwrap();
        r.exec("select flute").unwrap();
        r.exec("select oboe").unwrap();
        let out = r.exec("assign family woodwind").unwrap();
        assert!(out.contains("woodwind"));
        // Boolean literal.
        r.exec("assign popular yes").unwrap();
        let db = r.session.database();
        let im = isis_sample::instrumental_music().unwrap();
        let flute = db.entity_by_name(im.instruments, "flute").unwrap();
        let fam = db.attr_value_set(flute, im.family).unwrap();
        assert_eq!(
            db.entity_name(fam.as_singleton().unwrap()).unwrap(),
            "woodwind"
        );
    }

    #[test]
    fn constraint_via_text() {
        let mut r = repl();
        r.exec("pick musicians").unwrap();
        r.exec("constraint union_only forall").unwrap();
        r.exec("atom").unwrap();
        r.exec("clause 1").unwrap();
        r.exec("push union").unwrap();
        r.exec("op ~").unwrap();
        r.exec("const").unwrap();
        r.exec("toggle yes").unwrap();
        r.exec("done").unwrap();
        let out = r.exec("commit").unwrap();
        assert!(out.contains("union_only"), "{out}");
        let out = r.exec("checks").unwrap();
        // Several musicians are not in the union: violations reported.
        assert!(out.contains("violated"), "{out}");
    }

    #[test]
    fn refresh_command_and_policy_via_text() {
        let mut r = repl();
        // Build the quartets class, then edit data with the policy manual.
        for line in [
            "pick music_groups",
            "subclass quartets",
            "define",
            "atom",
            "clause 1",
            "push size",
            "op =",
            "const",
            "toggle 4",
            "done",
            "commit",
        ] {
            r.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let db = r.session.database();
        let q = db.class_by_name("quartets").unwrap();
        let before = db.members(q).unwrap().len();
        r.exec("pick music_groups").unwrap();
        r.exec("contents").unwrap();
        r.exec("select \"Trio Grande\"").unwrap();
        r.exec("assign size 4").unwrap();
        // Stale until an explicit refresh under the manual policy.
        assert_eq!(r.session.database().members(q).unwrap().len(), before);
        let out = r.exec("refresh").unwrap();
        assert!(out.contains("re-evaluated"), "{out}");
        assert_eq!(r.session.database().members(q).unwrap().len(), before + 1);
        // Policy switching parses; junk does not.
        assert!(r.exec("refresh immediate").unwrap().contains("immediate"));
        assert_eq!(
            r.session.refresh_policy(),
            isis_session::RefreshPolicy::Immediate
        );
        assert!(r.exec("refresh sometimes").is_err());
    }

    #[test]
    fn metrics_and_trace_cover_query_refresh_and_recovery() {
        let im = isis_sample::instrumental_music().unwrap();
        let root = std::env::temp_dir().join(format!("isis_obs_repl_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = isis_store::StoreDir::open(&root).unwrap();
        let mut r = Repl::new(Session::builder(im.db).store(store).build());
        assert!(r.exec("metrics").unwrap().contains("observability is off"));
        r.exec("trace on").unwrap();

        // A derived class, an incremental refresh after a point update, and
        // a save/load pair (snapshot install + recovery).
        for line in [
            "pick music_groups",
            "subclass quartets",
            "define",
            "atom",
            "clause 1",
            "push size",
            "op =",
            "const",
            "toggle 4",
            "done",
            "commit",
            "refresh",
            "pick music_groups",
            "contents",
            "select \"Trio Grande\"",
            "assign size 4",
            "refresh",
        ] {
            r.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // One query through the shared service (in sync after the refresh).
        let db = r.session.database();
        let groups = db.class_by_name("music_groups").unwrap();
        let quartets = db.class_by_name("quartets").unwrap();
        let pred = db
            .class(quartets)
            .unwrap()
            .kind
            .predicate()
            .unwrap()
            .clone();
        r.session.query(groups, &pred).unwrap();
        // The extended stats line appears while observability is live.
        assert!(r.exec("stats").unwrap().contains("evaluate:"));
        // Snapshot install + recovery.
        r.exec("save party").unwrap();
        r.exec("load party").unwrap();

        let metrics = r.exec("metrics").unwrap();
        for name in [
            "query.service.queries",
            "session.refresh.rounds",
            "store.recovery.runs",
            "store.snapshot.save",
            "session.commands",
        ] {
            assert!(metrics.contains(name), "metrics missing {name}:\n{metrics}");
        }
        let dump = r.exec("trace dump").unwrap();
        for name in [
            "session.command.refresh",
            "session.refresh.settle",
            "store.recovery.recover",
            "query.service.evaluate",
        ] {
            assert!(dump.contains(name), "trace dump missing {name}:\n{dump}");
        }
        // Both JSON exports parse through the vendored codec.
        let report = r.exec("metrics json").unwrap();
        let parsed = isis_obs::Json::parse(&report).expect("metrics json parses");
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("isis-obs/1"));
        let trace_json = r.exec("trace json").unwrap();
        assert!(isis_obs::Json::parse(&trace_json).is_ok());

        r.exec("metrics off").unwrap();
        r.exec("metrics reset").unwrap();
        assert!(r.exec("trace nonsense").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn explain_slowlog_health_and_flight_via_text() {
        let mut r = repl();
        // Before any refresh: graceful degradation, not errors.
        assert!(r.exec("slowlog").unwrap().contains("no index service"));
        assert!(r.exec("health").unwrap().contains("no index service"));
        for line in [
            "pick music_groups",
            "subclass quartets",
            "define",
            "atom",
            "clause 1",
            "push size",
            "op =",
            "const",
            "toggle 4",
            "done",
            "commit",
            "refresh",
        ] {
            r.exec(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // The plan tree names the parent, the access path, and the cache
        // outcome; json is the machine form of the same record.
        let plan = r.exec("explain quartets").unwrap();
        assert!(plan.contains("EXPLAIN music_groups"), "{plan}");
        assert!(plan.contains("members"), "{plan}");
        let json = r.exec("explain quartets json").unwrap();
        let parsed = isis_obs::Json::parse(&json).expect("explain json parses");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("isis-query/explain/2")
        );
        // A zero threshold captures every evaluation.
        r.exec("slowlog threshold 0").unwrap();
        let svc = r.session.index_service().unwrap();
        svc.set_slow_threshold_ns(1); // 1ns: everything is slow
        let db = r.session.database();
        let groups = db.class_by_name("music_groups").unwrap();
        let quartets = db.class_by_name("quartets").unwrap();
        let pred = db
            .class(quartets)
            .unwrap()
            .kind
            .predicate()
            .unwrap()
            .clone();
        isis_obs::global().set_enabled(true);
        r.session.query(groups, &pred).unwrap();
        let out = r.exec("slowlog").unwrap();
        assert!(out.contains("music_groups"), "{out}");
        let json = r.exec("slowlog json").unwrap();
        assert!(isis_obs::Json::parse(&json).is_ok());
        let health = r.exec("health").unwrap();
        for line in ["program cache:", "queries:", "commits:", "flight:"] {
            assert!(health.contains(line), "health missing {line}:\n{health}");
        }
        let hjson = r.exec("health json").unwrap();
        let parsed = isis_obs::Json::parse(&hjson).expect("health json parses");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("isis-repl/health/1")
        );
        // The flight ring saw the slow capture; export round-trips as JSONL.
        let dump = r.exec("flight dump").unwrap();
        assert!(dump.contains("query.service.slow"), "{dump}");
        let path = std::env::temp_dir().join(format!("isis_flight_{}.jsonl", std::process::id()));
        let out = r
            .exec(&format!("flight export {}", path.display()))
            .unwrap();
        assert!(out.contains("events written"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() >= 1);
        for line in body.lines() {
            assert!(
                isis_obs::Json::parse(line).is_ok(),
                "bad JSONL line: {line}"
            );
        }
        let _ = std::fs::remove_file(&path);
        assert!(r.exec("flight clear").unwrap().contains("cleared"));
        assert!(r.exec("slowlog clear").unwrap().contains("cleared"));
        assert!(r.exec("flight nonsense").is_err());
        assert!(r.exec("slowlog nonsense").is_err());
        assert!(
            r.exec("explain musicians").is_err(),
            "base class: no predicate"
        );
        isis_obs::global().set_enabled(false);
    }

    #[test]
    fn grouping_page_and_literal_select() {
        let mut r = repl();
        r.exec("pick work_status").unwrap();
        r.exec("contents").unwrap();
        // Grouping pages index by the attribute's value class (YES/NO).
        r.exec("select yes").unwrap();
        r.exec("followg").unwrap();
        let shown = r.exec("show").unwrap();
        assert!(shown.contains("*Edith*"));
    }
}
