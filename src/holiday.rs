//! The §4.2 holiday-party session as a replayable script.
//!
//! "The following example illustrates the major functionality of the
//! interface." The script applies the narrative, command by command, and
//! captures a scene at each of the paper's twelve figures; the `figures`
//! binary renders the captures to ASCII and SVG, and the integration tests
//! assert their structure.

use isis_core::{CompareOp, Multiplicity, Result as CoreResult, SchemaNode};
use isis_sample::InstrumentalMusic;
use isis_session::{Command, Script, Session, SessionError, Transcript};

/// Builds the full §4.2 script against a prepared [`InstrumentalMusic`]
/// database. Interns the constant `4` (the quartet size the user picks at
/// the data level), so call it before cloning the database into a session.
pub fn holiday_party_script(im: &mut InstrumentalMusic) -> CoreResult<Script> {
    let four = im.db.int(4);
    let db = &im.db;
    let ian = db.entity_by_name(im.musicians, "Ian")?;
    let kurt = db.entity_by_name(im.musicians, "Kurt")?;
    let donna = db.entity_by_name(im.musicians, "Donna")?;

    let mut s = Script::new();
    // -- Familiarisation: Figures 1 and 2 --------------------------------
    s.cmd(Command::Pick(SchemaNode::Class(im.soloists)))
        .capture("fig01_forest_soloists")
        .cmd(Command::ViewAssociations)
        .cmd(Command::Pick(SchemaNode::Class(im.instruments)))
        .capture("fig02_network_instruments")
        // -- Data level: Figures 3–5 --------------------------------------
        .cmd(Command::Pop)
        .cmd(Command::ViewContents)
        .cmd(Command::SelectEntity(im.flute))
        .cmd(Command::SelectEntity(im.oboe))
        .capture("fig03_data_select_oboe")
        .cmd(Command::Follow(im.family))
        .capture("fig04_follow_family")
        // Correct the error: unhighlight brass, highlight woodwind…
        .cmd(Command::SelectEntity(im.brass))
        .cmd(Command::SelectEntity(im.woodwind))
        // …and (re)assign on the instruments page.
        .cmd(Command::Pop)
        .cmd(Command::ReassignAttrValue {
            attr: im.family,
            value: im.woodwind,
        })
        .capture("fig05_reassign_family")
        // -- Groupings: Figures 6 and 7 ------------------------------------
        .cmd(Command::Pop)
        .cmd(Command::Pick(SchemaNode::Grouping(im.by_family)))
        .cmd(Command::DisplayPredicate)
        .cmd(Command::ViewContents)
        .cmd(Command::SelectEntity(im.percussion))
        .capture("fig06_grouping_percussion")
        .cmd(Command::FollowGrouping)
        .capture("fig07_follow_into_instruments")
        // -- The query: Figures 8 and 9 -------------------------------------
        .cmd(Command::Pop)
        .cmd(Command::Pop)
        .cmd(Command::Pick(SchemaNode::Class(im.music_groups)))
        .cmd(Command::CreateSubclass("quartets".into()))
        .capture("fig08_create_quartets")
        .cmd(Command::DefineMembership)
        // Atom A: size = {4}, second clause.
        .cmd(Command::WsNewAtom)
        .cmd(Command::WsPlaceInClause(1))
        .cmd(Command::WsLhsPush(im.size))
        .cmd(Command::WsOperator(CompareOp::SetEq.into()))
        .cmd(Command::WsRhsConstant(None))
        .cmd(Command::ConstantToggle(four))
        .cmd(Command::ConstantDone)
        // Atom E: members plays ⊇ {piano}, first clause.
        .cmd(Command::WsNewAtom)
        .cmd(Command::WsPlaceInClause(0))
        .cmd(Command::WsLhsPush(im.members))
        .cmd(Command::WsLhsPush(im.plays))
        .cmd(Command::WsOperator(CompareOp::Superset.into()))
        .cmd(Command::WsRhsConstant(None))
        .cmd(Command::ConstantToggle(im.piano))
        .cmd(Command::ConstantDone)
        .cmd(Command::WsSwitchAndOr)
        .capture("fig09_worksheet_quartets")
        .cmd(Command::WsCommit)
        // -- all_inst: Figure 10 -------------------------------------------
        .cmd(Command::CreateAttribute {
            name: "all_inst".into(),
            multiplicity: Multiplicity::Multi,
        })
        .cmd(Command::SpecifyValueClass(SchemaNode::Class(
            im.instruments,
        )))
        .cmd(Command::DefineDerivation)
        .cmd(Command::WsHandAssign(vec![im.members, im.plays]))
        .capture("fig10_derivation_all_inst")
        .cmd(Command::WsCommit)
        // -- Exploring the result: Figures 11 and 12 ------------------------
        .cmd(Command::PickByName("quartets".into()))
        .cmd(Command::ViewContents)
        .cmd(Command::SelectEntity(im.labelle))
        .cmd(Command::Follow(im.members))
        // Focus on Edith: unhighlight the other three members.
        .cmd(Command::SelectEntity(ian))
        .cmd(Command::SelectEntity(kurt))
        .cmd(Command::SelectEntity(donna))
        .capture("fig11_focus_edith")
        .cmd(Command::Follow(im.plays))
        .cmd(Command::MakeSubclass("edith_plays".into()))
        .cmd(Command::Pop)
        .cmd(Command::Pop)
        .cmd(Command::Pop)
        .capture("fig12_forest_edith_plays");
    Ok(s)
}

/// Runs the holiday-party session end-to-end on a fresh Instrumental_Music
/// database. When a store is given, the script finishes with the paper's
/// "saves this new database as *entertainment*".
pub fn run_holiday_party(
    store: Option<isis_store::StoreDir>,
) -> Result<(Session, Transcript), SessionError> {
    let mut im = isis_sample::instrumental_music()?;
    let mut script = holiday_party_script(&mut im)?;
    if store.is_some() {
        script.cmd(Command::Save("entertainment".into()));
    }
    script.cmd(Command::Stop);
    let mut session = match store {
        Some(dir) => Session::builder(im.db.clone()).store(dir).build(),
        None => Session::builder(im.db.clone()).build(),
    };
    let transcript = script.run(&mut session)?;
    Ok((session, transcript))
}

/// The names of the twelve figure captures, in order.
pub const FIGURES: [&str; 12] = [
    "fig01_forest_soloists",
    "fig02_network_instruments",
    "fig03_data_select_oboe",
    "fig04_follow_family",
    "fig05_reassign_family",
    "fig06_grouping_percussion",
    "fig07_follow_into_instruments",
    "fig08_create_quartets",
    "fig09_worksheet_quartets",
    "fig10_derivation_all_inst",
    "fig11_focus_edith",
    "fig12_forest_edith_plays",
];

/// Builds the Diagram 1 scene: the interconnection of ISIS components
/// (schema level ⇄ data level, with the temporary-visit loop arrows).
pub fn diagram1_scene() -> isis_views::Scene {
    use isis_views::{ArrowKind, Element, Emphasis, FrameStyle, Point, Rect, Scene};
    let mut s = Scene::new("Diagram 1: interconnections of ISIS components");
    let schema = Rect::new(2, 0, 70, 9);
    s.push(Element::Frame {
        rect: schema,
        title: Some("SCHEMA LEVEL (schema selection is S)".into()),
        style: FrameStyle::Window,
    });
    let forest = Rect::new(4, 2, 20, 3);
    let network = Rect::new(27, 2, 20, 3);
    let worksheet = Rect::new(50, 2, 20, 3);
    for (r, label) in [
        (forest, "inheritance forest"),
        (network, "semantic network"),
        (worksheet, "predicate worksheet"),
    ] {
        s.push(Element::Frame {
            rect: r,
            title: None,
            style: FrameStyle::Window,
        });
        s.push(Element::Text {
            at: Point::new(r.x + 1, r.y + 1),
            text: label.into(),
            emphasis: Emphasis::Plain,
        });
    }
    // forest ⇄ network (view associations / pop), forest ⇄ worksheet
    // (define / commit).
    s.push(Element::Arrow {
        from: Point::new(forest.right(), 3),
        to: Point::new(network.x - 1, 3),
        kind: ArrowKind::Single,
        label: Some("S->S'".into()),
    });
    s.push(Element::Arrow {
        from: Point::new(network.x - 1, 4),
        to: Point::new(forest.right(), 4),
        kind: ArrowKind::Single,
        label: None,
    });
    s.push(Element::Arrow {
        from: Point::new(network.right(), 3),
        to: Point::new(worksheet.x - 1, 3),
        kind: ArrowKind::None,
        label: None,
    });
    s.push(Element::Text {
        at: Point::new(4, 6),
        text: "view associations / define / (re)name / view contents".into(),
        emphasis: Emphasis::Plain,
    });
    s.push(Element::Text {
        at: Point::new(4, 7),
        text: "S selection changed at both levels while navigating".into(),
        emphasis: Emphasis::Plain,
    });
    let data = Rect::new(2, 12, 70, 7);
    s.push(Element::Frame {
        rect: data,
        title: Some("DATA LEVEL (data selection is D)".into()),
        style: FrameStyle::Window,
    });
    s.push(Element::Text {
        at: Point::new(4, 14),
        text: "select/reject, follow (S->S', D->D'), (re)assign, make subclass".into(),
        emphasis: Emphasis::Plain,
    });
    s.push(Element::Text {
        at: Point::new(4, 16),
        text: "if S is a class, D is a subset of S; if S is a grouping,".into(),
        emphasis: Emphasis::Plain,
    });
    s.push(Element::Text {
        at: Point::new(4, 17),
        text: "D is (a union of) the contents of a subset of S".into(),
        emphasis: Emphasis::Plain,
    });
    // view contents (down), pop (up).
    s.push(Element::Arrow {
        from: Point::new(20, schema.bottom()),
        to: Point::new(20, data.y - 1),
        kind: ArrowKind::Single,
        label: Some("view contents".into()),
    });
    s.push(Element::Arrow {
        from: Point::new(40, data.y - 1),
        to: Point::new(40, schema.bottom()),
        kind: ArrowKind::Single,
        label: Some("pop".into()),
    });
    // The temporary-visit loop arrows: constant selection and make
    // subclass change neither S nor D on return.
    s.push(Element::Arrow {
        from: Point::new(62, schema.bottom()),
        to: Point::new(62, data.y - 1),
        kind: ArrowKind::Single,
        label: Some("select constant (loop: S, D unchanged)".into()),
    });
    s.push(Element::Arrow {
        from: Point::new(66, data.y - 1),
        to: Point::new(66, schema.bottom()),
        kind: ArrowKind::Single,
        label: None,
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_produces_all_twelve_figures() {
        let (session, transcript) = run_holiday_party(None).unwrap();
        assert!(session.stopped());
        for name in FIGURES {
            assert!(transcript.scene(name).is_some(), "missing capture {name}");
        }
        // Final database state: quartets committed, edith_plays created,
        // flute corrected, consistency holds.
        let db = session.database();
        let quartets = db.class_by_name("quartets").unwrap();
        assert_eq!(db.members(quartets).unwrap().len(), 1);
        assert!(db.class_by_name("edith_plays").is_ok());
        assert!(db.is_consistent().unwrap());
    }

    #[test]
    fn diagram1_renders() {
        let s = diagram1_scene();
        assert!(s.has_text("inheritance forest"));
        assert!(s.has_text("semantic network"));
        assert!(s.has_text("predicate worksheet"));
        let out = isis_views::render::ascii::render(&s);
        assert!(out.contains("SCHEMA LEVEL"));
        assert!(out.contains("DATA LEVEL"));
        assert!(out.contains("pop"));
    }
}
