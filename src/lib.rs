//! # isis
//!
//! A full reproduction of *ISIS: Interface for a Semantic Information
//! System* (Goldman, Goldman, Kanellakis, Zdonik — SIGMOD 1985): a semantic
//! data model database engine with an integrated schema/data browser and a
//! graphical query language, simulated headlessly with deterministic
//! ASCII/SVG rendering.
//!
//! This facade crate re-exports the subsystem crates and hosts the examples
//! and integration tests:
//!
//! * [`core`] — the SDM-subset data model engine;
//! * [`query`] — relational algebra engine, predicate compiler
//!   (the relational-completeness witness), QBE baseline, indexes,
//!   incremental maintenance, optimizer;
//! * [`store`] — snapshots + write-ahead log persistence;
//! * [`views`] — the four paper views and the renderers;
//! * [`session`] — the Diagram-1 interaction engine;
//! * [`sample`] — the §4.1 Instrumental_Music database and
//!   synthetic workloads;
//! * [`holiday`] — the §4.2 session script that regenerates Figures 1–12;
//! * [`obs`] — structured tracing, metrics, and machine-readable run
//!   reports across the query/refresh/storage pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use isis_core as core;
pub use isis_obs as obs;
pub use isis_query as query;
pub use isis_sample as sample;
pub use isis_session as session;
pub use isis_store as store;
pub use isis_views as views;

pub mod holiday;
pub mod repl;

/// The most commonly used items, for `use isis::prelude::*`.
pub mod prelude {
    pub use isis_core::{
        Atom, AttrDerivation, AttrId, BaseKind, Change, ChangeSet, ClassId, Clause, CompareOp,
        CoreError, Database, DeltaLog, EntityId, GroupingId, Literal, Map, Multiplicity,
        NormalForm, Operator, OrderedSet, Predicate, RetryBackoff, Rhs, SchemaEdit, SchemaNode,
    };
    pub use isis_query::{
        DerivedMaintainer, IndexManager, IndexService, IndexedEvaluator, QbeQuery, QueryStats,
    };
    pub use isis_session::{
        Command, CommitConflict, CommitReceipt, RefreshPolicy, Script, Session, SessionBuilder,
        SharedDatabase,
    };
    pub use isis_store::{
        FaultMode, FaultVfs, FsckReport, LoggedDatabase, RecoveryReport, Replica, ReplicaStatus,
        ReplicationLog, ShipCursor, Shipment, StoreDir, SyncPolicy,
    };
    pub use isis_views::{render, Scene};
}
