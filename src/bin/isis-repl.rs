//! The interactive ISIS terminal: the paper's interface, driven by text
//! commands instead of a one-button mouse.
//!
//! ```text
//! isis-repl [DB_DIR]     # attach a database directory (default: ./isis-data)
//! ```
//!
//! The session starts on the §4.1 Instrumental_Music database when the
//! directory holds no databases yet; `load NAME` / `save NAME` work against
//! the directory. Type `help` for the command language and `show` to render
//! the current view.

use std::io::{BufRead, Write};

use isis::repl::Repl;
use isis::store::StoreDir;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "isis-data".to_string());
    let store = StoreDir::open(&dir).expect("open database directory");
    let db = match store.list().ok().filter(|l| !l.is_empty()) {
        Some(names) => {
            eprintln!("databases here: {names:?} (use `load NAME`)");
            isis::core::Database::new("untitled")
        }
        None => {
            eprintln!("empty directory: starting on Instrumental_Music");
            let im = isis::sample::instrumental_music().expect("sample database");
            store
                .save(&im.db, "Instrumental_Music")
                .expect("seed the directory");
            im.db
        }
    };
    let mut repl = Repl::new(isis::session::Session::builder(db).store(store).build());
    eprintln!("ISIS — type `help` for commands, `show` to render, `stop` to leave.");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        eprint!("isis> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match repl.exec(&line) {
            Ok(msg) => {
                if !msg.is_empty() {
                    println!("{msg}");
                }
            }
            Err(e) => eprintln!("! {e}"),
        }
        if repl.session.stopped() {
            break;
        }
    }
    eprintln!("bye.");
}
