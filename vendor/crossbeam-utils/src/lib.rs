//! Offline stand-in for the subset of `crossbeam-utils` this workspace
//! uses: `thread::scope` with `Scope::spawn` + `ScopedJoinHandle::join`.
//! Implemented on top of `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to [`scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives `()` in place of
        /// crossbeam's nested-scope argument (callers here ignore it).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before `scope` returns. Panics in unjoined threads are
    /// reported through the returned `Result`, as in crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_join_collects_results() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn panics_surface_in_scope_result() {
            let r = super::scope(|s| {
                let h = s.spawn(|_| panic!("boom"));
                h.join()
            })
            .unwrap();
            assert!(r.is_err());
        }
    }
}
