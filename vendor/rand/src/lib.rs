//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a tiny, deterministic implementation of exactly the surface the
//! crates consume: `StdRng` + `SeedableRng::seed_from_u64`, the `Rng`
//! convenience methods (`gen`, `gen_range`, `gen_bool`) and
//! `SliceRandom::choose_multiple`. The generator is SplitMix64, which is
//! plenty for synthetic-workload generation (not cryptographic use).

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng {
                state: seed ^ 0x5851_F42D_4C95_7F2D,
            };
            // Warm up so small seeds diverge immediately.
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Types producible from a single `u64` draw (the `Standard` distribution).
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range from which a uniform value can be drawn.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_u64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Random selections from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// `amount` distinct elements in random order (all of them when the
        /// slice is shorter), via a partial Fisher–Yates over indices.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let n = self.len();
            let k = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + (rng.next_u64() as usize) % (n - i);
                idx.swap(i, j);
            }
            idx[..k]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u32> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u32> = (0..16).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&w));
            let x = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
        // Requesting more than available yields everything.
        assert_eq!(items.choose_multiple(&mut rng, 100).count(), 20);
    }
}
