//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment has no crates.io access, so the benches link
//! against this minimal harness instead: `Criterion` with the builder
//! methods the benches call, `benchmark_group` / `bench_with_input` /
//! `bench_function`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. `--test` (as passed by
//! `cargo bench -- --test`) runs every benchmark body exactly once as a
//! smoke check; otherwise each benchmark is warmed up and timed, and a
//! mean ns/iter line is printed. An optional positional CLI argument
//! filters benchmarks by substring, as in real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One completed benchmark run, as recorded by the harness.
///
/// Real criterion persists these under `target/criterion/`; this stand-in
/// keeps them in memory so report targets can export machine-readable
/// summaries (`out/bench_<name>.json`) after the timed groups finish.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration (0.0 under `--test`).
    pub mean_ns: f64,
    /// Total iterations measured (1 under `--test`).
    pub iters: u64,
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
            filter: None,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies CLI arguments (`--test`, an optional substring filter);
    /// called by `criterion_group!` on the configured instance.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                // Flags the real harness accepts and we can ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size"
                | "--warm-up-time" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Whether the harness is in `--test` smoke mode (one untimed pass).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Every benchmark run so far, in execution order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: if self.test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure {
                    warm_up: self.warm_up_time,
                    measurement: self.measurement_time,
                    sample_size: self.sample_size,
                }
            },
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            println!(
                "{id:<60} time: {:>12.1} ns/iter ({} iters)",
                b.mean_ns, b.iters
            );
        }
        self.measurements.push(Measurement {
            id: id.to_string(),
            mean_ns: b.mean_ns,
            iters: b.iters,
        });
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, &mut f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_id());
        self.criterion.run_one(&full, &mut |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name in `bench_function`.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

enum Mode {
    TestOnce,
    Measure {
        warm_up: Duration,
        measurement: Duration,
        sample_size: usize,
    },
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::TestOnce => {
                black_box(routine());
                self.iters = 1;
            }
            Mode::Measure {
                warm_up,
                measurement,
                sample_size,
            } => {
                // Warm-up: also estimates per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_start.elapsed() < warm_up {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
                // Budget the measurement window across `sample_size` samples.
                let per_sample = measurement.as_secs_f64() / sample_size as f64;
                let iters_per_sample = (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64;
                let mut total = Duration::ZERO;
                let mut iters = 0u64;
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..iters_per_sample {
                        black_box(routine());
                    }
                    total += start.elapsed();
                    iters += iters_per_sample;
                    if total > measurement * 2 {
                        break;
                    }
                }
                self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
                self.iters = iters;
            }
        }
    }
}

/// Opaque value barrier, preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion() -> Criterion {
        Criterion {
            test_mode: true,
            ..Criterion::default()
        }
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = test_criterion();
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        g.bench_function("plain", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = test_criterion();
        c.filter = Some("nomatch".into());
        let mut runs = 0;
        let mut g = c.benchmark_group("g");
        g.bench_function("plain", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn measurements_are_recorded() {
        let mut c = test_criterion();
        let mut g = c.benchmark_group("g");
        g.bench_function("one", |b| b.iter(|| 1));
        g.finish();
        let m = c.measurements();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].id, "g/one");
        assert_eq!(m[0].iters, 1);
    }

    #[test]
    fn measure_mode_reports_nonzero_time() {
        let mut c = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        let mut acc = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(black_box(1));
            })
        });
        g.finish();
        assert!(acc > 0);
    }
}
