//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no crates.io access, so this crate implements
//! exactly the surface the tests consume: the [`strategy::Strategy`] trait
//! with `prop_map`, `any::<T>()`, numeric-range and tuple strategies,
//! `Just`, string strategies from simple `[class]{m,n}` patterns,
//! `collection::vec`, `sample::Index`, `prop_oneof!`, the `proptest!` test
//! macro with `#![proptest_config(..)]`, `prop_assert!`/`prop_assert_eq!`,
//! and the low-level `TestRunner`/`ValueTree` API.
//!
//! Generation is deterministic per test function; shrinking is not
//! implemented (failures report the generated value instead).

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; this subset does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Drives generation for a set of property cases (SplitMix64 core).
    pub struct TestRunner {
        state: u64,
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner {
                state: 0x0DDB_1A5E_5BAD_5EED,
                config,
            }
        }

        /// A runner with a fixed seed, as `TestRunner::deterministic()`.
        pub fn deterministic() -> Self {
            TestRunner::new(Config::default())
        }

        pub fn config(&self) -> &Config {
            &self.config
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};
    use std::rc::Rc;

    /// A generated value plus (in real proptest) its shrink state. This
    /// subset generates eagerly and does not shrink.
    pub trait ValueTree {
        type Value;
        fn current(&self) -> Self::Value;
    }

    /// Eager tree holding an already-generated value.
    pub struct NoShrink<T>(pub T);

    impl<T: Clone> ValueTree for NoShrink<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        type Value: Clone;

        fn gen_value(&self, runner: &mut TestRunner) -> Self::Value;

        fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, String> {
            Ok(NoShrink(self.gen_value(runner)))
        }

        fn prop_map<U: Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = Rc::new(self);
            BoxedStrategy(Rc::new(move |r: &mut TestRunner| s.gen_value(r)))
        }
    }

    /// Type-erased strategy, produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRunner) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V: Clone> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, runner: &mut TestRunner) -> V {
            (self.0)(runner)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Clone> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, runner: &mut TestRunner) -> V {
            let i = runner.below(self.arms.len());
            self.arms[i].gen_value(runner)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.gen_value(runner))
        }
    }

    /// `any::<T>()` — arbitrary value of a primitive type.
    pub struct Any<T>(PhantomData<T>);

    pub trait ArbitraryValue: Clone {
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (runner.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (runner.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn gen_value(&self, runner: &mut TestRunner) -> $t {
                    (self.start..=<$t>::MAX).gen_value(runner)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.gen_value(runner),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(S0.0);
    impl_tuple_strategy!(S0.0, S1.1);
    impl_tuple_strategy!(S0.0, S1.1, S2.2);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
    impl_tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

    /// String strategies from simple regex-like patterns: a sequence of
    /// literal characters and `[a-z 0-9...]` classes, each optionally
    /// followed by `{n}` or `{m,n}`. Covers the patterns the tests use
    /// (`"[a-z]{1,12}"`, `"[ -~]{0,60}"`, ...).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, runner: &mut TestRunner) -> String {
            generate_from_pattern(self, runner)
        }
    }

    fn generate_from_pattern(pat: &str, runner: &mut TestRunner) -> String {
        let chars: Vec<char> = pat.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Element: a character class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
                let class = expand_class(&chars[i + 1..close], pat);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Quantifier: {n} or {m,n}; default exactly one.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo
                + if hi > lo {
                    runner.below(hi - lo + 1)
                } else {
                    0
                };
            for _ in 0..count {
                out.push(alphabet[runner.below(alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(body: &[char], pat: &str) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                assert!(lo <= hi, "bad class range in pattern {pat:?}");
                for c in lo..=hi {
                    set.push(char::from_u32(c).unwrap());
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty class in pattern {pat:?}");
        set
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bounds for [`vec`]: `[lo, hi]` inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange(usize, usize);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r.start, r.end - 1)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start(), *r.end())
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n, n)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let SizeRange(lo, hi) = self.size;
            let n = lo
                + if hi > lo {
                    runner.below(hi - lo + 1)
                } else {
                    0
                };
            (0..n).map(|_| self.element.gen_value(runner)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::ArbitraryValue;
    use crate::test_runner::TestRunner;

    /// A position into a collection whose length is supplied later.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Maps this draw onto `[0, len)`. `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl ArbitraryValue for Index {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            Index(runner.next_u64() as usize)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::sample::Index` etc. resolve under the glob
    /// import, as in real proptest.
    pub mod prop {
        pub use crate::{collection, sample, strategy, test_runner};
    }
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config.clone());
            for _case in 0..config.cases {
                $crate::__proptest_bind!(runner; $($params)*);
                // Bodies may `return Ok(())` early, as in real proptest,
                // where each case runs in a Result-returning function.
                let case = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = case() {
                    panic!("property case failed: {e}");
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($runner:ident;) => {};
    ($runner:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::gen_value(&($strat), &mut $runner);
    };
    ($runner:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::gen_value(&($strat), &mut $runner);
        $crate::__proptest_bind!($runner; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::ValueTree;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        for _ in 0..200 {
            let s = "[a-z]{1,12}".gen_value(&mut runner);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let p = "[ -~]{0,20}".gen_value(&mut runner);
            assert!(p.len() <= 20);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let strat = prop_oneof![Just(1u8), Just(2u8), (5u8..8).prop_map(|v| v)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(strat.gen_value(&mut runner));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.iter().any(|v| (5..8).contains(v)));
    }

    #[test]
    fn value_tree_api_matches_direct_generation() {
        let mut a = crate::test_runner::TestRunner::deterministic();
        let mut b = crate::test_runner::TestRunner::deterministic();
        let strat = (any::<u32>(), "[a-z]{1,4}").prop_map(|(n, s)| format!("{n}-{s}"));
        let direct = strat.gen_value(&mut a);
        let tree = strat.new_tree(&mut b).unwrap().current();
        assert_eq!(direct, tree);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_args(x in 0u8..10, v in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }
    }
}
