//! Offline API-compatible subset of the `scoped_threadpool` crate (the
//! build environment has no crates.io access).
//!
//! A [`Pool`] owns a fixed set of **persistent** worker threads that take
//! jobs from a shared channel. [`Pool::scoped`] lends the workers to a
//! lifetime-scoped region: every job queued through the [`Scope`] is
//! guaranteed to finish before `scoped` returns, which is what makes the
//! lifetime erasure inside [`Scope::execute`] sound. The point of the
//! crate — versus spawning scoped OS threads per call — is that thread
//! startup cost is paid once, so short evaluation bursts can be
//! parallelised profitably.
//!
//! Panic policy: a panicking job is caught inside the worker (the worker
//! survives and keeps serving), the job is counted as finished, and the
//! payload is dropped. Callers that need the payload should catch panics
//! inside the closure they submit.

use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counts outstanding jobs; `wait` blocks until the count reaches zero.
#[derive(Default)]
struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    fn add(&self, n: usize) {
        *self.count.lock().unwrap() += n;
    }

    fn done(&self) {
        let mut c = self.count.lock().unwrap();
        *c -= 1;
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut c = self.count.lock().unwrap();
        while *c != 0 {
            c = self.zero.wait(c).unwrap();
        }
    }
}

/// Marks the owning job finished even if it unwinds.
struct DoneGuard(Arc<WaitGroup>);

impl Drop for DoneGuard {
    fn drop(&mut self) {
        self.0.done();
    }
}

/// Blocks until every job queued in the scope has run, even if the scope
/// closure itself unwinds (queued jobs still borrow the caller's stack).
struct ScopeBarrier<'a>(&'a WaitGroup);

impl Drop for ScopeBarrier<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// A pool of persistent worker threads that can run scoped jobs.
pub struct Pool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    thread_count: u32,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("thread_count", &self.thread_count)
            .finish()
    }
}

impl Pool {
    /// Spawns `n` worker threads (at least one).
    pub fn new(n: u32) -> Pool {
        let n = n.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..n)
            .map(|_| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    // Hold the lock only while receiving, not while running.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match job {
                        // A panicking job must not kill the worker; its
                        // DoneGuard still marks it finished.
                        Ok(job) => {
                            let _ = catch_unwind(AssertUnwindSafe(job));
                        }
                        Err(_) => break, // pool dropped: channel closed
                    }
                })
            })
            .collect();
        Pool {
            sender: Some(tx),
            workers,
            thread_count: n,
        }
    }

    /// The number of worker threads in the pool.
    pub fn thread_count(&self) -> u32 {
        self.thread_count
    }

    /// Runs `f` with a [`Scope`] through which jobs borrowing data of
    /// lifetime `'scope` may be queued; blocks until all of them finish.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let wait = Arc::new(WaitGroup::default());
        let scope = Scope {
            sender: self.sender.as_ref().expect("pool is live"),
            wait: Arc::clone(&wait),
            _marker: PhantomData,
        };
        // Declared after `scope` so it drops first: the barrier must fire
        // before any `'scope` borrow can expire.
        let _barrier = ScopeBarrier(&wait);
        f(&scope)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Handle for queueing jobs inside one [`Pool::scoped`] region.
pub struct Scope<'pool, 'scope> {
    sender: &'pool Sender<Job>,
    wait: Arc<WaitGroup>,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues `f` on the pool. It runs on some worker thread before the
    /// enclosing [`Pool::scoped`] call returns.
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.wait.add(1);
        let guard = DoneGuard(Arc::clone(&self.wait));
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let _guard = guard;
            f();
        });
        // SAFETY: `Pool::scoped` blocks (via ScopeBarrier, which fires even
        // on unwind) until every queued job has finished, so no worker can
        // observe a `'scope` borrow after it expires; extending the
        // closure's lifetime to 'static for the channel is therefore sound.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.sender
            .send(job)
            .expect("scoped_threadpool: worker channel closed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_complete_before_scoped_returns() {
        let mut pool = Pool::new(4);
        let mut out = vec![0u64; 64];
        pool.scoped(|scope| {
            for (i, slot) in out.iter_mut().enumerate() {
                scope.execute(move || *slot = (i as u64) * 2);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == (i as u64) * 2));
    }

    #[test]
    fn pool_is_reusable_across_scoped_calls() {
        let mut pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.scoped(|scope| {
                for _ in 0..8 {
                    scope.execute(|| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 80);
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let mut pool = Pool::new(2);
        pool.scoped(|scope| {
            scope.execute(|| panic!("boom"));
        });
        // Workers must still be serving afterwards.
        let ran = AtomicUsize::new(0);
        pool.scoped(|scope| {
            for _ in 0..4 {
                scope.execute(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }
}
