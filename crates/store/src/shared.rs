//! Durable MVCC: a [`SharedDatabase`] whose admitted commits are
//! write-ahead logged.
//!
//! [`StoreDir::open_shared`] recovers (or creates) a named database, folds
//! whatever recovery replayed into a fresh snapshot generation, and wraps
//! the result in a [`SharedDatabase`] carrying a [`WalCommitHook`]. The
//! hook runs inside the commit critical section *before* the new head is
//! installed, so the durability contract is exactly the one the isolation
//! battery checks:
//!
//! * an admitted commit is one atomic [`LogOp::CommitBatch`] frame — a
//!   crash mid-append tears the frame and recovery discards the whole
//!   commit, never half of it;
//! * a failed append or fsync vetoes the commit
//!   ([`CommitConflict::Durability`](isis_core::CommitConflict)): the head
//!   is not installed, and the hook rewinds any bytes that did reach the
//!   file so a later recovery cannot replay a commit that was reported as
//!   failed — no phantom commits;
//! * a commit containing schema edits falls back to a full snapshot
//!   checkpoint (schema replay onto a concurrently-advanced line is not
//!   attempted), using the same crash-safe sequence as
//!   [`LoggedDatabase::checkpoint`](crate::LoggedDatabase::checkpoint).
//!
//! Derived-class memberships and derived-attribute materialisations are
//! *not* logged: like the paper's stale derived subclasses (§2), they are
//! recomputable, and the MVCC layer already excludes them from conflict
//! detection. A recovered database may therefore hold stale derived state
//! until the next refresh — the same staleness any pinned session sees.

use std::collections::HashSet;

use isis_core::{AttrValue, Change, ChangeSet, CommitHook, Database, EntityId, SharedDatabase};

use crate::error::StoreError;
use crate::recovery::RecoveryReport;
use crate::store::{read_snapshot_bytes_gen, snapshot_bytes_with_gen, StoreDir};
use crate::wal::{LogOp, SyncPolicy, WalFile};

impl StoreDir {
    /// Opens `name` as a durable shared database: many [`Session`]s (or
    /// raw pins) may work against the returned handle concurrently, and
    /// every admitted commit is WAL-durable under `policy`. Creates the
    /// database if absent. Whatever recovery found is in the returned
    /// [`RecoveryReport`].
    ///
    /// [`Session`]: https://docs.rs/isis-session
    pub fn open_shared(
        &self,
        name: &str,
        policy: SyncPolicy,
    ) -> Result<(SharedDatabase, RecoveryReport), StoreError> {
        Self::check_name(name)?;
        let (db, report) = if self.exists(name) {
            self.recover(name)?
        } else {
            (Database::new(name), RecoveryReport::fresh(name))
        };
        // Fold the replayed suffix into a fresh snapshot generation so the
        // log restarts empty (see `open_logged` for the rotate rationale).
        let generation = self.next_generation(name);
        let rotate = !report.used_fallback;
        self.install(name, &snapshot_bytes_with_gen(&db, generation), rotate)?;
        let mut wal = WalFile::open_with(self.vfs().clone(), self.wal_path(name), policy)?;
        wal.reset(generation)?;
        let shared = SharedDatabase::new(db);
        shared.set_commit_hook(Some(Box::new(WalCommitHook {
            wal,
            dir: self.clone(),
            name: name.to_string(),
            generation,
            poisoned: false,
        })));
        Ok((shared, report))
    }
}

/// The durability hook a [`StoreDir::open_shared`] handle carries: runs
/// under the commit lock, before the new head is installed.
#[derive(Debug)]
pub struct WalCommitHook {
    wal: WalFile,
    dir: StoreDir,
    name: String,
    generation: u64,
    /// Set when a partial failure left disk and memory possibly diverged
    /// (rollback failed, or a checkpoint installed but its log reset
    /// failed). Every later commit is refused; reopen the store to
    /// re-establish a consistent head.
    poisoned: bool,
}

impl CommitHook for WalCommitHook {
    fn on_commit(&mut self, db: &Database, applied: &ChangeSet) -> Result<(), String> {
        // The hook boundary is stringly typed so isis-core stays free of
        // storage types; everything below it works in typed `StoreError`s
        // (a plain I/O failure surfaces as `StoreError::Io`, never a
        // panic, and unrollbackable partial failures as
        // `StoreError::Poisoned`).
        self.record(db, applied).map_err(|e| e.to_string())
    }

    fn poisoned(&self) -> bool {
        self.poisoned
    }
}

impl WalCommitHook {
    fn record(&mut self, db: &Database, applied: &ChangeSet) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(self.poison_error("an earlier partial failure; reopen the store"));
        }
        let obs = isis_obs::global();
        match batch_ops(db, applied) {
            Some(ops) => {
                if obs.enabled() {
                    obs.count("store.wal.commit_frames", 1);
                    let n = ops.len();
                    obs.flight_event("store.wal.commit", || {
                        isis_obs::Json::obj([
                            ("mode", isis_obs::Json::from("frames")),
                            ("ops", isis_obs::Json::from(n)),
                        ])
                    });
                }
                self.append_batch(ops)
            }
            None => {
                // Schema edits fall back to a whole-head snapshot; the
                // frames-vs-checkpoint split is the headline durability
                // telemetry, so record which path this commit took.
                if obs.enabled() {
                    obs.count("store.wal.commit_checkpoints", 1);
                    let n = applied.len();
                    obs.flight_event("store.wal.commit", || {
                        isis_obs::Json::obj([
                            ("mode", isis_obs::Json::from("checkpoint")),
                            ("changes", isis_obs::Json::from(n)),
                        ])
                    });
                }
                self.checkpoint(db)
            }
        }
    }

    fn poison_error(&self, detail: impl Into<String>) -> StoreError {
        StoreError::Poisoned {
            name: self.name.clone(),
            detail: detail.into(),
        }
    }

    fn append_batch(&mut self, ops: Vec<LogOp>) -> Result<(), StoreError> {
        if ops.is_empty() {
            // Every change in the commit was derived materialisation —
            // nothing durable to record.
            return Ok(());
        }
        let mark = self.wal.len()?;
        if let Err(e) = self.wal.append(&LogOp::CommitBatch(ops)) {
            // The frame may be partly or wholly on disk even though the
            // append failed; rewind so recovery can never replay a commit
            // that the caller was told did not happen.
            if let Err(r) = self.wal.rewind_to(mark) {
                self.poisoned = true;
                return Err(self.poison_error(format!(
                    "commit append failed ({e}) and rollback failed ({r})"
                )));
            }
            return Err(e);
        }
        Ok(())
    }

    /// Schema edits (and anything else `batch_ops` declines) are made
    /// durable by snapshotting the whole candidate head, mirroring
    /// [`LoggedDatabase::checkpoint`](crate::LoggedDatabase::checkpoint):
    /// sync the old segment, install the new generation, reset the log.
    fn checkpoint(&mut self, db: &Database) -> Result<(), StoreError> {
        self.wal.sync()?;
        let generation = self.generation + 1;
        let bytes = snapshot_bytes_with_gen(db, generation);
        if let Err(e) = self.dir.install(&self.name, &bytes, true) {
            // The install may have failed *after* its point of no return
            // (the rename into the newest slot — e.g. the trailing
            // directory fsync). If the new generation is now the newest on
            // disk — or the failure leaves us unable to prove it is not —
            // the vetoed commit is durable while memory stays pre-commit,
            // and worse: later commits would append to a WAL recovery will
            // treat as stale and silently drop. Poison unless the old
            // newest snapshot is demonstrably still in place.
            let rolled_back = self
                .dir
                .vfs()
                .read(&self.dir.snapshot_path(&self.name))
                .ok()
                .and_then(|b| read_snapshot_bytes_gen(&b).ok())
                .is_some_and(|(_, g)| g < generation);
            if rolled_back {
                return Err(e);
            }
            self.poisoned = true;
            return Err(self.poison_error(format!(
                "checkpoint install failed and the newest snapshot slot is not provably \
                 the pre-commit generation: {e}"
            )));
        }
        if let Err(e) = self.wal.reset(generation) {
            // The snapshot containing this commit is already installed and
            // cannot be taken back, but the stale log header means recovery
            // will skip the old segment — state on disk is the *post*-commit
            // head while the caller sees a veto. That is the crash-after-
            // fsync-before-ack outcome every durable system admits; poison
            // the hook so the lines cannot diverge further.
            self.poisoned = true;
            return Err(self.poison_error(format!(
                "log reset after checkpoint failed: {e}; the installed snapshot already \
                 contains the vetoed commit"
            )));
        }
        self.generation = generation;
        Ok(())
    }
}

/// Converts an admitted commit's change stream into replayable operations,
/// or `None` when the commit needs a full checkpoint (schema edits, or a
/// referenced class/attribute that the head cannot resolve).
///
/// Id alignment: replay allocates entity ids in the same order the
/// original mutators did, because literal interns are emitted at their
/// recorded stream position and `InsertEntity` re-interns its name string
/// (allocating exactly when the original insert did — see the WAL module
/// docs). Changes the replayed operations regenerate themselves are
/// skipped: naming-attribute assignments (covered by `RenameEntity` /
/// `InsertEntity`), derived state, and the scrub records `DeleteEntity`
/// re-derives.
fn batch_ops(db: &Database, applied: &ChangeSet) -> Option<Vec<LogOp>> {
    if applied.has_schema_changes() {
        return None;
    }
    let deleted: HashSet<EntityId> = applied
        .iter()
        .filter_map(|c| match c {
            Change::EntityDeleted { entity, .. } => Some(*entity),
            _ => None,
        })
        .collect();
    let mut ops = Vec::new();
    for change in applied {
        match change {
            Change::EntityInserted { entity, base, name } => match db.literal_of(*entity) {
                Some(lit) => ops.push(LogOp::Intern(lit.clone())),
                None => ops.push(LogOp::InsertEntity(*base, name.clone())),
            },
            Change::EntityDeleted { entity, .. } => ops.push(LogOp::DeleteEntity(*entity)),
            Change::EntityRenamed { entity, name } => {
                if !deleted.contains(entity) {
                    ops.push(LogOp::RenameEntity(*entity, name.clone()));
                }
            }
            Change::MembershipAdded { entity, class } => {
                if !deleted.contains(entity) && !db.class(*class).ok()?.is_derived() {
                    ops.push(LogOp::AddToClass(*entity, *class));
                }
            }
            Change::MembershipRemoved { entity, class } => {
                if !deleted.contains(entity) && !db.class(*class).ok()?.is_derived() {
                    ops.push(LogOp::RemoveFromClass(*entity, *class));
                }
            }
            Change::AttrAssigned {
                entity, attr, new, ..
            } => {
                if deleted.contains(entity) {
                    continue;
                }
                let rec = db.attr(*attr).ok()?;
                if rec.is_derived() || rec.naming {
                    continue;
                }
                match new {
                    AttrValue::Single(v) if v.is_null() => {
                        ops.push(LogOp::Unassign(*entity, *attr));
                    }
                    AttrValue::Single(v) => ops.push(LogOp::AssignSingle(*entity, *attr, *v)),
                    AttrValue::Multi(s) => {
                        ops.push(LogOp::AssignMulti(*entity, *attr, s.iter().collect()));
                    }
                }
            }
            Change::Schema(_) => return None,
        }
    }
    Some(ops)
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::sync::Arc;

    use isis_core::{BaseKind, Multiplicity};

    use super::*;
    use crate::vfs::{FaultVfs, StdVfs};

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_shared_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn data_commits_survive_reopen_via_commit_batches() {
        let root = tempdir("reopen");
        let dir = StoreDir::open(&root).unwrap();
        let (shared, report) = dir.open_shared("band", SyncPolicy::EverySync).unwrap();
        assert!(report.is_pristine());

        // A schema commit (checkpoint fallback) followed by data commits
        // (batch frames).
        let mut w = shared.pin();
        let base = w.delta_epoch();
        let musicians = w.create_baseclass("musicians").unwrap();
        shared.commit(base, &w).unwrap();

        let mut w = shared.pin();
        let base = w.delta_epoch();
        w.insert_entity(musicians, "Edith").unwrap();
        w.insert_entity(musicians, "Amy").unwrap();
        shared.commit(base, &w).unwrap();

        let mut w = shared.pin();
        let base = w.delta_epoch();
        let edith = w.entity_by_name(musicians, "Edith").unwrap();
        w.rename_entity(edith, "Edith Mae").unwrap();
        shared.commit(base, &w).unwrap();
        drop(shared);

        let (reopened, report) = dir.open_shared("band", SyncPolicy::EverySync).unwrap();
        assert_eq!(report.wal_records_rejected, 0);
        reopened.read(|db| {
            let musicians = db.class_by_name("musicians").unwrap();
            assert!(db.entity_by_name(musicians, "Edith Mae").is_ok());
            assert!(db.entity_by_name(musicians, "Amy").is_ok());
            assert!(db.check_consistency().unwrap().is_empty());
        });
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn deletes_and_values_replay_with_aligned_ids() {
        let root = tempdir("ids");
        let dir = StoreDir::open(&root).unwrap();
        let (shared, _) = dir.open_shared("band", SyncPolicy::EverySync).unwrap();

        let mut w = shared.pin();
        let base = w.delta_epoch();
        let musicians = w.create_baseclass("musicians").unwrap();
        let ints = w.predefined(BaseKind::Integers);
        let age = w
            .create_attribute(musicians, "age", ints, Multiplicity::Single)
            .unwrap();
        shared.commit(base, &w).unwrap();

        let mut w = shared.pin();
        let base = w.delta_epoch();
        let edith = w.insert_entity(musicians, "Edith").unwrap();
        let gone = w.insert_entity(musicians, "Gone").unwrap();
        let forty = w.intern(40i64).unwrap();
        w.assign_single(edith, age, forty).unwrap();
        w.delete_entity(gone).unwrap();
        shared.commit(base, &w).unwrap();
        let live_epoch = shared.epoch();
        drop(shared);

        let (reopened, _) = dir.open_shared("band", SyncPolicy::EverySync).unwrap();
        reopened.read(|db| {
            let musicians = db.class_by_name("musicians").unwrap();
            let edith = db.entity_by_name(musicians, "Edith").unwrap();
            let age = db.attr_by_name(musicians, "age").unwrap();
            let forty = db.find_literal(40i64).expect("40 re-interned at its slot");
            assert_eq!(db.attr_value(edith, age).unwrap(), AttrValue::Single(forty));
            assert!(db.entity_by_name(musicians, "Gone").is_err());
            assert!(db.check_consistency().unwrap().is_empty());
        });
        // Sanity: the live head had advanced past the base generation.
        assert!(live_epoch > 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn failed_fsync_vetoes_commit_and_admits_no_phantom() {
        let root = tempdir("phantom");
        let setup = StoreDir::open_with(&root, Arc::new(StdVfs::new())).unwrap();
        let (shared, _) = setup.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = shared.pin();
        let base = w.delta_epoch();
        w.create_baseclass("musicians").unwrap();
        shared.commit(base, &w).unwrap();
        drop(shared);

        // Reopen through a vfs that dies at each successive step; whatever
        // the outcome of the poisoned commit, recovery must see either the
        // pre-commit or the post-commit state — never a half commit, and
        // never a commit that was vetoed *and* survives on disk while the
        // handle keeps running.
        for step in 0..60 {
            let faulty = Arc::new(FaultVfs::crash_at(step));
            let dir = StoreDir::open_with(&root, faulty.clone());
            let attempt = dir
                .and_then(|d| d.open_shared("band", SyncPolicy::EverySync))
                .map(|(shared, _)| {
                    let mut w = shared.pin();
                    let base = w.delta_epoch();
                    let musicians = w.class_by_name("musicians").unwrap();
                    w.insert_entity(musicians, "Edith").unwrap();
                    let admitted = shared.commit(base, &w).is_ok();
                    let in_memory = shared.read(|db| db.entity_by_name(musicians, "Edith").is_ok());
                    // A vetoed commit must not be visible in memory.
                    assert_eq!(admitted, in_memory);
                    admitted
                });

            // Recover with a clean vfs: the store must hold exactly the
            // pre- or post-commit state, matching what was acknowledged
            // when the handle survived to tell us.
            let clean = StoreDir::open(&root).unwrap();
            let (db, _) = clean.recover("band").unwrap();
            let musicians = db.class_by_name("musicians").unwrap();
            let edith_on_disk = db.entity_by_name(musicians, "Edith").is_ok();
            assert!(db.check_consistency().unwrap().is_empty());
            if let Ok(admitted) = attempt {
                if admitted {
                    assert!(edith_on_disk, "admitted commit lost (step {step})");
                } else {
                    assert!(!edith_on_disk, "phantom commit admitted (step {step})");
                }
            }
            // Reset to the pre-commit state for the next fault step.
            let reset = StoreDir::open(&root).unwrap();
            let (mut db, _) = reset.recover("band").unwrap();
            if let Ok(edith) = db.entity_by_name(musicians, "Edith") {
                db.delete_entity(edith).unwrap();
            }
            reset.save(&db, "band").unwrap();
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn schema_checkpoint_crash_sweep_admits_no_silent_divergence() {
        // A schema commit takes the checkpoint-fallback path: sync the old
        // segment, install a new snapshot generation, reset the log. Crash
        // at every step of that sequence (including between the snapshot
        // install and the log reset) and check the contract:
        //
        // * an admitted schema commit is on disk after recovery;
        // * a vetoed schema commit is on disk ONLY in the documented
        //   crash-after-fsync-before-ack window — and then the hook must
        //   be poisoned, so the handle refuses to diverge further and
        //   `try_build`-style callers can see the state is suspect;
        // * recovery always lands on exactly the pre- or post-commit
        //   state, never a torn hybrid.
        let root = tempdir("schema_sweep");
        let setup = StoreDir::open_with(&root, Arc::new(StdVfs::new())).unwrap();
        let (shared, _) = setup.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = shared.pin();
        let base = w.delta_epoch();
        w.create_baseclass("musicians").unwrap();
        shared.commit(base, &w).unwrap();
        drop(shared);

        // Every iteration (and the probe below) must start from a disk
        // layout with identical byte counts, or the fault-point window
        // drifts. `reset_state` deletes any committed "venues", saves, and
        // normalises through one clean open_shared so the layout is always
        // "snapshot generation N + empty log with an N header" — only the
        // generation value differs, and it is fixed-width.
        let reset_state = |root: &PathBuf| {
            let reset = StoreDir::open(root).unwrap();
            let (mut db, _) = reset.recover("band").unwrap();
            if let Ok(venues) = db.class_by_name("venues") {
                db.delete_class(venues).unwrap();
            }
            reset.save(&db, "band").unwrap();
            drop(reset.open_shared("band", SyncPolicy::EverySync).unwrap());
        };
        reset_state(&root);

        // Locate the commit's fault-point window: count the points consumed
        // by the reopen alone versus reopen + schema commit, then sweep
        // exactly that band (a write of n bytes exposes n+1 points, so the
        // open path alone consumes hundreds — sweeping from zero would
        // never reach the checkpoint sequence).
        let probe = Arc::new(FaultVfs::counting());
        let d = StoreDir::open_with(&root, probe.clone()).unwrap();
        let (shared, _) = d.open_shared("band", SyncPolicy::EverySync).unwrap();
        let after_open = probe.steps();
        let mut w = shared.pin();
        let base = w.delta_epoch();
        w.create_baseclass("venues").unwrap();
        shared.commit(base, &w).unwrap();
        let after_commit = probe.steps();
        drop(shared);
        reset_state(&root);

        // The probe gives the window's *size*; its absolute offset can
        // drift a little between runs (fallback snapshot sizes differ by
        // a few bytes across resets), so sweep from just before the
        // probe's open boundary and stop once a crash point lands beyond
        // the whole open+commit sequence (nothing fires at all).
        let width = after_commit - after_open;
        let sweep_cap = after_commit + width + 256;
        let mut poisoned_windows = 0u32;
        let mut step = after_open.saturating_sub(2);
        while step < sweep_cap {
            let faulty = Arc::new(FaultVfs::crash_at(step));
            let attempt = StoreDir::open_with(&root, faulty.clone())
                .and_then(|d| d.open_shared("band", SyncPolicy::EverySync))
                .map(|(shared, _)| {
                    let mut w = shared.pin();
                    let base = w.delta_epoch();
                    w.create_baseclass("venues").unwrap();
                    let admitted = shared.commit(base, &w).is_ok();
                    let in_memory = shared.read(|db| db.class_by_name("venues").is_ok());
                    assert_eq!(
                        admitted, in_memory,
                        "vetoed schema commit visible (step {step})"
                    );
                    (admitted, shared.hook_poisoned())
                });

            let clean = StoreDir::open(&root).unwrap();
            let (db, _) = clean.recover("band").unwrap();
            assert!(
                db.class_by_name("musicians").is_ok(),
                "pre-existing schema lost (step {step})"
            );
            let venues_on_disk = db.class_by_name("venues").is_ok();
            assert!(db.check_consistency().unwrap().is_empty());
            let mut past_the_end = false;
            if let Ok((admitted, poisoned)) = attempt {
                if admitted {
                    assert!(venues_on_disk, "admitted schema commit lost (step {step})");
                    past_the_end = !faulty.has_crashed();
                } else if venues_on_disk {
                    // The one admissible veto-but-durable outcome: the
                    // snapshot installed and the log reset then failed.
                    // The handle must know it cannot continue.
                    assert!(
                        poisoned,
                        "vetoed schema commit on disk without poisoning (step {step})"
                    );
                    poisoned_windows += 1;
                }
            }

            // Reset to the canonical pre-commit layout for the next step.
            reset_state(&root);
            if past_the_end {
                // The crash point fell beyond the whole open+commit
                // sequence: every later step is a no-fault run.
                break;
            }
            step += 1;
        }
        // The sweep is wide enough to cross the install→reset window at
        // least once; if it never did, the test has gone stale.
        assert!(
            poisoned_windows > 0,
            "sweep never hit the checkpoint install→reset crash window"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }
}
