//! A compact, explicit binary codec.
//!
//! Everything persisted by `isis-store` goes through this module: little-
//! endian fixed-width integers, length-prefixed strings, and CRC32-guarded
//! frames. The format is deliberately hand-rolled — a database's on-disk
//! format is part of its contract, so every byte is written by code in this
//! file rather than by a derive.

use std::fmt;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), byte-at-a-time.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A length prefix or tag was out of range.
    Corrupt(String),
    /// A checksum did not match.
    ChecksumMismatch,
    /// The format version is not supported.
    BadVersion(u32),
    /// The magic bytes did not match.
    BadMagic,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only byte sink with typed writers.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far (borrowed).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an f64 by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn boolean(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes raw bytes with a length prefix.
    pub fn bytes_field(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Writes an `Option<T>` via a presence byte.
    pub fn option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Writer, &T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    /// Writes a sequence with a u32 count prefix.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Writer, &T)) {
        self.u32(items.len() as u32);
        for it in items {
            f(self, it);
        }
    }
}

/// A cursor over bytes with typed readers.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// `true` when every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// Reads an f64 by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool, rejecting bytes other than 0/1.
    pub fn boolean(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("invalid UTF-8".into()))
    }

    /// Reads a length-prefixed byte field.
    pub fn bytes_field(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        self.take(n)
    }

    /// Reads an `Option<T>`.
    pub fn option<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            b => Err(CodecError::Corrupt(format!("option byte {b}"))),
        }
    }

    /// Reads a u32-count-prefixed sequence.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let n = self.u32()? as usize;
        // Guard against hostile counts: each element takes ≥ 1 byte.
        if n > self.remaining() {
            return Err(CodecError::Corrupt(format!("sequence count {n} too large")));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Wraps a payload in a checksummed frame: `[len u32][crc u32][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Reads one frame from the front of `buf`, returning `(payload,
/// bytes_consumed)`. A torn or corrupt frame yields an error; callers
/// replaying logs treat that as end-of-log.
pub fn read_frame(buf: &[u8]) -> Result<(&[u8], usize), CodecError> {
    if buf.len() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let mut len4 = [0u8; 4];
    let mut crc4 = [0u8; 4];
    len4.copy_from_slice(&buf[0..4]);
    crc4.copy_from_slice(&buf[4..8]);
    let len = u32::from_le_bytes(len4) as usize;
    let crc = u32::from_le_bytes(crc4);
    if buf.len() < 8 + len {
        return Err(CodecError::UnexpectedEof);
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != crc {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((payload, 8 + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitive_roundtrips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(123_456);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.f64(2.5);
        w.boolean(true);
        w.string("héllo");
        w.bytes_field(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert!(r.boolean().unwrap());
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.bytes_field().unwrap(), &[1, 2, 3]);
        assert!(r.is_at_end());
    }

    #[test]
    fn options_and_seqs() {
        let mut w = Writer::new();
        w.option(&Some(9u32), |w, v| w.u32(*v));
        w.option(&None::<u32>, |w, v| w.u32(*v));
        w.seq(&[1u32, 2, 3], |w, v| w.u32(*v));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.option(|r| r.u32()).unwrap(), Some(9));
        assert_eq!(r.option(|r| r.u32()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_input_errors_not_panics() {
        let mut w = Writer::new();
        w.string("hello world");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.string().is_err());
        }
    }

    #[test]
    fn bad_bytes_rejected() {
        let mut r = Reader::new(&[2]);
        assert_eq!(
            r.boolean().unwrap_err(),
            CodecError::Corrupt("bool byte 2".into())
        );
        let mut r = Reader::new(&[5, 0, 0, 0]);
        assert!(r.option(|r| r.u8()).is_err());
        // Hostile sequence count.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
        // Invalid UTF-8.
        let mut w = Writer::new();
        w.bytes_field(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.string().is_err());
    }

    #[test]
    fn frames_roundtrip_and_detect_corruption() {
        let payload = b"the payload";
        let framed = frame(payload);
        let (got, consumed) = read_frame(&framed).unwrap();
        assert_eq!(got, payload);
        assert_eq!(consumed, framed.len());
        // Torn tail.
        assert_eq!(
            read_frame(&framed[..framed.len() - 1]).unwrap_err(),
            CodecError::UnexpectedEof
        );
        // Flipped bit.
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert_eq!(read_frame(&bad).unwrap_err(), CodecError::ChecksumMismatch);
    }
}
