//! Encoding of database images and predicates onto the [`codec`] layer.
//!
//! Every structure gets an explicit, versioned byte layout. HashMap-backed
//! attribute values are serialised in entity-id order so identical databases
//! produce identical bytes (important for snapshot diffing and tests).
//!
//! [`codec`]: crate::codec

use isis_core::{
    Atom, AttrDerivation, AttrId, AttrRecord, AttrValue, BaseKind, ClassId, ClassKind, ClassRecord,
    Clause, CompareOp, DatabaseImage, EntityId, EntityRecord, FillPattern, GroupingId,
    GroupingRecord, Literal, Map, Multiplicity, NormalForm, Operator, OrderedSet, Predicate, Rhs,
    ValueClass,
};

use crate::codec::{CodecError, Reader, Writer};

fn w_entity(w: &mut Writer, e: EntityId) {
    w.u32(e.raw());
}
fn r_entity(r: &mut Reader) -> Result<EntityId, CodecError> {
    Ok(EntityId::from_raw(r.u32()?))
}
fn w_class(w: &mut Writer, c: ClassId) {
    w.u32(c.raw());
}
fn r_class(r: &mut Reader) -> Result<ClassId, CodecError> {
    Ok(ClassId::from_raw(r.u32()?))
}
fn w_attr(w: &mut Writer, a: AttrId) {
    w.u32(a.raw());
}
fn r_attr(r: &mut Reader) -> Result<AttrId, CodecError> {
    Ok(AttrId::from_raw(r.u32()?))
}
fn w_grouping(w: &mut Writer, g: GroupingId) {
    w.u32(g.raw());
}
fn r_grouping(r: &mut Reader) -> Result<GroupingId, CodecError> {
    Ok(GroupingId::from_raw(r.u32()?))
}

fn w_set(w: &mut Writer, s: &OrderedSet) {
    let v: Vec<EntityId> = s.iter().collect();
    w.seq(&v, |w, e| w_entity(w, *e));
}
fn r_set(r: &mut Reader) -> Result<OrderedSet, CodecError> {
    Ok(r.seq(r_entity)?.into_iter().collect())
}

/// Encodes a map.
pub fn w_map(w: &mut Writer, m: &Map) {
    w.seq(m.steps(), |w, a| w_attr(w, *a));
}
/// Decodes a map.
pub fn r_map(r: &mut Reader) -> Result<Map, CodecError> {
    Ok(Map::new(r.seq(r_attr)?))
}

fn op_tag(op: CompareOp) -> u8 {
    match op {
        CompareOp::SetEq => 0,
        CompareOp::Subset => 1,
        CompareOp::Superset => 2,
        CompareOp::ProperSubset => 3,
        CompareOp::ProperSuperset => 4,
        CompareOp::Match => 5,
        CompareOp::Lt => 6,
        CompareOp::Le => 7,
        CompareOp::Gt => 8,
        CompareOp::Ge => 9,
    }
}
fn op_from_tag(t: u8) -> Result<CompareOp, CodecError> {
    Ok(match t {
        0 => CompareOp::SetEq,
        1 => CompareOp::Subset,
        2 => CompareOp::Superset,
        3 => CompareOp::ProperSubset,
        4 => CompareOp::ProperSuperset,
        5 => CompareOp::Match,
        6 => CompareOp::Lt,
        7 => CompareOp::Le,
        8 => CompareOp::Gt,
        9 => CompareOp::Ge,
        _ => return Err(CodecError::Corrupt(format!("operator tag {t}"))),
    })
}

fn w_atom(w: &mut Writer, a: &Atom) {
    w_map(w, &a.lhs);
    w.u8(op_tag(a.op.op));
    w.boolean(a.op.negated);
    match &a.rhs {
        Rhs::SelfMap(m) => {
            w.u8(0);
            w_map(w, m);
        }
        Rhs::Constant {
            class,
            anchors,
            map,
        } => {
            w.u8(1);
            w_class(w, *class);
            w_set(w, anchors);
            w_map(w, map);
        }
        Rhs::SourceMap(m) => {
            w.u8(2);
            w_map(w, m);
        }
    }
}
fn r_atom(r: &mut Reader) -> Result<Atom, CodecError> {
    let lhs = r_map(r)?;
    let op = op_from_tag(r.u8()?)?;
    let negated = r.boolean()?;
    let rhs = match r.u8()? {
        0 => Rhs::SelfMap(r_map(r)?),
        1 => Rhs::Constant {
            class: r_class(r)?,
            anchors: r_set(r)?,
            map: r_map(r)?,
        },
        2 => Rhs::SourceMap(r_map(r)?),
        t => return Err(CodecError::Corrupt(format!("rhs tag {t}"))),
    };
    Ok(Atom {
        lhs,
        op: Operator { op, negated },
        rhs,
    })
}

/// Encodes a predicate.
pub fn w_predicate(w: &mut Writer, p: &Predicate) {
    w.u8(match p.form {
        NormalForm::Dnf => 0,
        NormalForm::Cnf => 1,
    });
    w.seq(&p.clauses, |w, c| {
        w.seq(&c.atoms, w_atom);
    });
}
/// Decodes a predicate.
pub fn r_predicate(r: &mut Reader) -> Result<Predicate, CodecError> {
    let form = match r.u8()? {
        0 => NormalForm::Dnf,
        1 => NormalForm::Cnf,
        t => return Err(CodecError::Corrupt(format!("normal form tag {t}"))),
    };
    let clauses = r.seq(|r| Ok(Clause::new(r.seq(r_atom)?)))?;
    Ok(Predicate { form, clauses })
}

fn w_literal(w: &mut Writer, l: &Literal) {
    match l {
        Literal::Str(s) => {
            w.u8(0);
            w.string(s);
        }
        Literal::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Literal::Real(x) => {
            w.u8(2);
            w.f64(*x);
        }
        Literal::Bool(b) => {
            w.u8(3);
            w.boolean(*b);
        }
    }
}
fn r_literal(r: &mut Reader) -> Result<Literal, CodecError> {
    Ok(match r.u8()? {
        0 => Literal::Str(r.string()?),
        1 => Literal::Int(r.i64()?),
        2 => {
            let v = r.f64()?;
            if v.is_nan() {
                return Err(CodecError::Corrupt("NaN real".into()));
            }
            Literal::Real(v)
        }
        3 => Literal::Bool(r.boolean()?),
        t => return Err(CodecError::Corrupt(format!("literal tag {t}"))),
    })
}

fn base_kind_tag(k: BaseKind) -> u8 {
    match k {
        BaseKind::Strings => 0,
        BaseKind::Integers => 1,
        BaseKind::Reals => 2,
        BaseKind::Booleans => 3,
    }
}
fn base_kind_from_tag(t: u8) -> Result<BaseKind, CodecError> {
    Ok(match t {
        0 => BaseKind::Strings,
        1 => BaseKind::Integers,
        2 => BaseKind::Reals,
        3 => BaseKind::Booleans,
        _ => return Err(CodecError::Corrupt(format!("base kind tag {t}"))),
    })
}

fn w_class_record(w: &mut Writer, c: &ClassRecord) {
    w.string(&c.name);
    w.option(&c.parent, |w, p| w_class(w, *p));
    w_class(w, c.base);
    match &c.kind {
        ClassKind::Base(k) => {
            w.u8(0);
            w.option(&k.map(base_kind_tag), |w, t| w.u8(*t));
        }
        ClassKind::Enumerated => w.u8(1),
        ClassKind::Derived(p) => {
            w.u8(2);
            w_predicate(w, p);
        }
    }
    w.u32(c.fill.0);
    w.seq(&c.own_attrs, |w, a| w_attr(w, *a));
    w.seq(&c.children, |w, x| w_class(w, *x));
    w.seq(&c.groupings, |w, g| w_grouping(w, *g));
    w_set(w, &c.members);
    w.seq(&c.extra_parents, |w, x| w_class(w, *x));
    w.boolean(c.alive);
}
fn r_class_record(r: &mut Reader) -> Result<ClassRecord, CodecError> {
    let name = r.string()?;
    let parent = r.option(r_class)?;
    let base = r_class(r)?;
    let kind = match r.u8()? {
        0 => {
            let k = r.option(|r| r.u8())?;
            ClassKind::Base(k.map(base_kind_from_tag).transpose()?)
        }
        1 => ClassKind::Enumerated,
        2 => ClassKind::Derived(r_predicate(r)?),
        t => return Err(CodecError::Corrupt(format!("class kind tag {t}"))),
    };
    Ok(ClassRecord {
        name,
        parent,
        base,
        kind,
        fill: FillPattern(r.u32()?),
        own_attrs: r.seq(r_attr)?,
        children: r.seq(r_class)?,
        groupings: r.seq(r_grouping)?,
        members: r_set(r)?,
        extra_parents: r.seq(r_class)?,
        alive: r.boolean()?,
    })
}

fn w_attr_record(w: &mut Writer, a: &AttrRecord) {
    w.string(&a.name);
    w_class(w, a.owner);
    match a.value_class {
        ValueClass::Class(c) => {
            w.u8(0);
            w_class(w, c);
        }
        ValueClass::Grouping(g) => {
            w.u8(1);
            w_grouping(w, g);
        }
    }
    w.boolean(a.multiplicity == Multiplicity::Multi);
    w.boolean(a.naming);
    w.option(&a.derivation, |w, d| match d {
        AttrDerivation::Assign(m) => {
            w.u8(0);
            w_map(w, m);
        }
        AttrDerivation::Predicate(p) => {
            w.u8(1);
            w_predicate(w, p);
        }
    });
    // Values in entity-id order for deterministic bytes; the on-disk
    // form is layout-independent (a column round-trips through the same
    // per-entity records the old hash layout produced).
    let entries = a.values.entries_sorted();
    w.u32(entries.len() as u32);
    for (e, v) in entries {
        w_entity(w, e);
        match v {
            isis_core::ValueRef::Single(x) => {
                w.u8(0);
                w_entity(w, x);
            }
            isis_core::ValueRef::Multi(s) => {
                w.u8(1);
                w_set(w, s);
            }
        }
    }
    w.boolean(a.alive);
}
fn r_attr_record(r: &mut Reader) -> Result<AttrRecord, CodecError> {
    let name = r.string()?;
    let owner = r_class(r)?;
    let value_class = match r.u8()? {
        0 => ValueClass::Class(r_class(r)?),
        1 => ValueClass::Grouping(r_grouping(r)?),
        t => return Err(CodecError::Corrupt(format!("value class tag {t}"))),
    };
    let multiplicity = if r.boolean()? {
        Multiplicity::Multi
    } else {
        Multiplicity::Single
    };
    let naming = r.boolean()?;
    let derivation = r.option(|r| {
        Ok(match r.u8()? {
            0 => AttrDerivation::Assign(r_map(r)?),
            1 => AttrDerivation::Predicate(r_predicate(r)?),
            t => return Err(CodecError::Corrupt(format!("derivation tag {t}"))),
        })
    })?;
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(CodecError::Corrupt("value map count too large".into()));
    }
    let mut values = isis_core::AttrColumn::new();
    for _ in 0..n {
        let e = r_entity(r)?;
        let v = match r.u8()? {
            0 => AttrValue::Single(r_entity(r)?),
            1 => AttrValue::Multi(r_set(r)?),
            t => return Err(CodecError::Corrupt(format!("attr value tag {t}"))),
        };
        values.set(e, v);
    }
    Ok(AttrRecord {
        name,
        owner,
        value_class,
        multiplicity,
        naming,
        derivation,
        values,
        alive: r.boolean()?,
    })
}

fn w_grouping_record(w: &mut Writer, g: &GroupingRecord) {
    w.string(&g.name);
    w_class(w, g.parent);
    w_attr(w, g.on_attr);
    w.u32(g.fill.0);
    w.boolean(g.alive);
}
fn r_grouping_record(r: &mut Reader) -> Result<GroupingRecord, CodecError> {
    Ok(GroupingRecord {
        name: r.string()?,
        parent: r_class(r)?,
        on_attr: r_attr(r)?,
        fill: FillPattern(r.u32()?),
        alive: r.boolean()?,
    })
}

fn w_entity_record(w: &mut Writer, e: &EntityRecord) {
    w.string(&e.name);
    w_class(w, e.base);
    w.option(&e.literal, w_literal);
    w.boolean(e.alive);
}
fn r_entity_record(r: &mut Reader) -> Result<EntityRecord, CodecError> {
    Ok(EntityRecord {
        name: r.string()?,
        base: r_class(r)?,
        literal: r.option(r_literal)?,
        alive: r.boolean()?,
    })
}

fn w_constraint_record(w: &mut Writer, k: &isis_core::ConstraintRecord) {
    w.string(&k.name);
    w_class(w, k.class);
    w_predicate(w, &k.predicate);
    w.u8(match k.kind {
        isis_core::ConstraintKind::ForAll => 0,
        isis_core::ConstraintKind::Forbidden => 1,
    });
    w.boolean(k.alive);
}
fn r_constraint_record(r: &mut Reader) -> Result<isis_core::ConstraintRecord, CodecError> {
    Ok(isis_core::ConstraintRecord {
        name: r.string()?,
        class: r_class(r)?,
        predicate: r_predicate(r)?,
        kind: match r.u8()? {
            0 => isis_core::ConstraintKind::ForAll,
            1 => isis_core::ConstraintKind::Forbidden,
            t => return Err(CodecError::Corrupt(format!("constraint kind tag {t}"))),
        },
        alive: r.boolean()?,
    })
}

/// Current image format version.
pub const IMAGE_VERSION: u32 = 2;

/// Encodes a full database image (no framing; callers add the checksummed
/// frame and any file header).
pub fn encode_image(img: &DatabaseImage) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(IMAGE_VERSION);
    w.string(&img.name);
    w.seq(&img.classes, w_class_record);
    w.seq(&img.attrs, w_attr_record);
    w.seq(&img.groupings, w_grouping_record);
    w.seq(&img.entities, w_entity_record);
    w.u32(img.fill_counter);
    w.boolean(img.multi_inheritance);
    w.seq(&img.constraints, w_constraint_record);
    w.into_bytes()
}

/// Decodes a full database image. Version 1 images (pre-constraints) are
/// still readable; their constraint set is empty.
pub fn decode_image(bytes: &[u8]) -> Result<DatabaseImage, CodecError> {
    let mut r = Reader::new(bytes);
    let version = r.u32()?;
    if version == 0 || version > IMAGE_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let img = DatabaseImage {
        name: r.string()?,
        classes: r.seq(r_class_record)?,
        attrs: r.seq(r_attr_record)?,
        groupings: r.seq(r_grouping_record)?,
        entities: r.seq(r_entity_record)?,
        fill_counter: r.u32()?,
        multi_inheritance: r.boolean()?,
        constraints: if version >= 2 {
            r.seq(r_constraint_record)?
        } else {
            Vec::new()
        },
    };
    if !r.is_at_end() {
        return Err(CodecError::Corrupt("trailing bytes after image".into()));
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::Database;
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn image_roundtrip_small() {
        let db = Database::new("tiny");
        let img = db.to_image();
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn image_roundtrip_instrumental_music_with_derivations() {
        let mut im = instrumental_music().unwrap();
        // Include a committed derived class + derived attribute so
        // predicates and derivations go through the codec.
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let all_inst = im
            .db
            .create_attribute(
                quartets,
                "all_inst",
                im.instruments,
                isis_core::Multiplicity::Multi,
            )
            .unwrap();
        im.db
            .commit_derivation(all_inst, isis_sample::all_inst_derivation(&im))
            .unwrap();

        let img = im.db.to_image();
        let bytes = encode_image(&img);
        let back = decode_image(&bytes).unwrap();
        assert_eq!(back, img);
        // Deterministic bytes.
        assert_eq!(bytes, encode_image(&back));
        // And the reconstructed database behaves.
        let db2 = Database::from_image(back).unwrap();
        assert!(db2.is_consistent().unwrap());
        assert!(db2.members(quartets).unwrap().contains(im.labelle));
    }

    #[test]
    fn truncation_always_errors() {
        let db = Database::new("t");
        let bytes = encode_image(&db.to_image());
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_image(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let db = Database::new("t");
        let mut bytes = encode_image(&db.to_image());
        bytes.push(0);
        assert!(matches!(
            decode_image(&bytes).unwrap_err(),
            CodecError::Corrupt(_)
        ));
    }

    #[test]
    fn version_checked() {
        let db = Database::new("t");
        let mut bytes = encode_image(&db.to_image());
        bytes[0] = 99;
        assert_eq!(
            decode_image(&bytes).unwrap_err(),
            CodecError::BadVersion(99)
        );
    }

    #[test]
    fn predicate_roundtrip_all_shapes() {
        let mut im = instrumental_music().unwrap();
        let preds = vec![
            quartets_predicate(&mut im),
            Predicate::always_true(),
            Predicate::always_false(),
            Predicate::cnf(vec![]),
        ];
        for p in preds {
            let mut w = Writer::new();
            w_predicate(&mut w, &p);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r_predicate(&mut r).unwrap(), p);
            assert!(r.is_at_end());
        }
    }
}
