//! The virtual filesystem every byte of persistence goes through.
//!
//! All file I/O in `isis-store` — snapshot write/read, WAL append/replay,
//! checkpoint rotation, directory listing — is routed through the [`Vfs`]
//! trait so the storage engine can be run against:
//!
//! * [`StdVfs`] — the real filesystem, hardened for durability: data is
//!   fsynced before any rename publishes it, parent directories are fsynced
//!   after renames, and transient failures (`Interrupted`, `WouldBlock`)
//!   are retried under a configurable [`RetryPolicy`] with linear backoff;
//! * [`FaultVfs`] — a deterministic fault injector that can crash the
//!   "process" at any byte boundary of any write (torn writes), fail
//!   fsyncs, drop renames, flip bits, and report `ENOSPC`, driven either
//!   by an exact crash step or by a seeded pseudo-random profile. The
//!   crash-consistency suite (`tests/crash_consistency.rs`) sweeps every
//!   such fault point and asserts recovery always succeeds.
//!
//! The trait is deliberately path-based (no open handles cross the trait
//! boundary): every operation names the file it touches, which is what
//! makes exhaustive fault enumeration tractable. [`StdVfs`] keeps a small
//! append-handle cache so WAL appends do not pay an `open(2)` per record.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Filesystem operations the storage engine needs, in path-based form.
///
/// Implementations must be usable behind `Arc<dyn Vfs>` from multiple
/// threads; mutating operations act on whole files (there is no seek API),
/// which keeps fault injection exhaustive and implementations simple.
pub trait Vfs: std::fmt::Debug + Send + Sync {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes `bytes` (not yet durable —
    /// call [`Vfs::sync_file`]).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if absent.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Truncates `path` to zero length.
    fn truncate(&self, path: &Path) -> io::Result<()>;
    /// Shrinks `path` to `len` bytes and makes the shrink durable. Must
    /// never disturb the retained prefix: rolling back a failed append
    /// with a read–rewrite cycle could itself fail partway and destroy
    /// records that were already durable, so this is a primitive.
    fn truncate_to(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Forces file contents to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Forces directory metadata (entries, renames) to stable storage.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (not durable until the parent
    /// directory is synced).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// `true` if the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Length of the file in bytes.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// The entries of a directory (files only, unsorted).
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
}

/// Retry discipline for transient I/O failures in [`StdVfs`].
///
/// A transient failure is an error the kernel may resolve on its own
/// (`Interrupted`, `WouldBlock`); anything else is surfaced immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before retry `n` is `backoff * n` (linear backoff).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// No retries at all: every failure is surfaced immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match op() {
                Ok(v) => return Ok(v),
                Err(e)
                    if attempt < self.max_attempts
                        && matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
                        ) =>
                {
                    if !self.backoff.is_zero() {
                        std::thread::sleep(self.backoff * attempt);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The real filesystem, with durable-write discipline and transient-failure
/// retries.
#[derive(Debug, Default)]
pub struct StdVfs {
    retry: RetryPolicy,
    /// Cached append handles so per-record WAL appends skip `open(2)`.
    /// Invalidated whenever the same path is written, truncated, renamed,
    /// or removed through this VFS.
    append_handles: Mutex<HashMap<PathBuf, File>>,
}

impl StdVfs {
    /// A `StdVfs` with the default retry policy.
    pub fn new() -> StdVfs {
        StdVfs::default()
    }

    /// A `StdVfs` with an explicit retry policy.
    pub fn with_retry(retry: RetryPolicy) -> StdVfs {
        StdVfs {
            retry,
            append_handles: Mutex::new(HashMap::new()),
        }
    }

    /// The append-handle cache lock, poison-tolerant: the cache is only an
    /// `open(2)` memo — a thread that panicked while holding it cannot have
    /// left a half-applied state worth refusing, and the WAL hot path must
    /// degrade to an I/O error (or a reopen), never a panic.
    fn handles(&self) -> std::sync::MutexGuard<'_, HashMap<PathBuf, File>> {
        self.append_handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn drop_handle(&self, path: &Path) {
        self.handles().remove(path);
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.retry.run(|| {
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            Ok(buf)
        })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.drop_handle(path);
        self.retry.run(|| {
            let mut f = File::create(path)?;
            f.write_all(bytes)?;
            Ok(())
        })
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut handles = self.handles();
        let f = match handles.entry(path.to_path_buf()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let f = self
                    .retry
                    .run(|| OpenOptions::new().create(true).append(true).open(path))?;
                e.insert(f)
            }
        };
        let out = self.retry.run(|| f.write_all(bytes));
        if out.is_err() {
            // The handle's offset may be mid-record; never reuse it.
            handles.remove(path);
        }
        out
    }

    fn truncate(&self, path: &Path) -> io::Result<()> {
        self.drop_handle(path);
        self.retry.run(|| {
            let f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?;
            f.sync_data()
        })
    }

    fn truncate_to(&self, path: &Path, len: u64) -> io::Result<()> {
        self.drop_handle(path);
        self.retry.run(|| {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(len)?;
            f.sync_data()
        })
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        // Prefer the cached append handle (cheaper, and guarantees the
        // synced handle is the one that wrote).
        let handles = self.handles();
        if let Some(f) = handles.get(path) {
            return self.retry.run(|| f.sync_data());
        }
        drop(handles);
        self.retry.run(|| File::open(path)?.sync_data())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories for sync; POSIX needs it for
        // rename durability. Best effort elsewhere.
        #[cfg(unix)]
        {
            self.retry.run(|| File::open(dir)?.sync_all())
        }
        #[cfg(not(unix))]
        {
            let _ = dir;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        self.retry.run(|| std::fs::rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.drop_handle(path);
        self.retry.run(|| std::fs::remove_file(path))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(self.retry.run(|| std::fs::metadata(path))?.len())
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.retry.run(|| {
            let mut out = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                out.push(entry?.path());
            }
            Ok(out)
        })
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.retry.run(|| std::fs::create_dir_all(dir))
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What a [`FaultVfs`] does at each fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Inject nothing; count fault points. Use [`FaultVfs::steps`] after a
    /// run to learn how many crash points the workload exposes.
    Count,
    /// Crash at fault point `n` (0-based): the operation in flight takes
    /// partial effect (a torn write, a dropped rename, a failed fsync) and
    /// every subsequent operation fails, as after a power cut.
    CrashAt(u64),
    /// Seeded pseudo-random faults: each write/append/rename/sync rolls
    /// against [`FaultProfile`] probabilities. Deterministic per seed.
    Seeded(u64),
}

/// Per-operation fault probabilities for [`FaultMode::Seeded`], in permille
/// (0 = never, 1000 = always).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// A write or append persists only a prefix, then errors.
    pub short_write: u16,
    /// One bit of an *appended* record is flipped, silently (the write
    /// still reports success). Models bit rot / a misdirected sector in
    /// the log; snapshot writes are protected by their rename barrier.
    pub append_bit_flip: u16,
    /// `fsync` reports failure (data may or may not be durable).
    pub fsync_failure: u16,
    /// A rename is dropped (as if the crash hit before the metadata
    /// journal committed) and errors.
    pub rename_drop: u16,
    /// The device is full: the operation errors with no effect.
    pub enospc: u16,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            short_write: 30,
            append_bit_flip: 20,
            fsync_failure: 20,
            rename_drop: 15,
            enospc: 10,
        }
    }
}

/// Counters of what a [`FaultVfs`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Torn (prefix-only) writes or appends injected.
    pub short_writes: u64,
    /// Bits flipped in appended records.
    pub bit_flips: u64,
    /// fsync failures injected.
    pub fsync_failures: u64,
    /// Renames dropped.
    pub rename_drops: u64,
    /// ENOSPC errors injected.
    pub enospc: u64,
}

impl FaultStats {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.short_writes + self.bit_flips + self.fsync_failures + self.rename_drops + self.enospc
    }
}

#[derive(Debug)]
struct FaultState {
    crashed: bool,
    rng: u64,
    stats: FaultStats,
}

/// A deterministic fault-injecting [`Vfs`] wrapper.
///
/// Fault points are counted globally across all operations: every write or
/// append of `n` bytes exposes `n + 1` crash points (before any byte, and
/// after each byte — "torn writes at every byte boundary"), and each
/// rename, truncate, fsync, and remove exposes one. [`FaultMode::CrashAt`]
/// turns exactly one of those points into a crash; sweeping `0..steps`
/// therefore simulates a crash at *every* point in a workload.
#[derive(Debug)]
pub struct FaultVfs {
    inner: StdVfs,
    mode: FaultMode,
    profile: FaultProfile,
    step: AtomicU64,
    state: Mutex<FaultState>,
}

fn crashed_err() -> io::Error {
    io::Error::other("injected crash: storage is offline")
}

impl FaultVfs {
    /// Poison-tolerant access to the fault state: the injector must keep
    /// returning errors (not panics) even if a faulted thread panicked
    /// while holding the lock.
    fn fault_state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn injected(kind: &str) -> io::Error {
    io::Error::other(format!("injected fault: {kind}"))
}

impl FaultVfs {
    /// A fault VFS in the given mode over a pristine [`StdVfs`] (retries
    /// disabled so injected faults are not silently absorbed).
    pub fn new(mode: FaultMode) -> FaultVfs {
        let seed = match mode {
            FaultMode::Seeded(s) => s,
            _ => 0,
        };
        FaultVfs {
            inner: StdVfs::with_retry(RetryPolicy::none()),
            mode,
            profile: FaultProfile::default(),
            step: AtomicU64::new(0),
            state: Mutex::new(FaultState {
                crashed: false,
                // splitmix64 wants a non-zero-ish seed; any constant works.
                rng: seed ^ 0x9E37_79B9_7F4A_7C15,
                stats: FaultStats::default(),
            }),
        }
    }

    /// Count mode: see how many fault points a workload exposes.
    pub fn counting() -> FaultVfs {
        FaultVfs::new(FaultMode::Count)
    }

    /// Crash exactly at fault point `step`.
    pub fn crash_at(step: u64) -> FaultVfs {
        FaultVfs::new(FaultMode::CrashAt(step))
    }

    /// Seeded random faults with the default [`FaultProfile`].
    pub fn seeded(seed: u64) -> FaultVfs {
        FaultVfs::new(FaultMode::Seeded(seed))
    }

    /// Seeded random faults with an explicit profile.
    pub fn seeded_with(seed: u64, profile: FaultProfile) -> FaultVfs {
        let mut v = FaultVfs::new(FaultMode::Seeded(seed));
        v.profile = profile;
        v
    }

    /// Fault points consumed so far.
    pub fn steps(&self) -> u64 {
        self.step.load(Ordering::SeqCst)
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStats {
        self.fault_state().stats
    }

    /// `true` once a [`FaultMode::CrashAt`] point has fired.
    pub fn has_crashed(&self) -> bool {
        self.fault_state().crashed
    }

    fn check_crashed(&self) -> io::Result<()> {
        if self.fault_state().crashed {
            Err(crashed_err())
        } else {
            Ok(())
        }
    }

    /// Consumes `n` fault points; if the crash point falls inside, returns
    /// `Some(k)` — the number of points consumed before the crash (for a
    /// write, the number of bytes that reach the file).
    fn consume(&self, n: u64) -> Option<u64> {
        let start = self.step.fetch_add(n, Ordering::SeqCst);
        if let FaultMode::CrashAt(at) = self.mode {
            if at >= start && at < start + n {
                self.fault_state().crashed = true;
                return Some(at - start);
            }
        }
        None
    }

    /// splitmix64 step; returns a value in `0..1000` for permille rolls.
    fn roll(state: &mut FaultState) -> u64 {
        state.rng = state.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn permille(state: &mut FaultState) -> u16 {
        (Self::roll(state) % 1000) as u16
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_crashed()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_crashed()?;
        if let Some(k) = self.consume(bytes.len() as u64 + 1) {
            // Torn write: a prefix reaches the file, then the lights go out.
            let _ = self.inner.write(path, &bytes[..k as usize]);
            self.fault_state().stats.short_writes += 1;
            return Err(crashed_err());
        }
        if let FaultMode::Seeded(_) = self.mode {
            let mut st = self.fault_state();
            let roll = Self::permille(&mut st);
            if roll < self.profile.enospc {
                st.stats.enospc += 1;
                return Err(injected("ENOSPC"));
            }
            if roll < self.profile.enospc + self.profile.short_write {
                st.stats.short_writes += 1;
                let cut = (Self::roll(&mut st) as usize) % (bytes.len() + 1);
                drop(st);
                let _ = self.inner.write(path, &bytes[..cut]);
                return Err(injected("short write"));
            }
        }
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_crashed()?;
        if let Some(k) = self.consume(bytes.len() as u64 + 1) {
            let _ = self.inner.append(path, &bytes[..k as usize]);
            self.fault_state().stats.short_writes += 1;
            return Err(crashed_err());
        }
        if let FaultMode::Seeded(_) = self.mode {
            let mut st = self.fault_state();
            let roll = Self::permille(&mut st);
            if roll < self.profile.enospc {
                st.stats.enospc += 1;
                return Err(injected("ENOSPC"));
            }
            if roll < self.profile.enospc + self.profile.short_write {
                st.stats.short_writes += 1;
                let cut = (Self::roll(&mut st) as usize) % (bytes.len() + 1);
                drop(st);
                let _ = self.inner.append(path, &bytes[..cut]);
                return Err(injected("short append"));
            }
            let flip =
                self.profile.enospc + self.profile.short_write + self.profile.append_bit_flip;
            if roll < flip && !bytes.is_empty() {
                st.stats.bit_flips += 1;
                let pos = (Self::roll(&mut st) as usize) % bytes.len();
                let bit = (Self::roll(&mut st) % 8) as u8;
                drop(st);
                let mut bad = bytes.to_vec();
                bad[pos] ^= 1 << bit;
                // Silent corruption: the caller sees success.
                return self.inner.append(path, &bad);
            }
        }
        self.inner.append(path, bytes)
    }

    fn truncate(&self, path: &Path) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            return Err(crashed_err());
        }
        self.inner.truncate(path)
    }

    fn truncate_to(&self, path: &Path, len: u64) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            return Err(crashed_err());
        }
        if let FaultMode::Seeded(_) = self.mode {
            // The shrink syncs internally; model a failed sync as an
            // error with the file left intact (all-or-nothing — the
            // retained prefix is never at risk, matching `set_len`).
            let mut st = self.fault_state();
            if Self::permille(&mut st) < self.profile.fsync_failure {
                st.stats.fsync_failures += 1;
                return Err(injected("truncate fsync failure"));
            }
        }
        self.inner.truncate_to(path, len)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            // The data reached the page cache (our inner write already
            // happened); whether it is durable is the recovery suite's
            // problem. Report failure.
            self.fault_state().stats.fsync_failures += 1;
            return Err(crashed_err());
        }
        if let FaultMode::Seeded(_) = self.mode {
            let mut st = self.fault_state();
            if Self::permille(&mut st) < self.profile.fsync_failure {
                st.stats.fsync_failures += 1;
                return Err(injected("fsync failure"));
            }
        }
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            self.fault_state().stats.fsync_failures += 1;
            return Err(crashed_err());
        }
        self.inner.sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            // Dropped rename: the crash hit before the metadata committed.
            self.fault_state().stats.rename_drops += 1;
            return Err(crashed_err());
        }
        if let FaultMode::Seeded(_) = self.mode {
            let mut st = self.fault_state();
            if Self::permille(&mut st) < self.profile.rename_drop {
                st.stats.rename_drops += 1;
                return Err(injected("rename dropped"));
            }
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_crashed()?;
        if self.consume(1).is_some() {
            return Err(crashed_err());
        }
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.check_crashed()?;
        self.inner.file_len(path)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_crashed()?;
        self.inner.read_dir(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check_crashed()?;
        self.inner.create_dir_all(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_vfs_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = tempdir("std");
        let vfs = StdVfs::new();
        let p = dir.join("a.bin");
        vfs.write(&p, b"hello").unwrap();
        vfs.sync_file(&p).unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"hello");
        vfs.append(&p, b" world").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&p).unwrap(), 11);
        let q = dir.join("b.bin");
        vfs.rename(&p, &q).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert!(!vfs.exists(&p));
        assert!(vfs.exists(&q));
        // Append after rename goes to the new file, not a stale handle.
        vfs.append(&q, b"!").unwrap();
        assert_eq!(vfs.read(&q).unwrap(), b"hello world!");
        vfs.truncate(&q).unwrap();
        assert_eq!(vfs.file_len(&q).unwrap(), 0);
        let listed = vfs.read_dir(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        vfs.remove_file(&q).unwrap();
        assert!(!vfs.exists(&q));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_invalidates_append_handle() {
        let dir = tempdir("inval");
        let vfs = StdVfs::new();
        let p = dir.join("w.bin");
        vfs.append(&p, b"aaaa").unwrap();
        vfs.write(&p, b"b").unwrap();
        vfs.append(&p, b"c").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"bc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_at_tears_writes_at_exact_boundary() {
        for k in 0..=4u64 {
            let dir = tempdir(&format!("tear{k}"));
            let vfs = FaultVfs::crash_at(k);
            let p = dir.join("t.bin");
            let err = vfs.write(&p, b"abcd").unwrap_err();
            assert!(err.to_string().contains("injected crash"));
            assert!(vfs.has_crashed());
            // Exactly k bytes landed.
            let got = std::fs::read(&p).unwrap_or_default();
            assert_eq!(got.len() as u64, k, "crash point {k}");
            // Everything afterwards fails.
            assert!(vfs.read(&p).is_err());
            assert!(vfs.write(&p, b"x").is_err());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn counting_mode_counts_byte_boundaries() {
        let dir = tempdir("count");
        let vfs = FaultVfs::counting();
        let p = dir.join("c.bin");
        vfs.write(&p, b"abc").unwrap(); // 4 points
        vfs.append(&p, b"de").unwrap(); // 3 points
        vfs.sync_file(&p).unwrap(); // 1 point
        vfs.rename(&p, &dir.join("d.bin")).unwrap(); // 1 point
        assert_eq!(vfs.steps(), 9);
        assert_eq!(vfs.stats().total(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_mode_is_deterministic() {
        let profile = FaultProfile {
            short_write: 300,
            append_bit_flip: 200,
            fsync_failure: 200,
            rename_drop: 100,
            enospc: 100,
        };
        let run = |seed: u64| {
            let dir = tempdir(&format!("seed{seed}"));
            let vfs = FaultVfs::seeded_with(seed, profile);
            let p = dir.join("s.bin");
            let mut outcomes = Vec::new();
            for i in 0..40 {
                outcomes.push(vfs.append(&p, &[i as u8; 16]).is_ok());
                outcomes.push(vfs.sync_file(&p).is_ok());
            }
            let stats = vfs.stats();
            std::fs::remove_dir_all(&dir).unwrap();
            (outcomes, stats)
        };
        let (o1, s1) = run(7);
        let (o2, s2) = run(7);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
        assert!(s1.total() > 0, "profile should inject something: {s1:?}");
        let (o3, _) = run(8);
        assert_ne!(o1, o3, "different seeds should differ");
    }

    #[test]
    fn retry_policy_retries_transient_errors() {
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out: io::Result<u32> = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::from(io::ErrorKind::Interrupted))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);
        // Non-transient errors are not retried.
        let mut calls = 0;
        let out: io::Result<u32> = policy.run(|| {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::NotFound))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
