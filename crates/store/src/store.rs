//! Snapshots, the database directory, and the logged database.
//!
//! On disk a database named `N` in a [`StoreDir`] is a pair of files:
//!
//! * `N.isis` — a checksummed snapshot (magic + framed image);
//! * `N.wal`  — the write-ahead log of operations applied since.
//!
//! Opening replays `snapshot + log`; [`LoggedDatabase::checkpoint`] writes
//! a fresh snapshot (atomically, via rename) and truncates the log.

use std::fs;
use std::path::{Path, PathBuf};

use isis_core::{
    AttrDerivation, AttrId, ChangeSet, ClassId, ConstraintId, ConstraintKind, Database, EntityId,
    GroupingId, Literal, Multiplicity, Predicate, ValueClassSpec,
};

use crate::codec::{frame, read_frame, CodecError};
use crate::encode::{decode_image, encode_image};
use crate::error::StoreError;
use crate::wal::{replay_log, LogOp, SyncPolicy, WalFile};

/// Magic bytes at the start of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ISISDB\x01\x00";

/// Writes a snapshot of `db` to `path` atomically (write temp + rename).
pub fn write_snapshot(db: &Database, path: &Path) -> Result<(), StoreError> {
    let bytes = write_snapshot_bytes(db);
    let tmp = path.with_extension("isis.tmp");
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Serialises `db` to in-memory snapshot bytes (same format as the file).
pub fn write_snapshot_bytes(db: &Database) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&frame(&encode_image(&db.to_image())));
    bytes
}

/// Deserialises snapshot bytes back into a database.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Database, StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::Codec(CodecError::BadMagic));
    }
    let (payload, consumed) = read_frame(&bytes[SNAPSHOT_MAGIC.len()..])?;
    if SNAPSHOT_MAGIC.len() + consumed != bytes.len() {
        return Err(StoreError::Codec(CodecError::Corrupt(
            "trailing bytes after snapshot frame".into(),
        )));
    }
    let img = decode_image(payload)?;
    Ok(Database::from_image(img)?)
}

/// Reads a snapshot from `path`.
pub fn read_snapshot(path: &Path) -> Result<Database, StoreError> {
    let bytes = fs::read(path)?;
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::Codec(CodecError::BadMagic));
    }
    let (payload, consumed) = read_frame(&bytes[SNAPSHOT_MAGIC.len()..])?;
    if SNAPSHOT_MAGIC.len() + consumed != bytes.len() {
        return Err(StoreError::Codec(CodecError::Corrupt(
            "trailing bytes after snapshot frame".into(),
        )));
    }
    let img = decode_image(payload)?;
    Ok(Database::from_image(img)?)
}

/// A directory of named databases — ISIS's "load the database
/// Instrumental_Music … saves this new database as entertainment" (§4.2).
///
/// ```
/// use isis_store::StoreDir;
///
/// let root = std::env::temp_dir().join(format!("isis_doc_{}", std::process::id()));
/// let dir = StoreDir::open(&root)?;
/// let db = isis_core::Database::new("demo");
/// dir.save(&db, "demo")?;
/// assert_eq!(dir.list()?, vec!["demo".to_string()]);
/// let back = dir.load("demo")?;
/// assert_eq!(back.to_image(), db.to_image());
/// # std::fs::remove_dir_all(&root).unwrap();
/// # Ok::<(), isis_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
}

impl StoreDir {
    /// Opens (creating if needed) a database directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<StoreDir, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(StoreDir { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn check_name(name: &str) -> Result<(), StoreError> {
        if name.is_empty()
            || name
                .chars()
                .any(|c| !(c.is_alphanumeric() || c == '_' || c == '-' || c == ' '))
        {
            return Err(StoreError::BadName(name.into()));
        }
        Ok(())
    }

    fn snapshot_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.isis"))
    }

    fn wal_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.wal"))
    }

    /// Lists the database names present, sorted.
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("isis") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// `true` if a database of this name exists.
    pub fn exists(&self, name: &str) -> bool {
        self.snapshot_path(name).exists()
    }

    /// Saves `db` under `name` (the *save* menu command). Overwrites any
    /// existing database of that name and clears its log.
    pub fn save(&self, db: &Database, name: &str) -> Result<(), StoreError> {
        Self::check_name(name)?;
        write_snapshot(db, &self.snapshot_path(name))?;
        // A fresh snapshot supersedes any log.
        let wal = self.wal_path(name);
        if wal.exists() {
            fs::remove_file(wal)?;
        }
        Ok(())
    }

    /// Loads the database saved under `name` (snapshot only; any log is
    /// replayed too, so a crashed session's operations are recovered).
    pub fn load(&self, name: &str) -> Result<Database, StoreError> {
        Self::check_name(name)?;
        let snap = self.snapshot_path(name);
        if !snap.exists() {
            return Err(StoreError::NotFound(name.into()));
        }
        let mut db = read_snapshot(&snap)?;
        let replay = replay_log(&self.wal_path(name))?;
        for op in &replay.ops {
            op.apply(&mut db)?;
        }
        Ok(db)
    }

    /// Deletes a saved database.
    pub fn delete(&self, name: &str) -> Result<(), StoreError> {
        Self::check_name(name)?;
        let snap = self.snapshot_path(name);
        if !snap.exists() {
            return Err(StoreError::NotFound(name.into()));
        }
        fs::remove_file(snap)?;
        let wal = self.wal_path(name);
        if wal.exists() {
            fs::remove_file(wal)?;
        }
        Ok(())
    }

    /// Opens `name` as a logged database: subsequent mutations are WAL-
    /// durable and recoverable. Creates the database if absent.
    pub fn open_logged(
        &self,
        name: &str,
        policy: SyncPolicy,
    ) -> Result<LoggedDatabase, StoreError> {
        Self::check_name(name)?;
        let db = if self.exists(name) {
            self.load(name)?
        } else {
            let db = Database::new(name);
            write_snapshot(&db, &self.snapshot_path(name))?;
            db
        };
        // The replayed suffix (if any) is folded into a fresh snapshot so
        // the log can restart empty.
        write_snapshot(&db, &self.snapshot_path(name))?;
        let mut wal = WalFile::open(self.wal_path(name), policy)?;
        wal.truncate()?;
        Ok(LoggedDatabase {
            db,
            wal,
            dir: self.clone(),
            name: name.to_string(),
        })
    }
}

/// A database whose every mutation is applied in memory and appended to a
/// write-ahead log, recoverable after a crash from `snapshot + log`.
#[derive(Debug)]
pub struct LoggedDatabase {
    db: Database,
    wal: WalFile,
    dir: StoreDir,
    name: String,
}

macro_rules! logged {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* ) -> $ret:ty, $op:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, $($arg: $ty),*) -> Result<$ret, StoreError> {
            let out = {
                let db = &mut self.db;
                db.$name($($arg.clone()),*)?
            };
            #[allow(clippy::redundant_closure_call)]
            self.wal.append(&($op)($($arg),*))?;
            Ok(out)
        }
    };
}

impl LoggedDatabase {
    /// Read access to the in-memory database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The database's directory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations in the current log segment.
    pub fn log_records(&self) -> usize {
        self.wal.appended_records()
    }

    /// Writes a fresh snapshot and truncates the log.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.wal.sync()?;
        self.dir.save(&self.db, &self.name)?;
        self.wal = WalFile::open(self.dir.wal_path(&self.name), SyncPolicy::OsFlush)?;
        Ok(())
    }

    // --- logged mutations -------------------------------------------------

    logged!(
        /// Logged [`Database::create_baseclass`].
        create_baseclass(name: &str) -> ClassId,
        |name: &str| LogOp::CreateBaseclass(name.to_string())
    );
    logged!(
        /// Logged [`Database::create_subclass`].
        create_subclass(parent: ClassId, name: &str) -> ClassId,
        |parent, name: &str| LogOp::CreateSubclass(parent, name.to_string())
    );
    logged!(
        /// Logged [`Database::create_derived_subclass`].
        create_derived_subclass(parent: ClassId, name: &str) -> ClassId,
        |parent, name: &str| LogOp::CreateDerivedSubclass(parent, name.to_string())
    );
    logged!(
        /// Logged [`Database::rename_class`].
        rename_class(class: ClassId, name: &str) -> ChangeSet,
        |class, name: &str| LogOp::RenameClass(class, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_class`].
        delete_class(class: ClassId) -> ChangeSet,
        LogOp::DeleteClass
    );
    logged!(
        /// Logged [`Database::rename_attr`].
        rename_attr(attr: AttrId, name: &str) -> ChangeSet,
        |attr, name: &str| LogOp::RenameAttr(attr, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_attr`].
        delete_attr(attr: AttrId) -> ChangeSet,
        LogOp::DeleteAttr
    );
    logged!(
        /// Logged [`Database::create_grouping`].
        create_grouping(parent: ClassId, name: &str, attr: AttrId) -> GroupingId,
        |parent, name: &str, attr| LogOp::CreateGrouping(parent, name.to_string(), attr)
    );
    logged!(
        /// Logged [`Database::rename_grouping`].
        rename_grouping(grouping: GroupingId, name: &str) -> ChangeSet,
        |grouping, name: &str| LogOp::RenameGrouping(grouping, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_grouping`].
        delete_grouping(grouping: GroupingId) -> ChangeSet,
        LogOp::DeleteGrouping
    );
    logged!(
        /// Logged [`Database::insert_entity`].
        insert_entity(base: ClassId, name: &str) -> EntityId,
        |base, name: &str| LogOp::InsertEntity(base, name.to_string())
    );
    logged!(
        /// Logged [`Database::add_to_class`].
        add_to_class(entity: EntityId, class: ClassId) -> ChangeSet,
        LogOp::AddToClass
    );
    logged!(
        /// Logged [`Database::remove_from_class`].
        remove_from_class(entity: EntityId, class: ClassId) -> ChangeSet,
        LogOp::RemoveFromClass
    );
    logged!(
        /// Logged [`Database::delete_entity`].
        delete_entity(entity: EntityId) -> ChangeSet,
        LogOp::DeleteEntity
    );
    logged!(
        /// Logged [`Database::rename_entity`].
        rename_entity(entity: EntityId, name: &str) -> ChangeSet,
        |entity, name: &str| LogOp::RenameEntity(entity, name.to_string())
    );
    logged!(
        /// Logged [`Database::assign_single`].
        assign_single(entity: EntityId, attr: AttrId, value: EntityId) -> ChangeSet,
        LogOp::AssignSingle
    );
    logged!(
        /// Logged [`Database::add_value`].
        add_value(entity: EntityId, attr: AttrId, value: EntityId) -> ChangeSet,
        LogOp::AddValue
    );
    logged!(
        /// Logged [`Database::unassign`].
        unassign(entity: EntityId, attr: AttrId) -> ChangeSet,
        LogOp::Unassign
    );
    logged!(
        /// Logged [`Database::refresh_derived_class`].
        refresh_derived_class(class: ClassId) -> usize,
        LogOp::RefreshDerivedClass
    );
    logged!(
        /// Logged [`Database::refresh_derived_attr`].
        refresh_derived_attr(attr: AttrId) -> usize,
        LogOp::RefreshDerivedAttr
    );
    logged!(
        /// Logged [`Database::add_secondary_parent`].
        add_secondary_parent(class: ClassId, parent: ClassId) -> ChangeSet,
        LogOp::AddSecondaryParent
    );

    /// Logged [`Database::create_attribute`].
    pub fn create_attribute(
        &mut self,
        class: ClassId,
        name: &str,
        value_class: impl Into<ValueClassSpec>,
        multiplicity: Multiplicity,
    ) -> Result<AttrId, StoreError> {
        let vc = value_class.into();
        let id = self.db.create_attribute(class, name, vc, multiplicity)?;
        self.wal.append(&LogOp::CreateAttribute(
            class,
            name.to_string(),
            vc,
            multiplicity,
        ))?;
        Ok(id)
    }

    /// Logged [`Database::respecify_value_class`].
    pub fn respecify_value_class(
        &mut self,
        attr: AttrId,
        value_class: impl Into<ValueClassSpec>,
    ) -> Result<ChangeSet, StoreError> {
        let vc = value_class.into();
        let cs = self.db.respecify_value_class(attr, vc)?;
        self.wal.append(&LogOp::RespecifyValueClass(attr, vc))?;
        Ok(cs)
    }

    /// Logged [`Database::assign_multi`].
    pub fn assign_multi(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        values: impl IntoIterator<Item = EntityId>,
    ) -> Result<ChangeSet, StoreError> {
        let values: Vec<EntityId> = values.into_iter().collect();
        let cs = self.db.assign_multi(entity, attr, values.iter().copied())?;
        self.wal.append(&LogOp::AssignMulti(entity, attr, values))?;
        Ok(cs)
    }

    /// Logged [`Database::intern`].
    pub fn intern(&mut self, lit: impl Into<Literal>) -> Result<EntityId, StoreError> {
        let lit = lit.into();
        let id = self.db.intern(lit.clone())?;
        self.wal.append(&LogOp::Intern(lit))?;
        Ok(id)
    }

    /// Logged [`Database::commit_membership`].
    pub fn commit_membership(
        &mut self,
        class: ClassId,
        pred: Predicate,
    ) -> Result<usize, StoreError> {
        let n = self.db.commit_membership(class, pred.clone())?;
        self.wal.append(&LogOp::CommitMembership(class, pred))?;
        Ok(n)
    }

    /// Logged [`Database::commit_derivation`].
    pub fn commit_derivation(
        &mut self,
        attr: AttrId,
        derivation: AttrDerivation,
    ) -> Result<usize, StoreError> {
        let n = self.db.commit_derivation(attr, derivation.clone())?;
        self.wal
            .append(&LogOp::CommitDerivation(attr, derivation))?;
        Ok(n)
    }

    /// Logged [`Database::create_constraint`].
    pub fn create_constraint(
        &mut self,
        name: &str,
        class: ClassId,
        predicate: Predicate,
        kind: ConstraintKind,
    ) -> Result<ConstraintId, StoreError> {
        let id = self
            .db
            .create_constraint(name, class, predicate.clone(), kind)?;
        self.wal.append(&LogOp::CreateConstraint(
            name.to_string(),
            class,
            predicate,
            kind,
        ))?;
        Ok(id)
    }

    /// Logged [`Database::delete_constraint`].
    pub fn delete_constraint(&mut self, id: ConstraintId) -> Result<(), StoreError> {
        self.db.delete_constraint(id)?;
        self.wal.append(&LogOp::DeleteConstraint(id))?;
        Ok(())
    }

    /// Logged [`Database::enable_multiple_inheritance`].
    pub fn enable_multiple_inheritance(&mut self) -> Result<(), StoreError> {
        self.db.enable_multiple_inheritance();
        self.wal.append(&LogOp::EnableMultipleInheritance)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::BaseKind;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_store_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build_sample(db: &mut LoggedDatabase) -> (ClassId, ClassId, AttrId, EntityId, EntityId) {
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let e = db.insert_entity(m, "Edith").unwrap();
        let v = db.insert_entity(i, "viola").unwrap();
        db.assign_multi(e, plays, [v]).unwrap();
        (m, i, plays, e, v)
    }

    #[test]
    fn snapshot_save_load_roundtrip() {
        let root = tempdir("roundtrip");
        let dir = StoreDir::open(&root).unwrap();
        let mut im = isis_sample::instrumental_music().unwrap();
        im.db.int(4);
        dir.save(&im.db, "Instrumental_Music").unwrap();
        assert!(dir.exists("Instrumental_Music"));
        assert_eq!(dir.list().unwrap(), vec!["Instrumental_Music".to_string()]);
        let back = dir.load("Instrumental_Music").unwrap();
        assert_eq!(back.to_image(), im.db.to_image());
        // Saving under a new name (the session's "entertainment").
        dir.save(&back, "entertainment").unwrap();
        assert_eq!(dir.list().unwrap().len(), 2);
        dir.delete("entertainment").unwrap();
        assert!(!dir.exists("entertainment"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_missing_fails() {
        let root = tempdir("missing");
        let dir = StoreDir::open(&root).unwrap();
        assert!(matches!(dir.load("nope"), Err(StoreError::NotFound(_))));
        assert!(matches!(dir.delete("nope"), Err(StoreError::NotFound(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_names_rejected() {
        let root = tempdir("badname");
        let dir = StoreDir::open(&root).unwrap();
        let db = Database::new("x");
        assert!(matches!(dir.save(&db, ""), Err(StoreError::BadName(_))));
        assert!(matches!(
            dir.save(&db, "../evil"),
            Err(StoreError::BadName(_))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_snapshot_detected() {
        let root = tempdir("corrupt");
        let dir = StoreDir::open(&root).unwrap();
        let db = Database::new("c");
        dir.save(&db, "c").unwrap();
        let path = root.join("c.isis");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(dir.load("c"), Err(StoreError::Codec(_))));
        // Bad magic.
        std::fs::write(&path, b"NOTADB").unwrap();
        assert!(matches!(
            dir.load("c"),
            Err(StoreError::Codec(CodecError::BadMagic))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn logged_database_recovers_after_crash() {
        let root = tempdir("crashrec");
        let dir = StoreDir::open(&root).unwrap();
        let image_before;
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
            let four = db.intern(Literal::Int(4)).unwrap();
            let m = db.database().class_by_name("musicians").unwrap();
            let ints = db.database().predefined(BaseKind::Integers);
            let age = db
                .create_attribute(m, "age", ints, Multiplicity::Single)
                .unwrap();
            let e = db.database().entity_by_name(m, "Edith").unwrap();
            db.assign_single(e, age, four).unwrap();
            image_before = db.database().to_image();
            // Simulate a crash: drop without checkpoint.
        }
        // Reopen: snapshot (empty) + log replay must reproduce the state.
        let recovered = dir.load("work").unwrap();
        assert_eq!(recovered.to_image(), image_before);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_persists() {
        let root = tempdir("ckpt");
        let dir = StoreDir::open(&root).unwrap();
        let mut db = dir.open_logged("work", SyncPolicy::OsFlush).unwrap();
        build_sample(&mut db);
        assert!(db.log_records() > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.log_records(), 0);
        let image = db.database().to_image();
        drop(db);
        let wal_len = std::fs::metadata(root.join("work.wal")).unwrap().len();
        assert_eq!(wal_len, 0);
        assert_eq!(dir.load("work").unwrap().to_image(), image);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_log_tail_loses_only_last_op() {
        let root = tempdir("tornlog");
        let dir = StoreDir::open(&root).unwrap();
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
        }
        // Tear the final record.
        let wal_path = root.join("work.wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();
        let recovered = dir.load("work").unwrap();
        // Everything except the torn final assign_multi survived.
        let m = recovered.class_by_name("musicians").unwrap();
        let e = recovered.entity_by_name(m, "Edith").unwrap();
        let plays = recovered.attr_by_name(m, "plays").unwrap();
        assert!(recovered.attr_value_set(e, plays).unwrap().is_empty());
        assert!(recovered.is_consistent().unwrap());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_logged_folds_replay_into_snapshot() {
        let root = tempdir("fold");
        let dir = StoreDir::open(&root).unwrap();
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
        }
        // Second open folds the log into the snapshot and truncates.
        let db2 = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
        assert_eq!(std::fs::metadata(root.join("work.wal")).unwrap().len(), 0);
        let m = db2.database().class_by_name("musicians").unwrap();
        assert!(db2.database().entity_by_name(m, "Edith").is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejected_ops_are_not_logged() {
        let root = tempdir("reject");
        let dir = StoreDir::open(&root).unwrap();
        let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
        db.create_baseclass("musicians").unwrap();
        let before = db.log_records();
        assert!(db.create_baseclass("musicians").is_err());
        assert_eq!(db.log_records(), before);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
