//! Snapshots, the database directory, and the logged database.
//!
//! On disk a database named `N` in a [`StoreDir`] is a family of files:
//!
//! * `N.isis`   — the newest checksummed snapshot (magic + framed
//!   generation + image);
//! * `N.isis.1` — the previous snapshot generation, kept as a fallback so
//!   a corrupted newest snapshot is recoverable;
//! * `N.wal`    — the write-ahead log of operations applied since the
//!   snapshot generation named in its header record.
//!
//! Opening replays `snapshot + log`; [`LoggedDatabase::checkpoint`] writes
//! a fresh snapshot (atomically: temp file, fsync, rotate, rename, fsync
//! of the directory) and restarts the log under the new generation. All
//! I/O goes through a [`Vfs`], so the crash-consistency suite can inject
//! faults at every byte boundary and recovery
//! ([`StoreDir::recover`](StoreDir::recover)) can be proven total.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use isis_core::{
    AttrDerivation, AttrId, ChangeSet, ClassId, ConstraintId, ConstraintKind, Database, EntityId,
    GroupingId, Literal, Multiplicity, Predicate, ValueClassSpec,
};

use crate::codec::{frame, read_frame, CodecError};
use crate::encode::{decode_image, encode_image};
use crate::error::StoreError;
use crate::recovery::RecoveryReport;
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{replay_with, LogOp, SyncPolicy, WalFile};

/// Magic bytes at the start of a snapshot file (format version 2: the
/// CRC-protected frame payload is the u64 LE snapshot generation followed
/// by the image bytes).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ISISDB\x02\x00";

/// Writes a snapshot of `db` to `path` atomically and durably (write temp,
/// fsync, rename, fsync the parent directory).
pub fn write_snapshot(db: &Database, path: &Path) -> Result<(), StoreError> {
    install_snapshot(&StdVfs::new(), path, &write_snapshot_bytes(db))
}

/// Serialises `db` to in-memory snapshot bytes (same format as the file;
/// generation 0).
pub fn write_snapshot_bytes(db: &Database) -> Vec<u8> {
    snapshot_bytes_with_gen(db, 0)
}

/// Serialises `db` to snapshot bytes under an explicit generation. The
/// generation sits *inside* the checksummed frame, so a flipped generation
/// byte is detected like any other corruption.
pub fn snapshot_bytes_with_gen(db: &Database, generation: u64) -> Vec<u8> {
    let image = encode_image(&db.to_image());
    let mut payload = Vec::with_capacity(image.len() + 8);
    payload.extend_from_slice(&generation.to_le_bytes());
    payload.extend_from_slice(&image);
    let mut bytes = Vec::with_capacity(payload.len() + 16);
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&frame(&payload));
    bytes
}

/// Deserialises snapshot bytes back into a database plus the generation
/// they were written under.
pub fn read_snapshot_bytes_gen(bytes: &[u8]) -> Result<(Database, u64), StoreError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() {
        return Err(StoreError::Codec(CodecError::BadMagic));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != *SNAPSHOT_MAGIC {
        // A well-formed header with a different version byte is version
        // skew, not garbage.
        if bytes[..6] == SNAPSHOT_MAGIC[..6] && bytes[7] == 0 {
            return Err(StoreError::Codec(CodecError::BadVersion(bytes[6] as u32)));
        }
        return Err(StoreError::Codec(CodecError::BadMagic));
    }
    let (payload, consumed) = read_frame(&bytes[SNAPSHOT_MAGIC.len()..])?;
    if SNAPSHOT_MAGIC.len() + consumed != bytes.len() {
        return Err(StoreError::Codec(CodecError::Corrupt(
            "trailing bytes after snapshot frame".into(),
        )));
    }
    if payload.len() < 8 {
        return Err(StoreError::Codec(CodecError::Corrupt(
            "snapshot payload shorter than its generation".into(),
        )));
    }
    let mut gen8 = [0u8; 8];
    gen8.copy_from_slice(&payload[..8]);
    let img = decode_image(&payload[8..])?;
    Ok((Database::from_image(img)?, u64::from_le_bytes(gen8)))
}

/// Deserialises snapshot bytes back into a database.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Database, StoreError> {
    read_snapshot_bytes_gen(bytes).map(|(db, _)| db)
}

/// Reads a snapshot from `path`.
pub fn read_snapshot(path: &Path) -> Result<Database, StoreError> {
    read_snapshot_bytes(&std::fs::read(path)?)
}

/// The generation of the snapshot in `bytes`, if it validates.
fn peek_generation(bytes: &[u8]) -> Option<u64> {
    read_snapshot_bytes_gen(bytes).ok().map(|(_, g)| g)
}

/// Writes `bytes` to `path` atomically and durably through `vfs`.
fn install_snapshot(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("isis.tmp");
    vfs.write(&tmp, bytes)?;
    vfs.sync_file(&tmp)?;
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            vfs.sync_dir(parent)?;
        }
    }
    Ok(())
}

/// A directory of named databases — ISIS's "load the database
/// Instrumental_Music … saves this new database as entertainment" (§4.2).
///
/// ```
/// use isis_store::StoreDir;
///
/// let root = std::env::temp_dir().join(format!("isis_doc_{}", std::process::id()));
/// let dir = StoreDir::open(&root)?;
/// let db = isis_core::Database::new("demo");
/// dir.save(&db, "demo")?;
/// assert_eq!(dir.list()?, vec!["demo".to_string()]);
/// let back = dir.load("demo")?;
/// assert_eq!(back.to_image(), db.to_image());
/// # std::fs::remove_dir_all(&root).unwrap();
/// # Ok::<(), isis_store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StoreDir {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl StoreDir {
    /// Opens (creating if needed) a database directory on the real
    /// filesystem.
    pub fn open(root: impl Into<PathBuf>) -> Result<StoreDir, StoreError> {
        StoreDir::open_with(root, Arc::new(StdVfs::new()))
    }

    /// Opens (creating if needed) a database directory through an explicit
    /// [`Vfs`] — a [`FaultVfs`](crate::FaultVfs) turns every operation on
    /// this directory into a potential fault point.
    pub fn open_with(root: impl Into<PathBuf>, vfs: Arc<dyn Vfs>) -> Result<StoreDir, StoreError> {
        let root = root.into();
        vfs.create_dir_all(&root)?;
        Ok(StoreDir { root, vfs })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The VFS every byte of this directory's I/O goes through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    pub(crate) fn check_name(name: &str) -> Result<(), StoreError> {
        if name.is_empty()
            || name
                .chars()
                .any(|c| !(c.is_alphanumeric() || c == '_' || c == '-' || c == ' '))
        {
            return Err(StoreError::BadName(name.into()));
        }
        Ok(())
    }

    pub(crate) fn snapshot_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.isis"))
    }

    pub(crate) fn fallback_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.isis.1"))
    }

    pub(crate) fn wal_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.wal"))
    }

    /// Lists the database names present, sorted. (Fallback generations
    /// `*.isis.1` and temp files do not add names.)
    pub fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for path in self.vfs.read_dir(&self.root)? {
            if path.extension().and_then(|e| e.to_str()) == Some("isis") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// `true` if a database of this name exists (either generation — a
    /// crash between the two checkpoint renames leaves only the fallback).
    pub fn exists(&self, name: &str) -> bool {
        self.vfs.exists(&self.snapshot_path(name)) || self.vfs.exists(&self.fallback_path(name))
    }

    /// The next unused snapshot generation for `name`: one past everything
    /// on disk, so a stale log can never be mistaken for the new
    /// generation's.
    pub(crate) fn next_generation(&self, name: &str) -> u64 {
        let mut newest = 0;
        for path in [self.snapshot_path(name), self.fallback_path(name)] {
            if let Ok(bytes) = self.vfs.read(&path) {
                if let Some(g) = peek_generation(&bytes) {
                    newest = newest.max(g);
                }
            }
        }
        if let Ok(replay) = replay_with(self.vfs.as_ref(), &self.wal_path(name), false) {
            if let Some(g) = replay.snapshot_gen {
                newest = newest.max(g);
            }
        }
        newest + 1
    }

    /// Installs snapshot `bytes` as the newest generation of `name`:
    /// temp-write + fsync, optionally rotate the current newest to the
    /// fallback slot, rename into place, fsync the directory after each
    /// rename. With `rotate == false` the current newest is overwritten in
    /// place and the existing fallback survives — used when the newest was
    /// itself unreadable and the fallback is the only good copy.
    pub(crate) fn install(&self, name: &str, bytes: &[u8], rotate: bool) -> Result<(), StoreError> {
        let snap = self.snapshot_path(name);
        let tmp = snap.with_extension("isis.tmp");
        self.vfs.write(&tmp, bytes)?;
        self.vfs.sync_file(&tmp)?;
        if rotate && self.vfs.exists(&snap) {
            self.vfs.rename(&snap, &self.fallback_path(name))?;
            self.vfs.sync_dir(&self.root)?;
        }
        self.vfs.rename(&tmp, &snap)?;
        self.vfs.sync_dir(&self.root)?;
        Ok(())
    }

    /// Saves `db` under `name` (the *save* menu command). Overwrites any
    /// existing database of that name and supersedes its log; the previous
    /// snapshot (if any) is kept as the fallback generation.
    pub fn save(&self, db: &Database, name: &str) -> Result<(), StoreError> {
        let _span = isis_obs::global().span("store.snapshot.save");
        Self::check_name(name)?;
        let generation = self.next_generation(name);
        self.install(name, &snapshot_bytes_with_gen(db, generation), true)?;
        // Any log on disk now names an older generation and is skipped on
        // recovery; removing it is just tidiness.
        let wal = self.wal_path(name);
        if self.vfs.exists(&wal) {
            self.vfs.remove_file(&wal)?;
        }
        Ok(())
    }

    /// Loads the database saved under `name`: the newest readable snapshot
    /// generation plus its log suffix (see [`StoreDir::recover`] for the
    /// report-returning variant).
    pub fn load(&self, name: &str) -> Result<Database, StoreError> {
        self.recover(name).map(|(db, _)| db)
    }

    /// Deletes a saved database (all generations and the log).
    pub fn delete(&self, name: &str) -> Result<(), StoreError> {
        Self::check_name(name)?;
        if !self.exists(name) {
            return Err(StoreError::NotFound(name.into()));
        }
        for path in [
            self.snapshot_path(name),
            self.fallback_path(name),
            self.wal_path(name),
        ] {
            if self.vfs.exists(&path) {
                self.vfs.remove_file(&path)?;
            }
        }
        Ok(())
    }

    /// Opens `name` as a logged database: subsequent mutations are WAL-
    /// durable and recoverable. Creates the database if absent. Whatever
    /// recovery had to do to get here is in the returned handle's
    /// [`recovery_report`](LoggedDatabase::recovery_report).
    pub fn open_logged(
        &self,
        name: &str,
        policy: SyncPolicy,
    ) -> Result<LoggedDatabase, StoreError> {
        Self::check_name(name)?;
        let (db, report) = if self.exists(name) {
            self.recover(name)?
        } else {
            (Database::new(name), RecoveryReport::fresh(name))
        };
        // Fold the replayed suffix (if any) into a fresh snapshot
        // generation so the log can restart empty. When recovery fell back
        // to the previous generation, the newest slot holds the corrupt
        // file — overwrite it and keep the good fallback.
        let generation = self.next_generation(name);
        let rotate = !report.used_fallback;
        self.install(name, &snapshot_bytes_with_gen(&db, generation), rotate)?;
        let mut wal = WalFile::open_with(self.vfs.clone(), self.wal_path(name), policy)?;
        wal.reset(generation)?;
        Ok(LoggedDatabase {
            db,
            wal,
            dir: self.clone(),
            name: name.to_string(),
            generation,
            report,
        })
    }
}

/// A database whose every mutation is applied in memory and appended to a
/// write-ahead log, recoverable after a crash from `snapshot + log`.
#[derive(Debug)]
pub struct LoggedDatabase {
    db: Database,
    wal: WalFile,
    dir: StoreDir,
    name: String,
    generation: u64,
    report: RecoveryReport,
}

macro_rules! logged {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* ) -> $ret:ty, $op:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, $($arg: $ty),*) -> Result<$ret, StoreError> {
            let out = {
                let db = &mut self.db;
                db.$name($($arg.clone()),*)?
            };
            #[allow(clippy::redundant_closure_call)]
            self.wal.append(&($op)($($arg),*))?;
            Ok(out)
        }
    };
}

impl LoggedDatabase {
    /// Opens `name` in `dir` as a logged database (an alias for
    /// [`StoreDir::open_logged`] that reads better at call sites).
    pub fn open(
        dir: &StoreDir,
        name: &str,
        policy: SyncPolicy,
    ) -> Result<LoggedDatabase, StoreError> {
        dir.open_logged(name, policy)
    }

    /// Read access to the in-memory database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The database's directory name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The snapshot generation the current log segment extends.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// What recovery found and did when this handle was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Number of operations in the current log segment.
    pub fn log_records(&self) -> usize {
        self.wal.appended_records()
    }

    /// Writes a fresh snapshot generation and restarts the log under it.
    ///
    /// The sequence is crash-safe at every step: sync the log (so the old
    /// generation stays fully recoverable), install the new snapshot
    /// (temp + fsync + rotate + rename + directory fsync), then reset the
    /// log with the new generation's header. A crash before the final
    /// rename recovers the old generation plus its complete log; a crash
    /// after it recovers the new snapshot and skips the stale log.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let obs = isis_obs::global();
        let _span = obs.span("store.checkpoint.run");
        self.wal.sync()?;
        let generation = self.generation + 1;
        let bytes = snapshot_bytes_with_gen(&self.db, generation);
        obs.count("store.checkpoint.runs", 1);
        obs.count("store.checkpoint.snapshot_bytes", bytes.len() as u64);
        self.dir.install(&self.name, &bytes, true)?;
        self.wal.reset(generation)?;
        self.generation = generation;
        Ok(())
    }

    // --- logged mutations -------------------------------------------------

    logged!(
        /// Logged [`Database::create_baseclass`].
        create_baseclass(name: &str) -> ClassId,
        |name: &str| LogOp::CreateBaseclass(name.to_string())
    );
    logged!(
        /// Logged [`Database::create_subclass`].
        create_subclass(parent: ClassId, name: &str) -> ClassId,
        |parent, name: &str| LogOp::CreateSubclass(parent, name.to_string())
    );
    logged!(
        /// Logged [`Database::create_derived_subclass`].
        create_derived_subclass(parent: ClassId, name: &str) -> ClassId,
        |parent, name: &str| LogOp::CreateDerivedSubclass(parent, name.to_string())
    );
    logged!(
        /// Logged [`Database::rename_class`].
        rename_class(class: ClassId, name: &str) -> ChangeSet,
        |class, name: &str| LogOp::RenameClass(class, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_class`].
        delete_class(class: ClassId) -> ChangeSet,
        LogOp::DeleteClass
    );
    logged!(
        /// Logged [`Database::rename_attr`].
        rename_attr(attr: AttrId, name: &str) -> ChangeSet,
        |attr, name: &str| LogOp::RenameAttr(attr, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_attr`].
        delete_attr(attr: AttrId) -> ChangeSet,
        LogOp::DeleteAttr
    );
    logged!(
        /// Logged [`Database::create_grouping`].
        create_grouping(parent: ClassId, name: &str, attr: AttrId) -> GroupingId,
        |parent, name: &str, attr| LogOp::CreateGrouping(parent, name.to_string(), attr)
    );
    logged!(
        /// Logged [`Database::rename_grouping`].
        rename_grouping(grouping: GroupingId, name: &str) -> ChangeSet,
        |grouping, name: &str| LogOp::RenameGrouping(grouping, name.to_string())
    );
    logged!(
        /// Logged [`Database::delete_grouping`].
        delete_grouping(grouping: GroupingId) -> ChangeSet,
        LogOp::DeleteGrouping
    );
    logged!(
        /// Logged [`Database::insert_entity`].
        insert_entity(base: ClassId, name: &str) -> EntityId,
        |base, name: &str| LogOp::InsertEntity(base, name.to_string())
    );
    logged!(
        /// Logged [`Database::add_to_class`].
        add_to_class(entity: EntityId, class: ClassId) -> ChangeSet,
        LogOp::AddToClass
    );
    logged!(
        /// Logged [`Database::remove_from_class`].
        remove_from_class(entity: EntityId, class: ClassId) -> ChangeSet,
        LogOp::RemoveFromClass
    );
    logged!(
        /// Logged [`Database::delete_entity`].
        delete_entity(entity: EntityId) -> ChangeSet,
        LogOp::DeleteEntity
    );
    logged!(
        /// Logged [`Database::rename_entity`].
        rename_entity(entity: EntityId, name: &str) -> ChangeSet,
        |entity, name: &str| LogOp::RenameEntity(entity, name.to_string())
    );
    logged!(
        /// Logged [`Database::assign_single`].
        assign_single(entity: EntityId, attr: AttrId, value: EntityId) -> ChangeSet,
        LogOp::AssignSingle
    );
    logged!(
        /// Logged [`Database::add_value`].
        add_value(entity: EntityId, attr: AttrId, value: EntityId) -> ChangeSet,
        LogOp::AddValue
    );
    logged!(
        /// Logged [`Database::unassign`].
        unassign(entity: EntityId, attr: AttrId) -> ChangeSet,
        LogOp::Unassign
    );
    logged!(
        /// Logged [`Database::refresh_derived_class`].
        refresh_derived_class(class: ClassId) -> usize,
        LogOp::RefreshDerivedClass
    );
    logged!(
        /// Logged [`Database::refresh_derived_attr`].
        refresh_derived_attr(attr: AttrId) -> usize,
        LogOp::RefreshDerivedAttr
    );
    logged!(
        /// Logged [`Database::add_secondary_parent`].
        add_secondary_parent(class: ClassId, parent: ClassId) -> ChangeSet,
        LogOp::AddSecondaryParent
    );

    /// Logged [`Database::create_attribute`].
    pub fn create_attribute(
        &mut self,
        class: ClassId,
        name: &str,
        value_class: impl Into<ValueClassSpec>,
        multiplicity: Multiplicity,
    ) -> Result<AttrId, StoreError> {
        let vc = value_class.into();
        let id = self.db.create_attribute(class, name, vc, multiplicity)?;
        self.wal.append(&LogOp::CreateAttribute(
            class,
            name.to_string(),
            vc,
            multiplicity,
        ))?;
        Ok(id)
    }

    /// Logged [`Database::respecify_value_class`].
    pub fn respecify_value_class(
        &mut self,
        attr: AttrId,
        value_class: impl Into<ValueClassSpec>,
    ) -> Result<ChangeSet, StoreError> {
        let vc = value_class.into();
        let cs = self.db.respecify_value_class(attr, vc)?;
        self.wal.append(&LogOp::RespecifyValueClass(attr, vc))?;
        Ok(cs)
    }

    /// Logged [`Database::assign_multi`].
    pub fn assign_multi(
        &mut self,
        entity: EntityId,
        attr: AttrId,
        values: impl IntoIterator<Item = EntityId>,
    ) -> Result<ChangeSet, StoreError> {
        let values: Vec<EntityId> = values.into_iter().collect();
        let cs = self.db.assign_multi(entity, attr, values.iter().copied())?;
        self.wal.append(&LogOp::AssignMulti(entity, attr, values))?;
        Ok(cs)
    }

    /// Logged [`Database::intern`].
    pub fn intern(&mut self, lit: impl Into<Literal>) -> Result<EntityId, StoreError> {
        let lit = lit.into();
        let id = self.db.intern(lit.clone())?;
        self.wal.append(&LogOp::Intern(lit))?;
        Ok(id)
    }

    /// Logged [`Database::commit_membership`].
    pub fn commit_membership(
        &mut self,
        class: ClassId,
        pred: Predicate,
    ) -> Result<usize, StoreError> {
        let n = self.db.commit_membership(class, pred.clone())?;
        self.wal.append(&LogOp::CommitMembership(class, pred))?;
        Ok(n)
    }

    /// Logged [`Database::commit_derivation`].
    pub fn commit_derivation(
        &mut self,
        attr: AttrId,
        derivation: AttrDerivation,
    ) -> Result<usize, StoreError> {
        let n = self.db.commit_derivation(attr, derivation.clone())?;
        self.wal
            .append(&LogOp::CommitDerivation(attr, derivation))?;
        Ok(n)
    }

    /// Logged [`Database::create_constraint`].
    pub fn create_constraint(
        &mut self,
        name: &str,
        class: ClassId,
        predicate: Predicate,
        kind: ConstraintKind,
    ) -> Result<ConstraintId, StoreError> {
        let id = self
            .db
            .create_constraint(name, class, predicate.clone(), kind)?;
        self.wal.append(&LogOp::CreateConstraint(
            name.to_string(),
            class,
            predicate,
            kind,
        ))?;
        Ok(id)
    }

    /// Logged [`Database::delete_constraint`].
    pub fn delete_constraint(&mut self, id: ConstraintId) -> Result<(), StoreError> {
        self.db.delete_constraint(id)?;
        self.wal.append(&LogOp::DeleteConstraint(id))?;
        Ok(())
    }

    /// Logged [`Database::enable_multiple_inheritance`].
    pub fn enable_multiple_inheritance(&mut self) -> Result<(), StoreError> {
        self.db.enable_multiple_inheritance();
        self.wal.append(&LogOp::EnableMultipleInheritance)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::replay_log;
    use isis_core::BaseKind;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_store_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build_sample(db: &mut LoggedDatabase) -> (ClassId, ClassId, AttrId, EntityId, EntityId) {
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let e = db.insert_entity(m, "Edith").unwrap();
        let v = db.insert_entity(i, "viola").unwrap();
        db.assign_multi(e, plays, [v]).unwrap();
        (m, i, plays, e, v)
    }

    #[test]
    fn snapshot_save_load_roundtrip() {
        let root = tempdir("roundtrip");
        let dir = StoreDir::open(&root).unwrap();
        let mut im = isis_sample::instrumental_music().unwrap();
        im.db.int(4);
        dir.save(&im.db, "Instrumental_Music").unwrap();
        assert!(dir.exists("Instrumental_Music"));
        assert_eq!(dir.list().unwrap(), vec!["Instrumental_Music".to_string()]);
        let back = dir.load("Instrumental_Music").unwrap();
        assert_eq!(back.to_image(), im.db.to_image());
        // Saving under a new name (the session's "entertainment").
        dir.save(&back, "entertainment").unwrap();
        assert_eq!(dir.list().unwrap().len(), 2);
        dir.delete("entertainment").unwrap();
        assert!(!dir.exists("entertainment"));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn load_missing_fails() {
        let root = tempdir("missing");
        let dir = StoreDir::open(&root).unwrap();
        assert!(matches!(dir.load("nope"), Err(StoreError::NotFound(_))));
        assert!(matches!(dir.delete("nope"), Err(StoreError::NotFound(_))));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn bad_names_rejected() {
        let root = tempdir("badname");
        let dir = StoreDir::open(&root).unwrap();
        let db = Database::new("x");
        assert!(matches!(dir.save(&db, ""), Err(StoreError::BadName(_))));
        assert!(matches!(
            dir.save(&db, "../evil"),
            Err(StoreError::BadName(_))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupted_snapshot_detected() {
        let root = tempdir("corrupt");
        let dir = StoreDir::open(&root).unwrap();
        let db = Database::new("c");
        dir.save(&db, "c").unwrap();
        let path = root.join("c.isis");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(dir.load("c"), Err(StoreError::Codec(_))));
        // Bad magic.
        std::fs::write(&path, b"NOTADB").unwrap();
        assert!(matches!(
            dir.load("c"),
            Err(StoreError::Codec(CodecError::BadMagic))
        ));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unsupported_snapshot_version_reported_as_such() {
        let db = Database::new("v");
        let mut bytes = write_snapshot_bytes(&db);
        bytes[6] = 0x7F;
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(StoreError::Codec(CodecError::BadVersion(0x7F)))
        ));
    }

    #[test]
    fn snapshot_generation_roundtrips() {
        let db = Database::new("g");
        let bytes = snapshot_bytes_with_gen(&db, 42);
        let (back, generation) = read_snapshot_bytes_gen(&bytes).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(back.to_image(), db.to_image());
    }

    #[test]
    fn logged_database_recovers_after_crash() {
        let root = tempdir("crashrec");
        let dir = StoreDir::open(&root).unwrap();
        let image_before;
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
            let four = db.intern(Literal::Int(4)).unwrap();
            let m = db.database().class_by_name("musicians").unwrap();
            let ints = db.database().predefined(BaseKind::Integers);
            let age = db
                .create_attribute(m, "age", ints, Multiplicity::Single)
                .unwrap();
            let e = db.database().entity_by_name(m, "Edith").unwrap();
            db.assign_single(e, age, four).unwrap();
            image_before = db.database().to_image();
            // Simulate a crash: drop without checkpoint.
        }
        // Reopen: snapshot (empty) + log replay must reproduce the state.
        let recovered = dir.load("work").unwrap();
        assert_eq!(recovered.to_image(), image_before);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn checkpoint_truncates_log_and_persists() {
        let root = tempdir("ckpt");
        let dir = StoreDir::open(&root).unwrap();
        let mut db = dir.open_logged("work", SyncPolicy::OsFlush).unwrap();
        build_sample(&mut db);
        assert!(db.log_records() > 0);
        let gen_before = db.generation();
        db.checkpoint().unwrap();
        assert_eq!(db.log_records(), 0);
        assert_eq!(db.generation(), gen_before + 1);
        let image = db.database().to_image();
        drop(db);
        // The log holds only the new generation's header: no operations.
        let replay = replay_log(&root.join("work.wal")).unwrap();
        assert!(replay.ops.is_empty());
        assert!(!replay.torn_tail);
        assert_eq!(replay.snapshot_gen, Some(gen_before + 1));
        assert_eq!(dir.load("work").unwrap().to_image(), image);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_log_tail_loses_only_last_op() {
        let root = tempdir("tornlog");
        let dir = StoreDir::open(&root).unwrap();
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
        }
        // Tear the final record.
        let wal_path = root.join("work.wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();
        let recovered = dir.load("work").unwrap();
        // Everything except the torn final assign_multi survived.
        let m = recovered.class_by_name("musicians").unwrap();
        let e = recovered.entity_by_name(m, "Edith").unwrap();
        let plays = recovered.attr_by_name(m, "plays").unwrap();
        assert!(recovered.attr_value_set(e, plays).unwrap().is_empty());
        assert!(recovered.is_consistent().unwrap());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_logged_folds_replay_into_snapshot() {
        let root = tempdir("fold");
        let dir = StoreDir::open(&root).unwrap();
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
        }
        // Second open folds the log into the snapshot and restarts it.
        let db2 = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
        let replay = replay_log(&root.join("work.wal")).unwrap();
        assert!(replay.ops.is_empty());
        assert!(!replay.torn_tail);
        let m = db2.database().class_by_name("musicians").unwrap();
        assert!(db2.database().entity_by_name(m, "Edith").is_ok());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recover_falls_back_to_previous_generation() {
        let root = tempdir("fallback");
        let dir = StoreDir::open(&root).unwrap();
        let checkpointed_image;
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
            db.checkpoint().unwrap();
            checkpointed_image = db.database().to_image();
        }
        // The checkpoint rotated the open-time snapshot into the fallback
        // slot. Corrupt the newest generation.
        let snap = root.join("work.isis");
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        let (db, report) = dir.recover("work").unwrap();
        assert!(report.used_fallback);
        assert_eq!(report.snapshot_errors.len(), 1);
        // The stale (empty) log of the new generation was skipped; the
        // fallback is the open-time fold, i.e. the pre-build_sample state.
        assert!(db.is_consistent().unwrap());
        assert!(!report.is_pristine());
        // Reopening heals the newest slot: a fresh fold replaces the
        // corrupt file, after which recovery is pristine again.
        drop(dir.open_logged("work", SyncPolicy::EverySync).unwrap());
        let (healed, report2) = dir.recover("work").unwrap();
        assert!(report2.is_pristine());
        assert!(healed.is_consistent().unwrap());
        let _ = checkpointed_image;
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_wal_is_skipped_after_save() {
        let root = tempdir("stale");
        let dir = StoreDir::open(&root).unwrap();
        {
            let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
            build_sample(&mut db);
        }
        // Keep the old log around; save a fresh database over the name.
        let wal = std::fs::read(root.join("work.wal")).unwrap();
        let fresh = Database::new("work");
        dir.save(&fresh, "work").unwrap();
        std::fs::write(root.join("work.wal"), &wal).unwrap();
        // The resurrected log names the old generation: skipped, reported.
        let (db, report) = dir.recover("work").unwrap();
        assert!(report.wal_stale);
        assert_eq!(report.wal_records_replayed, 0);
        assert_eq!(db.to_image(), fresh.to_image());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejected_ops_are_not_logged() {
        let root = tempdir("reject");
        let dir = StoreDir::open(&root).unwrap();
        let mut db = dir.open_logged("work", SyncPolicy::EverySync).unwrap();
        db.create_baseclass("musicians").unwrap();
        let before = db.log_records();
        assert!(db.create_baseclass("musicians").is_err());
        assert_eq!(db.log_records(), before);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
