//! Error type for the storage engine.

use std::fmt;

use crate::codec::CodecError;
use isis_core::CoreError;

/// Errors raised by snapshots, the WAL, and the database directory.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O failure.
    Io(std::io::Error),
    /// A decoding failure (corruption, version skew).
    Codec(CodecError),
    /// A replayed operation was rejected by the engine.
    Core(CoreError),
    /// The requested database does not exist in the directory.
    NotFound(String),
    /// A database with this name already exists.
    AlreadyExists(String),
    /// The name is not usable as a file stem.
    BadName(String),
    /// Every snapshot generation of a database failed to load.
    Recovery {
        /// The database name.
        name: String,
        /// The per-generation failures, joined for display.
        detail: String,
    },
    /// An earlier partial failure left the handle unable to guarantee that
    /// disk and memory agree; every further operation is refused until the
    /// store is reopened.
    Poisoned {
        /// The database name.
        name: String,
        /// What failed, and why the handle cannot continue.
        detail: String,
    },
    /// The replication stream is inconsistent: a shipped frame was
    /// rejected, a replica ran ahead of its primary, or a checkpoint did
    /// not match the generation it claimed.
    Replication {
        /// The database name.
        name: String,
        /// What the ship/replay path observed.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Core(e) => write!(f, "engine error: {e}"),
            StoreError::NotFound(n) => write!(f, "database not found: {n:?}"),
            StoreError::AlreadyExists(n) => write!(f, "database already exists: {n:?}"),
            StoreError::BadName(n) => write!(f, "bad database name: {n:?}"),
            StoreError::Recovery { name, detail } => {
                write!(f, "recovery of {name:?} failed: {detail}")
            }
            StoreError::Poisoned { name, detail } => {
                write!(f, "store handle for {name:?} is poisoned: {detail}")
            }
            StoreError::Replication { name, detail } => {
                write!(f, "replication of {name:?} inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = StoreError::from(CodecError::ChecksumMismatch);
        assert!(e.to_string().contains("codec"));
        assert!(e.source().is_some());
        assert!(StoreError::NotFound("x".into()).source().is_none());
    }
}
