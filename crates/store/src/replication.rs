//! Primary→replica log shipping over WAL [`LogOp::CommitBatch`] frames.
//!
//! A primary opened with [`StoreDir::open_shared`] already writes every
//! admitted data commit as one atomic `CommitBatch` frame and every schema
//! commit as a full snapshot checkpoint (a new generation). This module
//! turns that on-disk stream into replication:
//!
//! * [`ReplicationLog`] reads the primary's directory and answers "what
//!   does a replica at [`ShipCursor`] still need?" — either the next
//!   commit frames of the cursor's generation, or (when the cursor's
//!   generation has been superseded by a checkpoint, a schema commit, or a
//!   primary restart) a full snapshot to resync from. Shipping is
//!   strictly ordered: a frame is only ever shipped after every frame
//!   before it, so a replica is always an exact *prefix* of the primary's
//!   committed history.
//! * [`Replica`] replays shipped frames into its own [`SharedDatabase`]
//!   and its own directory: each applied frame is appended verbatim to
//!   the replica's WAL *before* the in-memory head advances, so the
//!   replica's durable state and its shipping cursor can never disagree —
//!   the cursor is re-derived from `snapshot generation + WAL frame
//!   count` on reopen rather than trusted from a side file. Read-only
//!   sessions pin the replica's head at its applied epoch; direct commits
//!   to a replica are vetoed by its hook.
//! * [`ReplicaStatus`] reports lag in ship ordinals: `applied_epoch` is
//!   the replica's monotone count of applied frames (a pending checkpoint
//!   resync counts as one), `head_epoch` projects the primary's position
//!   onto the same counter, `lag` is the difference.
//!
//! Everything is in-process and path-based — the "wire" is the primary's
//! directory read through its [`Vfs`](crate::Vfs) — which is exactly what
//! the torture harness wants: every ship and replay step can be crashed,
//! torn, or failed deterministically.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use isis_core::{ChangeSet, CommitHook, Database, SharedDatabase};

use crate::codec::{frame, read_frame};
use crate::error::StoreError;
use crate::recovery::RecoveryReport;
use crate::store::{read_snapshot_bytes_gen, StoreDir};
use crate::wal::{replay_with, LogOp, SyncPolicy, WalFile};

/// Magic bytes of the replica's ship-meta file payload (`N.ship`): these 8
/// bytes followed by the u64 (LE) ship ordinal at the start of the current
/// replica segment. The meta is advisory — losing it resets the ordinal
/// display, never correctness, because the cursor itself is derived from
/// the replica's snapshot generation and WAL frame count.
const SHIP_MAGIC: &[u8; 8] = b"ISISSHP\x01";

/// A durable position in a primary's replication stream: `frames` commit
/// frames applied on top of snapshot generation `generation`. Positions
/// are totally ordered by `(generation, frames)`; a generation uniquely
/// identifies a folded snapshot, so equal cursors name identical states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShipCursor {
    /// The snapshot generation the position belongs to.
    pub generation: u64,
    /// Commit frames applied within that generation.
    pub frames: u64,
}

impl ShipCursor {
    /// The position of a replica that has never been bootstrapped.
    pub fn genesis() -> ShipCursor {
        ShipCursor {
            generation: 0,
            frames: 0,
        }
    }
}

/// What one [`ReplicationLog::ship`] call hands a replica.
#[derive(Debug)]
pub enum Shipment {
    /// The replica holds everything the primary has made durable.
    UpToDate,
    /// The next commit frames of the cursor's generation, in commit
    /// order. Each element is one atomic frame (one admitted commit).
    Frames(Vec<LogOp>),
    /// The cursor's generation was superseded (schema checkpoint or
    /// primary restart): install this snapshot and continue from
    /// `(generation, 0)`.
    Checkpoint {
        /// The generation the snapshot encodes.
        generation: u64,
        /// The raw snapshot bytes, installable verbatim.
        snapshot: Vec<u8>,
    },
}

/// The primary side of log shipping: a read-only view over a database's
/// directory that serves commit frames and resync checkpoints to any
/// number of replicas. Opening one is cheap; it holds no file handles and
/// no locks — every call re-reads the primary's current on-disk state, so
/// it observes exactly what a crash would leave behind.
#[derive(Debug, Clone)]
pub struct ReplicationLog {
    dir: StoreDir,
    name: String,
}

impl ReplicationLog {
    /// A replication log over database `name` in `dir` (the primary's
    /// directory). The database need not exist yet; shipping from an
    /// absent primary reports [`StoreError::NotFound`].
    pub fn open(dir: &StoreDir, name: &str) -> Result<ReplicationLog, StoreError> {
        StoreDir::check_name(name)?;
        Ok(ReplicationLog {
            dir: dir.clone(),
            name: name.to_string(),
        })
    }

    /// The database name this log ships.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The newest readable snapshot: its generation and raw bytes.
    fn newest_snapshot(&self) -> Result<(u64, Vec<u8>), StoreError> {
        let vfs = self.dir.vfs();
        let mut errors = Vec::new();
        for path in [
            self.dir.snapshot_path(&self.name),
            self.dir.fallback_path(&self.name),
        ] {
            if !vfs.exists(&path) {
                continue;
            }
            match vfs
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|bytes| read_snapshot_bytes_gen(&bytes).map(|(_, g)| (g, bytes)))
            {
                Ok(found) => return Ok(found),
                Err(e) => errors.push(format!("{}: {e}", path.display())),
            }
        }
        if errors.is_empty() {
            Err(StoreError::NotFound(self.name.clone()))
        } else {
            Err(StoreError::Recovery {
                name: self.name.clone(),
                detail: errors.join("; "),
            })
        }
    }

    /// Ships what a replica at `cursor` needs next, at most `max_frames`
    /// commit frames per call. Strictly ordered: frames arrive in commit
    /// order with no gaps, so anything a replica applies is a prefix of
    /// the primary's durable history.
    ///
    /// A cursor *ahead* of the primary's durable state (a replica that
    /// applied frames the primary has since lost) is a typed
    /// [`StoreError::Replication`] error, never silently rewound.
    pub fn ship(&self, cursor: &ShipCursor, max_frames: usize) -> Result<Shipment, StoreError> {
        let obs = isis_obs::global();
        let _span = obs.span("store.replication.ship");
        let replay = replay_with(
            self.dir.vfs().as_ref(),
            &self.dir.wal_path(&self.name),
            false,
        )?;
        if replay.snapshot_gen == Some(cursor.generation) && cursor.generation != 0 {
            // Steady state: the cursor's segment is the live one.
            let have = replay.ops.len() as u64;
            if cursor.frames > have {
                return Err(self.ahead_error(cursor, have));
            }
            if cursor.frames == have {
                return Ok(Shipment::UpToDate);
            }
            let frames: Vec<LogOp> = replay
                .ops
                .into_iter()
                .skip(cursor.frames as usize)
                .take(max_frames.max(1))
                .collect();
            obs.count("store.replication.frames_shipped", frames.len() as u64);
            return Ok(Shipment::Frames(frames));
        }
        // The cursor's segment is gone (schema checkpoint, primary
        // restart, or a never-bootstrapped replica): resync from the
        // newest snapshot.
        let (generation, snapshot) = self.newest_snapshot()?;
        match generation.cmp(&cursor.generation) {
            std::cmp::Ordering::Greater => {
                obs.count("store.replication.checkpoints_shipped", 1);
                Ok(Shipment::Checkpoint {
                    generation,
                    snapshot,
                })
            }
            std::cmp::Ordering::Equal if cursor.frames == 0 => Ok(Shipment::UpToDate),
            _ => Err(self.ahead_error(cursor, 0)),
        }
    }

    /// Commit frames the primary holds beyond `cursor` — the replica's
    /// lag in ship ordinals. A pending checkpoint resync counts as one,
    /// plus whatever frames follow it in the new segment.
    pub fn outstanding(&self, cursor: &ShipCursor) -> Result<u64, StoreError> {
        let replay = replay_with(
            self.dir.vfs().as_ref(),
            &self.dir.wal_path(&self.name),
            false,
        )?;
        if replay.snapshot_gen == Some(cursor.generation) && cursor.generation != 0 {
            let have = replay.ops.len() as u64;
            if cursor.frames > have {
                return Err(self.ahead_error(cursor, have));
            }
            return Ok(have - cursor.frames);
        }
        let (generation, _) = self.newest_snapshot()?;
        match generation.cmp(&cursor.generation) {
            std::cmp::Ordering::Greater => {
                let new_segment = if replay.snapshot_gen == Some(generation) {
                    replay.ops.len() as u64
                } else {
                    0
                };
                Ok(1 + new_segment)
            }
            std::cmp::Ordering::Equal if cursor.frames == 0 => Ok(0),
            _ => Err(self.ahead_error(cursor, 0)),
        }
    }

    fn ahead_error(&self, cursor: &ShipCursor, have: u64) -> StoreError {
        StoreError::Replication {
            name: self.name.clone(),
            detail: format!(
                "replica cursor at generation {} frame {} is ahead of the primary's durable \
                 state ({} frame(s) in its segment) — the primary lost acknowledged commits \
                 or the replica belongs to another history",
                cursor.generation, cursor.frames, have
            ),
        }
    }
}

/// Explicit lag accounting for one replica against its primary, in ship
/// ordinals (monotone counts of applied commit frames; a checkpoint
/// resync counts as one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Frames the replica has applied since it was bootstrapped.
    pub applied_epoch: u64,
    /// The primary's position projected onto the replica's counter:
    /// `applied_epoch` plus everything still outstanding.
    pub head_epoch: u64,
    /// `head_epoch - applied_epoch`: commit frames (plus any pending
    /// checkpoint jump) the replica has not yet applied.
    pub lag: u64,
}

impl ReplicaStatus {
    /// `true` if the replica holds everything the primary has made
    /// durable.
    pub fn caught_up(&self) -> bool {
        self.lag == 0
    }
}

/// The hook a replica's [`SharedDatabase`] carries: replicas are
/// read-only for everyone but the replayer, so any session commit against
/// a replica head is vetoed.
#[derive(Debug)]
struct ReplicaGuard {
    gate: Arc<AtomicBool>,
}

impl CommitHook for ReplicaGuard {
    fn on_commit(&mut self, _db: &Database, _applied: &ChangeSet) -> Result<(), String> {
        if self.gate.load(Ordering::SeqCst) {
            Ok(())
        } else {
            Err("replica is read-only: its state is replayed from the primary's log".into())
        }
    }
}

/// A replica: a [`SharedDatabase`] whose head is advanced only by
/// replaying frames shipped from a primary, backed by its own directory
/// so that everything it has acknowledged survives its own crashes.
///
/// Durability discipline: each shipped frame is appended verbatim to the
/// replica's WAL (and fsynced under [`SyncPolicy::EverySync`]) *before*
/// the in-memory head advances; a checkpoint resync installs the shipped
/// snapshot with the same temp-write → fsync → rename sequence the
/// primary uses. On [`Replica::open`] the cursor is re-derived from the
/// snapshot generation plus the replayed frame count — there is no window
/// in which the durable state and the cursor can disagree.
///
/// Read-only sessions open on [`Replica::shared`] and pin the applied
/// epoch like any other [`SharedDatabase`] reader; their commits are
/// vetoed by the replica's hook.
#[derive(Debug)]
pub struct Replica {
    dir: StoreDir,
    name: String,
    shared: SharedDatabase,
    wal: WalFile,
    cursor: ShipCursor,
    /// Monotone count of frames applied since bootstrap (checkpoint
    /// resyncs count as one). Persisted advisorily in the ship meta.
    ordinal: u64,
    gate: Arc<AtomicBool>,
    poisoned: bool,
}

impl Replica {
    /// Opens (or creates) the replica of `name` living in `dir` — the
    /// *replica's* directory, never the primary's. A fresh replica starts
    /// at [`ShipCursor::genesis`] and bootstraps from the first shipped
    /// checkpoint. An existing replica recovers strictly: its newest
    /// readable snapshot plus every intact frame of its own WAL, with no
    /// salvage skipping — a replica that cannot replay a middle frame is
    /// diverged ([`StoreError::Replication`]) rather than silently holed.
    pub fn open(
        dir: &StoreDir,
        name: &str,
        policy: SyncPolicy,
    ) -> Result<(Replica, RecoveryReport), StoreError> {
        StoreDir::check_name(name)?;
        let obs = isis_obs::global();
        let _span = obs.span("store.replication.replica_open");
        let vfs = dir.vfs().clone();
        let gate = Arc::new(AtomicBool::new(false));
        if !dir.exists(name) {
            let shared = SharedDatabase::new(Database::new(name));
            shared.set_commit_hook(Some(Box::new(ReplicaGuard { gate: gate.clone() })));
            let wal = WalFile::open_with(vfs, dir.wal_path(name), policy)?;
            let replica = Replica {
                dir: dir.clone(),
                name: name.to_string(),
                shared,
                wal,
                cursor: ShipCursor::genesis(),
                ordinal: 0,
                gate,
                poisoned: false,
            };
            return Ok((replica, RecoveryReport::fresh(name)));
        }

        // Newest readable snapshot generation (fallback only when the
        // newest is unreadable — a crashed checkpoint install).
        let mut snapshot_errors = Vec::new();
        let mut loaded = None;
        let mut used_fallback = false;
        for (path, is_fallback) in [
            (dir.snapshot_path(name), false),
            (dir.fallback_path(name), true),
        ] {
            if !vfs.exists(&path) {
                continue;
            }
            match vfs
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|bytes| read_snapshot_bytes_gen(&bytes))
            {
                Ok(found) => {
                    loaded = Some(found);
                    used_fallback = is_fallback;
                    break;
                }
                Err(e) => snapshot_errors.push(format!("{}: {e}", path.display())),
            }
        }
        let Some((mut db, generation)) = loaded else {
            return Err(StoreError::Recovery {
                name: name.into(),
                detail: snapshot_errors.join("; "),
            });
        };

        // Strict replay of the replica's own log: every intact frame, in
        // order, no salvage. A torn tail is a crashed append of a frame
        // that was never acknowledged — dropped and re-shipped.
        let replay = replay_with(vfs.as_ref(), &dir.wal_path(name), false)?;
        let wal_stale = replay.snapshot_gen != Some(generation);
        let mut frames = 0u64;
        if !wal_stale {
            for op in &replay.ops {
                if let Err(e) = op.apply(&mut db) {
                    return Err(StoreError::Replication {
                        name: name.into(),
                        detail: format!("replica frame {frames} rejected on recovery: {e}"),
                    });
                }
                frames += 1;
            }
        }
        let mut wal = WalFile::open_with(vfs.clone(), dir.wal_path(name), policy)?;
        if wal_stale {
            // The log belongs to another generation (a crashed resync):
            // re-tie it to the snapshot that actually loaded.
            wal.reset(generation)?;
        } else if replay.torn_tail {
            // Drop the torn frame so future appends stay reachable.
            wal.rewind_to(replay.valid_bytes as u64)?;
        }

        let ordinal_base = read_ship_meta(vfs.as_ref(), &ship_path(dir, name)).unwrap_or(0);
        let report = RecoveryReport {
            name: name.to_string(),
            snapshot_generation: generation,
            used_fallback,
            snapshot_errors,
            wal_records_replayed: frames as usize,
            wal_records_rejected: 0,
            wal_bytes_skipped: 0,
            wal_resyncs: 0,
            wal_torn_tail: !wal_stale && replay.torn_tail,
            wal_stale,
        };
        let shared = SharedDatabase::new(db);
        shared.set_commit_hook(Some(Box::new(ReplicaGuard { gate: gate.clone() })));
        let replica = Replica {
            dir: dir.clone(),
            name: name.to_string(),
            shared,
            wal,
            cursor: ShipCursor { generation, frames },
            ordinal: ordinal_base + frames,
            gate,
            poisoned: false,
        };
        Ok((replica, report))
    }

    /// The shared handle read-only sessions open on. Pins taken here are
    /// snapshots at the replica's applied epoch; commits against it are
    /// vetoed.
    pub fn shared(&self) -> &SharedDatabase {
        &self.shared
    }

    /// Pins the replica's applied state (a read snapshot).
    pub fn pin(&self) -> Database {
        self.shared.pin()
    }

    /// The replica's position in the primary's stream.
    pub fn cursor(&self) -> ShipCursor {
        self.cursor
    }

    /// Frames applied since bootstrap (the replica-side ship ordinal).
    pub fn applied_epoch(&self) -> u64 {
        self.ordinal
    }

    /// The database name this replica mirrors.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `true` if a partial failure left this handle unable to guarantee
    /// its WAL and its head agree; reopen the replica to re-derive a
    /// consistent state from disk.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Lag accounting against `log` without applying anything.
    pub fn status(&self, log: &ReplicationLog) -> Result<ReplicaStatus, StoreError> {
        let outstanding = log.outstanding(&self.cursor)?;
        Ok(ReplicaStatus {
            applied_epoch: self.ordinal,
            head_epoch: self.ordinal + outstanding,
            lag: outstanding,
        })
    }

    /// Applies at most one shipment (up to `max_frames` commit frames, or
    /// one checkpoint resync) from `log`, then reports status. The
    /// granular sibling of [`Replica::sync`], for callers that interleave
    /// catch-up with reads.
    pub fn sync_step(
        &mut self,
        log: &ReplicationLog,
        max_frames: usize,
    ) -> Result<ReplicaStatus, StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned {
                name: self.name.clone(),
                detail: "replica poisoned by an earlier partial failure; reopen it".into(),
            });
        }
        let obs = isis_obs::global();
        let _span = obs.span("store.replication.sync");
        let (kind, applied) = match log.ship(&self.cursor, max_frames)? {
            Shipment::UpToDate => ("up_to_date", 0usize),
            Shipment::Frames(frames) => {
                let n = frames.len();
                for op in frames {
                    self.apply_frame(op)?;
                }
                ("frames", n)
            }
            Shipment::Checkpoint {
                generation,
                snapshot,
            } => {
                self.install_checkpoint(generation, snapshot)?;
                ("checkpoint", 1)
            }
        };
        let status = self.status(log)?;
        obs.gauge("store.replication.lag", status.lag as i64);
        if obs.enabled() {
            obs.gauge(
                "store.replication.applied_epoch",
                status.applied_epoch as i64,
            );
            obs.gauge("store.replication.head_epoch", status.head_epoch as i64);
            let (applied_epoch, lag) = (status.applied_epoch, status.lag);
            obs.flight_event("store.replication.ship", || {
                isis_obs::Json::obj([
                    ("kind", isis_obs::Json::from(kind)),
                    ("applied", isis_obs::Json::from(applied)),
                    ("applied_epoch", isis_obs::Json::from(applied_epoch)),
                    ("lag", isis_obs::Json::from(lag)),
                ])
            });
        }
        Ok(status)
    }

    /// Catches up fully: applies shipments until the primary reports
    /// [`Shipment::UpToDate`], then reports status (lag 0 unless the
    /// primary committed while we were applying).
    pub fn sync(&mut self, log: &ReplicationLog) -> Result<ReplicaStatus, StoreError> {
        const BATCH: usize = 64;
        loop {
            let before = (self.cursor, self.ordinal);
            let status = self.sync_step(log, BATCH)?;
            if status.caught_up() || (self.cursor, self.ordinal) == before {
                return Ok(status);
            }
        }
    }

    /// One shipped frame: validate against the applied state, append to
    /// the replica's own WAL (write-ahead), then advance the in-memory
    /// head. Acknowledged ⇔ recoverable, exactly like the primary.
    fn apply_frame(&mut self, op: LogOp) -> Result<(), StoreError> {
        let obs = isis_obs::global();
        let _span = obs.span("store.replication.replay");
        let mut local = self.shared.pin();
        let base = local.delta_epoch();
        if let Err(e) = op.apply(&mut local) {
            return Err(StoreError::Replication {
                name: self.name.clone(),
                detail: format!(
                    "shipped frame {} of generation {} rejected: {e}",
                    self.cursor.frames, self.cursor.generation
                ),
            });
        }
        let mark = self.wal.len()?;
        if let Err(e) = self.wal.append(&op) {
            if let Err(r) = self.wal.rewind_to(mark) {
                self.poisoned = true;
                return Err(StoreError::Poisoned {
                    name: self.name.clone(),
                    detail: format!("frame append failed ({e}) and rollback failed ({r})"),
                });
            }
            return Err(e);
        }
        self.gate.store(true, Ordering::SeqCst);
        let committed = self.shared.commit(base, &local);
        self.gate.store(false, Ordering::SeqCst);
        if let Err(c) = committed {
            // The frame is durable but the head refused to move — someone
            // committed to the replica head behind our back. Disk and
            // memory now disagree; refuse to continue (reopen re-derives
            // a consistent head from disk).
            self.poisoned = true;
            return Err(StoreError::Poisoned {
                name: self.name.clone(),
                detail: format!("replica head moved during replay: {c}"),
            });
        }
        self.cursor.frames += 1;
        self.ordinal += 1;
        obs.count("store.replication.frames_applied", 1);
        Ok(())
    }

    /// A full resync: durably install the shipped snapshot, restart the
    /// replica's WAL on the new generation, and swap the in-memory head.
    /// Existing reader pins keep their old snapshots; new pins see the
    /// resynced state.
    fn install_checkpoint(&mut self, generation: u64, snapshot: Vec<u8>) -> Result<(), StoreError> {
        let obs = isis_obs::global();
        let _span = obs.span("store.replication.checkpoint");
        let (db, encoded) = read_snapshot_bytes_gen(&snapshot)?;
        if encoded != generation {
            return Err(StoreError::Replication {
                name: self.name.clone(),
                detail: format!(
                    "checkpoint claims generation {generation} but its snapshot encodes {encoded}"
                ),
            });
        }
        if generation <= self.cursor.generation {
            return Err(StoreError::Replication {
                name: self.name.clone(),
                detail: format!(
                    "checkpoint generation {generation} does not advance the replica \
                     (already at generation {})",
                    self.cursor.generation
                ),
            });
        }
        self.dir.install(&self.name, &snapshot, true)?;
        let next_ordinal = self.ordinal + 1;
        // Advisory ordinal meta; the cursor itself derives from the
        // installed snapshot + (about-to-be-reset) WAL. If anything from
        // here on fails, a reopen finds snapshot `generation` with a
        // stale log and lands on cursor `(generation, 0)` — exactly where
        // this resync was headed.
        write_ship_meta(&self.dir, &self.name, next_ordinal)?;
        if let Err(e) = self.wal.reset(generation) {
            // The log may now be headerless; further appends would be
            // unrecoverable, so stop until a reopen re-ties it.
            self.poisoned = true;
            return Err(StoreError::Poisoned {
                name: self.name.clone(),
                detail: format!("replica log reset after checkpoint failed: {e}"),
            });
        }
        self.shared.install_head(db);
        self.cursor = ShipCursor {
            generation,
            frames: 0,
        };
        self.ordinal = next_ordinal;
        obs.count("store.replication.checkpoints_installed", 1);
        Ok(())
    }
}

fn ship_path(dir: &StoreDir, name: &str) -> PathBuf {
    dir.root().join(format!("{name}.ship"))
}

fn write_ship_meta(dir: &StoreDir, name: &str, ordinal: u64) -> Result<(), StoreError> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(SHIP_MAGIC);
    payload.extend_from_slice(&ordinal.to_le_bytes());
    let path = ship_path(dir, name);
    dir.vfs().write(&path, &frame(&payload))?;
    dir.vfs().sync_file(&path)?;
    Ok(())
}

fn read_ship_meta(vfs: &dyn crate::Vfs, path: &std::path::Path) -> Option<u64> {
    let bytes = vfs.read(path).ok()?;
    let (payload, _) = read_frame(&bytes).ok()?;
    if payload.len() != 16 || &payload[..8] != SHIP_MAGIC {
        return None;
    }
    let mut ord8 = [0u8; 8];
    ord8.copy_from_slice(&payload[8..16]);
    Some(u64::from_le_bytes(ord8))
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use isis_core::{BaseKind, Multiplicity};

    use super::*;
    use crate::vfs::StdVfs;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_repl_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn fingerprint(db: &Database) -> String {
        let mut lines = Vec::new();
        for (id, rec) in db.classes() {
            let mut members: Vec<String> = db
                .members(id)
                .map(|set| {
                    set.iter()
                        .filter_map(|e| db.entity_name(e).ok().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default();
            members.sort();
            lines.push(format!("{}:[{}]", rec.name, members.join(",")));
        }
        lines.sort();
        lines.join(";")
    }

    #[test]
    fn bootstrap_ship_and_catch_up() {
        let proot = tempdir("boot_p");
        let rroot = tempdir("boot_r");
        let pdir = StoreDir::open(&proot).unwrap();
        let rdir = StoreDir::open(&rroot).unwrap();
        let (primary, _) = pdir.open_shared("band", SyncPolicy::EverySync).unwrap();

        let mut w = primary.pin();
        let base = w.delta_epoch();
        let musicians = w.create_baseclass("musicians").unwrap();
        let ints = w.predefined(BaseKind::Integers);
        w.create_attribute(musicians, "age", ints, Multiplicity::Single)
            .unwrap();
        primary.commit(base, &w).unwrap();

        let log = ReplicationLog::open(&pdir, "band").unwrap();
        let (mut replica, report) = Replica::open(&rdir, "band", SyncPolicy::EverySync).unwrap();
        assert!(report.is_pristine());
        let status = replica.sync(&log).unwrap();
        assert!(status.caught_up());
        assert!(
            replica.pin().class_by_name("musicians").is_ok(),
            "schema checkpoint must have shipped"
        );

        // Data commits ship as frames.
        for name in ["Edith", "Amy", "Joan"] {
            let mut w = primary.pin();
            let base = w.delta_epoch();
            w.insert_entity(musicians, name).unwrap();
            primary.commit(base, &w).unwrap();
        }
        let status = replica.status(&log).unwrap();
        assert_eq!(status.lag, 3);
        let status = replica.sync(&log).unwrap();
        assert!(status.caught_up());
        assert_eq!(
            primary.read(fingerprint),
            fingerprint(&replica.pin()),
            "replica must equal the primary after catch-up"
        );

        std::fs::remove_dir_all(&proot).unwrap();
        std::fs::remove_dir_all(&rroot).unwrap();
    }

    #[test]
    fn replica_cursor_survives_reopen() {
        let proot = tempdir("reopen_p");
        let rroot = tempdir("reopen_r");
        let pdir = StoreDir::open(&proot).unwrap();
        let rdir = StoreDir::open(&rroot).unwrap();
        let (primary, _) = pdir.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        let musicians = w.create_baseclass("musicians").unwrap();
        primary.commit(base, &w).unwrap();
        for name in ["Edith", "Amy"] {
            let mut w = primary.pin();
            let base = w.delta_epoch();
            w.insert_entity(musicians, name).unwrap();
            primary.commit(base, &w).unwrap();
        }

        let log = ReplicationLog::open(&pdir, "band").unwrap();
        let (mut replica, _) = Replica::open(&rdir, "band", SyncPolicy::EverySync).unwrap();
        replica.sync(&log).unwrap();
        let cursor = replica.cursor();
        let applied = replica.applied_epoch();
        let served = fingerprint(&replica.pin());
        drop(replica);

        let (mut replica, report) = Replica::open(&rdir, "band", SyncPolicy::EverySync).unwrap();
        assert_eq!(replica.cursor(), cursor, "cursor must derive from disk");
        assert_eq!(replica.applied_epoch(), applied);
        assert_eq!(report.wal_records_replayed as u64, cursor.frames);
        assert_eq!(fingerprint(&replica.pin()), served);
        assert!(replica.sync(&log).unwrap().caught_up());

        std::fs::remove_dir_all(&proot).unwrap();
        std::fs::remove_dir_all(&rroot).unwrap();
    }

    #[test]
    fn schema_commit_reships_checkpoint_mid_stream() {
        let proot = tempdir("schema_p");
        let rroot = tempdir("schema_r");
        let pdir = StoreDir::open(&proot).unwrap();
        let rdir = StoreDir::open(&rroot).unwrap();
        let (primary, _) = pdir.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        let musicians = w.create_baseclass("musicians").unwrap();
        primary.commit(base, &w).unwrap();

        let log = ReplicationLog::open(&pdir, "band").unwrap();
        let (mut replica, _) = Replica::open(&rdir, "band", SyncPolicy::EverySync).unwrap();
        replica.sync(&log).unwrap();

        // Data, then schema (generation bump), then more data.
        let mut w = primary.pin();
        let base = w.delta_epoch();
        w.insert_entity(musicians, "Edith").unwrap();
        primary.commit(base, &w).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        w.create_baseclass("venues").unwrap();
        primary.commit(base, &w).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        w.insert_entity(musicians, "Amy").unwrap();
        primary.commit(base, &w).unwrap();

        let status = replica.sync(&log).unwrap();
        assert!(status.caught_up());
        let replicated = replica.pin();
        assert!(replicated.class_by_name("venues").is_ok());
        assert_eq!(primary.read(fingerprint), fingerprint(&replicated));

        std::fs::remove_dir_all(&proot).unwrap();
        std::fs::remove_dir_all(&rroot).unwrap();
    }

    #[test]
    fn replica_head_refuses_direct_commits() {
        let proot = tempdir("guard_p");
        let rroot = tempdir("guard_r");
        let pdir = StoreDir::open(&proot).unwrap();
        let rdir = StoreDir::open(&rroot).unwrap();
        let (primary, _) = pdir.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        w.create_baseclass("musicians").unwrap();
        primary.commit(base, &w).unwrap();

        let log = ReplicationLog::open(&pdir, "band").unwrap();
        let (mut replica, _) = Replica::open(&rdir, "band", SyncPolicy::EverySync).unwrap();
        replica.sync(&log).unwrap();

        let mut rogue = replica.shared().pin();
        let base = rogue.delta_epoch();
        let musicians = rogue.class_by_name("musicians").unwrap();
        rogue.insert_entity(musicians, "Intruder").unwrap();
        match replica.shared().commit(base, &rogue).unwrap_err() {
            isis_core::CommitConflict::Durability(m) => assert!(m.contains("read-only")),
            other => panic!("expected a read-only veto, got {other:?}"),
        }
        // The replayer still works after the veto.
        assert!(replica.sync(&log).unwrap().caught_up());

        std::fs::remove_dir_all(&proot).unwrap();
        std::fs::remove_dir_all(&rroot).unwrap();
    }

    #[test]
    fn replica_ahead_is_a_typed_error() {
        let proot = tempdir("ahead_p");
        let pdir = StoreDir::open(&proot).unwrap();
        let (primary, _) = pdir.open_shared("band", SyncPolicy::EverySync).unwrap();
        let mut w = primary.pin();
        let base = w.delta_epoch();
        w.create_baseclass("musicians").unwrap();
        primary.commit(base, &w).unwrap();

        let log = ReplicationLog::open(&pdir, "band").unwrap();
        let head_gen = match log.ship(&ShipCursor::genesis(), 16).unwrap() {
            Shipment::Checkpoint { generation, .. } => generation,
            other => panic!("expected a bootstrap checkpoint, got {other:?}"),
        };
        let ahead = ShipCursor {
            generation: head_gen,
            frames: 99,
        };
        assert!(matches!(
            log.ship(&ahead, 16),
            Err(StoreError::Replication { .. })
        ));
        assert!(matches!(
            log.outstanding(&ahead),
            Err(StoreError::Replication { .. })
        ));

        std::fs::remove_dir_all(&proot).unwrap();
    }

    #[test]
    fn ship_meta_roundtrip_and_corruption_tolerance() {
        let root = tempdir("meta");
        let dir = StoreDir::open_with(&root, std::sync::Arc::new(StdVfs::new())).unwrap();
        write_ship_meta(&dir, "band", 42).unwrap();
        let path = ship_path(&dir, "band");
        assert_eq!(read_ship_meta(dir.vfs().as_ref(), &path), Some(42));
        // Corrupt meta degrades to None (ordinal resets), never an error.
        dir.vfs().write(&path, b"garbage").unwrap();
        assert_eq!(read_ship_meta(dir.vfs().as_ref(), &path), None);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
