//! Structured recovery: multi-generation snapshot fallback, salvage WAL
//! replay, and the reports (`doctor` / `fsck`) describing what happened.
//!
//! [`StoreDir::recover`] is the one true open path — [`StoreDir::load`]
//! and [`StoreDir::open_logged`] both go through it. It tries the newest
//! snapshot generation, falls back to the previous one, replays whatever
//! log suffix belongs to the generation it loaded (in salvage mode, so a
//! corrupt mid-log record loses that record, not the rest of the log),
//! and narrates every deviation from the happy path in a
//! [`RecoveryReport`] instead of failing. It returns an error only when
//! *no* snapshot generation is readable.

use std::fmt;

use isis_core::Database;

use crate::error::StoreError;
use crate::store::{read_snapshot_bytes_gen, StoreDir};
use crate::wal::replay_with;

/// What recovery found and did while opening a database.
///
/// A pristine report means the happy path: newest snapshot readable, log
/// intact and belonging to it, every record replayed. Anything else —
/// fallback generation used, bytes salvaged past, torn tail, stale log,
/// rejected operations — is counted here rather than raised as an error,
/// because a recovered-with-losses database is still a database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The database name.
    pub name: String,
    /// The snapshot generation that was actually loaded.
    pub snapshot_generation: u64,
    /// `true` if the newest generation was unreadable and the previous
    /// one was used instead.
    pub used_fallback: bool,
    /// Human-readable load failures for generations that were tried and
    /// rejected before one succeeded.
    pub snapshot_errors: Vec<String>,
    /// Log records successfully replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Log records that decoded but were rejected by the engine on
    /// replay.
    pub wal_records_rejected: usize,
    /// Bytes of unparseable log skipped over by salvage resynchronisation.
    pub wal_bytes_skipped: usize,
    /// Number of times salvage had to resynchronise mid-log.
    pub wal_resyncs: usize,
    /// `true` if the log ended in a torn (partially written) record.
    pub wal_torn_tail: bool,
    /// `true` if a log was present but named a different snapshot
    /// generation and was therefore skipped entirely.
    pub wal_stale: bool,
}

impl RecoveryReport {
    /// A report for a database that did not exist and was freshly created.
    pub(crate) fn fresh(name: &str) -> RecoveryReport {
        RecoveryReport {
            name: name.to_string(),
            snapshot_generation: 0,
            used_fallback: false,
            snapshot_errors: Vec::new(),
            wal_records_replayed: 0,
            wal_records_rejected: 0,
            wal_bytes_skipped: 0,
            wal_resyncs: 0,
            wal_torn_tail: false,
            wal_stale: false,
        }
    }

    /// `true` if recovery was the happy path: nothing skipped, salvaged,
    /// rejected, torn, stale, or fallen back on.
    pub fn is_pristine(&self) -> bool {
        !self.used_fallback
            && self.snapshot_errors.is_empty()
            && self.wal_records_rejected == 0
            && self.wal_bytes_skipped == 0
            && self.wal_resyncs == 0
            && !self.wal_torn_tail
            && !self.wal_stale
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "database {:?}: snapshot generation {}{}",
            self.name,
            self.snapshot_generation,
            if self.used_fallback {
                " (fallback — newest generation unreadable)"
            } else {
                ""
            }
        )?;
        for err in &self.snapshot_errors {
            write!(f, "\n  snapshot error: {err}")?;
        }
        if self.wal_stale {
            write!(f, "\n  log: stale (names another generation), skipped")?;
        } else {
            write!(
                f,
                "\n  log: {} record(s) replayed, {} rejected",
                self.wal_records_replayed, self.wal_records_rejected
            )?;
            if self.wal_resyncs > 0 {
                write!(
                    f,
                    "\n  log: salvaged past {} corrupt byte(s) in {} resync(s)",
                    self.wal_bytes_skipped, self.wal_resyncs
                )?;
            }
            if self.wal_torn_tail {
                write!(f, "\n  log: torn tail (incomplete final record dropped)")?;
            }
        }
        if self.is_pristine() {
            write!(f, "\n  status: pristine")?;
        } else {
            write!(f, "\n  status: recovered with deviations")?;
        }
        Ok(())
    }
}

/// The result of an `fsck`-style verification pass: a full recovery dry
/// run plus a consistency check of the recovered database.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// What recovery found and did.
    pub recovery: RecoveryReport,
    /// `true` if the recovered database passed the internal consistency
    /// checker.
    pub consistent: bool,
    /// Number of classes in the recovered database.
    pub classes: usize,
    /// Number of attributes in the recovered database.
    pub attrs: usize,
    /// Number of entities in the recovered database.
    pub entities: usize,
}

impl FsckReport {
    /// `true` if everything checks out: pristine recovery and a clean
    /// consistency pass.
    pub fn clean(&self) -> bool {
        self.consistent && self.recovery.is_pristine()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.recovery)?;
        write!(
            f,
            "\n  contents: {} class(es), {} attribute(s), {} entit(ies)",
            self.classes, self.attrs, self.entities
        )?;
        write!(
            f,
            "\n  consistency: {}",
            if self.consistent { "ok" } else { "VIOLATED" }
        )
    }
}

impl StoreDir {
    /// Loads the database saved under `name`, trying the newest snapshot
    /// generation first and falling back to the previous one, then
    /// salvage-replaying the log suffix that belongs to the loaded
    /// generation. Returns the database together with a report of
    /// everything recovery had to do.
    ///
    /// Fails only if no snapshot generation is readable: with the single
    /// candidate's own error when only one exists, or
    /// [`StoreError::Recovery`] listing every failure when both do.
    pub fn recover(&self, name: &str) -> Result<(Database, RecoveryReport), StoreError> {
        let obs = isis_obs::global();
        let _span = obs.span("store.recovery.recover");
        obs.count("store.recovery.runs", 1);
        StoreDir::check_name(name)?;
        let vfs = self.vfs().clone();
        let candidates = [
            (self.snapshot_path(name), false),
            (self.fallback_path(name), true),
        ];
        let present: Vec<_> = candidates
            .into_iter()
            .filter(|(path, _)| vfs.exists(path))
            .collect();
        if present.is_empty() {
            return Err(StoreError::NotFound(name.into()));
        }
        let single = present.len() == 1;
        let mut snapshot_errors = Vec::new();
        let mut first_error = None;
        let mut loaded = None;
        for (path, is_fallback) in present {
            let attempt = vfs
                .read(&path)
                .map_err(StoreError::from)
                .and_then(|bytes| read_snapshot_bytes_gen(&bytes));
            match attempt {
                Ok((db, generation)) => {
                    loaded = Some((db, generation, is_fallback));
                    break;
                }
                Err(e) => {
                    snapshot_errors.push(format!("{}: {e}", path.display()));
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        let Some((mut db, snapshot_generation, used_fallback)) = loaded else {
            return Err(if single {
                first_error.expect("one candidate implies one error")
            } else {
                StoreError::Recovery {
                    name: name.into(),
                    detail: snapshot_errors.join("; "),
                }
            });
        };
        let replay = replay_with(vfs.as_ref(), &self.wal_path(name), true)?;
        let wal_stale = matches!(replay.snapshot_gen, Some(g) if g != snapshot_generation);
        let mut wal_records_replayed = 0;
        let mut wal_records_rejected = 0;
        if !wal_stale {
            for op in &replay.ops {
                match op.apply(&mut db) {
                    Ok(()) => wal_records_replayed += 1,
                    Err(_) => wal_records_rejected += 1,
                }
            }
        }
        let report = RecoveryReport {
            name: name.to_string(),
            snapshot_generation,
            used_fallback,
            snapshot_errors,
            wal_records_replayed,
            wal_records_rejected,
            wal_bytes_skipped: if wal_stale { 0 } else { replay.skipped_bytes },
            wal_resyncs: if wal_stale { 0 } else { replay.resyncs },
            wal_torn_tail: !wal_stale && replay.torn_tail,
            wal_stale,
        };
        obs.count("store.recovery.wal_replayed", wal_records_replayed as u64);
        obs.count("store.recovery.wal_rejected", wal_records_rejected as u64);
        if report.used_fallback {
            obs.count("store.recovery.fallbacks", 1);
        }
        obs.event("store.recovery.outcome", || {
            format!(
                "generation {} ({} replayed, fallback={})",
                report.snapshot_generation, wal_records_replayed, report.used_fallback
            )
        });
        Ok((db, report))
    }

    /// Runs an `fsck`-style verification of the database saved under
    /// `name`: a full recovery dry run (nothing on disk is modified) plus
    /// a consistency check of the recovered state.
    pub fn fsck(&self, name: &str) -> Result<FsckReport, StoreError> {
        let _span = isis_obs::global().span("store.recovery.fsck");
        let (db, recovery) = self.recover(name)?;
        let consistent = db.is_consistent().unwrap_or(false);
        Ok(FsckReport {
            recovery,
            consistent,
            classes: db.classes().count(),
            attrs: db.attrs().count(),
            entities: db.entities().count(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_report_is_pristine() {
        let r = RecoveryReport::fresh("x");
        assert!(r.is_pristine());
        assert!(r.to_string().contains("pristine"));
    }

    #[test]
    fn deviations_break_pristine_and_show_in_display() {
        let mut r = RecoveryReport::fresh("w");
        r.wal_torn_tail = true;
        r.wal_records_replayed = 3;
        assert!(!r.is_pristine());
        let text = r.to_string();
        assert!(text.contains("torn tail"));
        assert!(text.contains("3 record(s) replayed"));
        assert!(text.contains("deviations"));
        let mut s = RecoveryReport::fresh("w");
        s.wal_stale = true;
        assert!(s.to_string().contains("stale"));
    }
}
