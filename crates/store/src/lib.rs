//! # isis-store
//!
//! The persistence substrate for the ISIS reproduction — the machinery
//! behind the session's "he saves this new database as *entertainment*"
//! (§4.2), grown into a small storage engine a library user can rely on:
//!
//! * [`codec`] — an explicit, versioned binary codec with CRC32 frames;
//! * [`encode`] — byte layouts for database images and predicates;
//! * [`vfs`] — a virtual filesystem trait all I/O goes through, with a
//!   durable [`StdVfs`] and a deterministic fault-injecting [`FaultVfs`];
//! * snapshots (`N.isis`) written atomically and durably (temp-file,
//!   fsync, rename, directory fsync), with the previous generation kept
//!   as a fallback (`N.isis.1`);
//! * a write-ahead log (`N.wal`) of logical operations with torn-tail
//!   detection, a generation header tying it to its snapshot, and a
//!   salvage mode that resynchronises past mid-log corruption;
//! * [`recovery`] — multi-generation recovery with a structured
//!   [`RecoveryReport`] and an `fsck`-style verification pass;
//! * [`StoreDir`] — a directory of named databases (list / save / load /
//!   delete), and [`LoggedDatabase`] — a database handle whose mutations
//!   are WAL-durable with crash-safe `checkpoint()` compaction;
//! * [`replication`] — primary→replica log shipping over WAL commit
//!   frames: [`ReplicationLog`] serves frames and resync checkpoints,
//!   [`Replica`] replays them into its own durable directory and shared
//!   head, with explicit lag accounting in [`ReplicaStatus`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod encode;
pub mod error;
pub mod history;
pub mod recovery;
pub mod replication;
pub mod shared;
mod store;
pub mod vfs;
pub mod wal;

pub use codec::{crc32, CodecError};
pub use error::StoreError;
pub use history::{describe, is_schema_level, DesignHistory, HistoryEntry};
pub use recovery::{FsckReport, RecoveryReport};
pub use replication::{Replica, ReplicaStatus, ReplicationLog, ShipCursor, Shipment};
pub use shared::WalCommitHook;
pub use store::{
    read_snapshot, read_snapshot_bytes, read_snapshot_bytes_gen, snapshot_bytes_with_gen,
    write_snapshot, write_snapshot_bytes, LoggedDatabase, StoreDir, SNAPSHOT_MAGIC,
};
pub use vfs::{FaultMode, FaultProfile, FaultStats, FaultVfs, RetryPolicy, StdVfs, Vfs};
pub use wal::{replay_log, replay_with, LogOp, Replay, SyncPolicy, WalFile, WAL_HEADER_MAGIC};
