//! # isis-store
//!
//! The persistence substrate for the ISIS reproduction — the machinery
//! behind the session's "he saves this new database as *entertainment*"
//! (§4.2), grown into a small storage engine a library user can rely on:
//!
//! * [`codec`] — an explicit, versioned binary codec with CRC32 frames;
//! * [`encode`] — byte layouts for database images and predicates;
//! * snapshots (`N.isis`) written atomically via temp-file + rename;
//! * a write-ahead log (`N.wal`) of logical operations with torn-tail
//!   detection, so a crashed session recovers to its last logged op;
//! * [`StoreDir`] — a directory of named databases (list / save / load /
//!   delete), and [`LoggedDatabase`] — a database handle whose mutations
//!   are WAL-durable with `checkpoint()` compaction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod encode;
pub mod error;
pub mod history;
mod store;
pub mod wal;

pub use codec::{crc32, CodecError};
pub use error::StoreError;
pub use history::{describe, is_schema_level, DesignHistory, HistoryEntry};
pub use store::{
    read_snapshot, read_snapshot_bytes, write_snapshot, write_snapshot_bytes, LoggedDatabase,
    StoreDir, SNAPSHOT_MAGIC,
};
pub use wal::{replay_log, LogOp, Replay, SyncPolicy, WalFile};
