//! Design history — the paper's §5 third future-work item:
//!
//! "Third, we would like to add features to assist users in the process of
//! designing their schemas … For example, it would be useful to be able to
//! keep track of the history of a database design."
//!
//! The write-ahead log *is* a complete, ordered history of every design
//! decision. [`DesignHistory`] replays it: reconstructing the database as
//! of any operation (time travel), narrating each operation with names
//! resolved against the state it applied to, and summarising the schema
//! difference between any two points.

use isis_core::{Database, Multiplicity, ValueClassSpec};

use crate::error::StoreError;
use crate::store::StoreDir;
use crate::wal::{replay_log, LogOp};

/// A replayable design history: a base state plus the operation log.
#[derive(Debug)]
pub struct DesignHistory {
    base: Database,
    ops: Vec<LogOp>,
}

/// One narrated history entry.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Operation index (1-based; 0 is the base snapshot).
    pub seq: usize,
    /// `true` for schema-level operations (class/attribute/grouping/
    /// constraint changes), `false` for data-level ones.
    pub schema_level: bool,
    /// Human-readable narration, with names resolved.
    pub description: String,
}

impl DesignHistory {
    /// Builds a history from a base database and the operations applied to
    /// it since.
    pub fn new(base: Database, ops: Vec<LogOp>) -> DesignHistory {
        DesignHistory { base, ops }
    }

    /// Loads the history of database `name` from a directory: its snapshot
    /// plus the current log segment. (After a checkpoint the log restarts;
    /// histories are per-segment, like an editor's session undo.)
    pub fn load(dir: &StoreDir, name: &str) -> Result<DesignHistory, StoreError> {
        let base = crate::store::read_snapshot(&dir.root().join(format!("{name}.isis")))?;
        let replay = replay_log(&dir.root().join(format!("{name}.wal")))?;
        Ok(DesignHistory::new(base, replay.ops))
    }

    /// Number of operations in the history.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations themselves.
    pub fn ops(&self) -> &[LogOp] {
        &self.ops
    }

    /// Reconstructs the database as of operation `k` (0 = the base state,
    /// `len()` = the latest state).
    pub fn state_at(&self, k: usize) -> Result<Database, StoreError> {
        let mut db = self.base.clone();
        for op in self.ops.iter().take(k) {
            op.apply(&mut db)?;
        }
        Ok(db)
    }

    /// Narrates the whole history, resolving names against the state each
    /// operation applied to.
    pub fn narrate(&self) -> Result<Vec<HistoryEntry>, StoreError> {
        let mut db = self.base.clone();
        let mut out = Vec::with_capacity(self.ops.len());
        for (i, op) in self.ops.iter().enumerate() {
            let description = describe(&db, op);
            out.push(HistoryEntry {
                seq: i + 1,
                schema_level: is_schema_level(op),
                description,
            });
            op.apply(&mut db)?;
        }
        Ok(out)
    }

    /// Summarises what changed in the *schema* between operation `k1` and
    /// operation `k2` (class/attribute/grouping/constraint names added and
    /// removed).
    pub fn schema_diff(&self, k1: usize, k2: usize) -> Result<Vec<String>, StoreError> {
        let a = self.state_at(k1)?;
        let b = self.state_at(k2)?;
        let mut out = Vec::new();
        let names = |db: &Database| -> Vec<String> {
            let mut v: Vec<String> = db
                .classes()
                .map(|(_, c)| format!("class {}", c.name))
                .collect();
            v.extend(db.attrs().map(|(_, r)| format!("attribute {}", r.name)));
            v.extend(db.groupings().map(|(_, g)| format!("grouping {}", g.name)));
            v.extend(
                db.constraints()
                    .map(|(_, k)| format!("constraint {}", k.name)),
            );
            v
        };
        let an = names(&a);
        let bn = names(&b);
        for n in &bn {
            if !an.contains(n) {
                out.push(format!("+ {n}"));
            }
        }
        for n in &an {
            if !bn.contains(n) {
                out.push(format!("- {n}"));
            }
        }
        Ok(out)
    }
}

/// `true` for operations that change the schema rather than the data.
pub fn is_schema_level(op: &LogOp) -> bool {
    matches!(
        op,
        LogOp::CreateBaseclass(_)
            | LogOp::CreateSubclass(..)
            | LogOp::CreateDerivedSubclass(..)
            | LogOp::RenameClass(..)
            | LogOp::DeleteClass(_)
            | LogOp::CreateAttribute(..)
            | LogOp::RenameAttr(..)
            | LogOp::RespecifyValueClass(..)
            | LogOp::DeleteAttr(_)
            | LogOp::CreateGrouping(..)
            | LogOp::RenameGrouping(..)
            | LogOp::DeleteGrouping(_)
            | LogOp::CommitMembership(..)
            | LogOp::CommitDerivation(..)
            | LogOp::EnableMultipleInheritance
            | LogOp::AddSecondaryParent(..)
            | LogOp::CreateConstraint(..)
            | LogOp::DeleteConstraint(_)
    )
}

fn class_name(db: &Database, c: isis_core::ClassId) -> String {
    db.class(c)
        .map(|r| r.name.clone())
        .unwrap_or_else(|_| c.to_string())
}

fn attr_name(db: &Database, a: isis_core::AttrId) -> String {
    db.attr(a)
        .map(|r| r.name.clone())
        .unwrap_or_else(|_| a.to_string())
}

fn grouping_name(db: &Database, g: isis_core::GroupingId) -> String {
    db.grouping(g)
        .map(|r| r.name.clone())
        .unwrap_or_else(|_| g.to_string())
}

fn entity_name(db: &Database, e: isis_core::EntityId) -> String {
    db.entity_name(e)
        .map(str::to_string)
        .unwrap_or_else(|_| e.to_string())
}

fn vc_name(db: &Database, vc: &ValueClassSpec) -> String {
    match vc {
        ValueClassSpec::Class(c) => class_name(db, *c),
        ValueClassSpec::Grouping(g) => grouping_name(db, *g),
    }
}

/// Narrates one operation against the state it is about to apply to.
pub fn describe(db: &Database, op: &LogOp) -> String {
    match op {
        LogOp::CreateBaseclass(n) => format!("create baseclass {n}"),
        LogOp::CreateSubclass(p, n) => {
            format!("create subclass {n} of {}", class_name(db, *p))
        }
        LogOp::CreateDerivedSubclass(p, n) => {
            format!("create derived subclass {n} of {}", class_name(db, *p))
        }
        LogOp::RenameClass(c, n) => format!("rename class {} to {n}", class_name(db, *c)),
        LogOp::DeleteClass(c) => format!("delete class {}", class_name(db, *c)),
        LogOp::CreateAttribute(c, n, vc, m) => format!(
            "create {} attribute {n} on {} with value class {}",
            match m {
                Multiplicity::Single => "singlevalued",
                Multiplicity::Multi => "multivalued",
            },
            class_name(db, *c),
            vc_name(db, vc)
        ),
        LogOp::RenameAttr(a, n) => format!("rename attribute {} to {n}", attr_name(db, *a)),
        LogOp::RespecifyValueClass(a, vc) => format!(
            "respecify value class of {} to {}",
            attr_name(db, *a),
            vc_name(db, vc)
        ),
        LogOp::DeleteAttr(a) => format!("delete attribute {}", attr_name(db, *a)),
        LogOp::CreateGrouping(c, n, a) => format!(
            "create grouping {n} of {} on {}",
            class_name(db, *c),
            attr_name(db, *a)
        ),
        LogOp::RenameGrouping(g, n) => {
            format!("rename grouping {} to {n}", grouping_name(db, *g))
        }
        LogOp::DeleteGrouping(g) => format!("delete grouping {}", grouping_name(db, *g)),
        LogOp::InsertEntity(b, n) => format!("insert entity {n} into {}", class_name(db, *b)),
        LogOp::Intern(l) => format!("intern literal {l}"),
        LogOp::AddToClass(e, c) => format!(
            "add {} to class {}",
            entity_name(db, *e),
            class_name(db, *c)
        ),
        LogOp::RemoveFromClass(e, c) => format!(
            "remove {} from class {}",
            entity_name(db, *e),
            class_name(db, *c)
        ),
        LogOp::DeleteEntity(e) => format!("delete entity {}", entity_name(db, *e)),
        LogOp::RenameEntity(e, n) => format!("rename entity {} to {n}", entity_name(db, *e)),
        LogOp::AssignSingle(e, a, v) => format!(
            "assign {}.{} = {}",
            entity_name(db, *e),
            attr_name(db, *a),
            entity_name(db, *v)
        ),
        LogOp::AssignMulti(e, a, vs) => format!(
            "assign {}.{} = {{{}}}",
            entity_name(db, *e),
            attr_name(db, *a),
            vs.iter()
                .map(|v| entity_name(db, *v))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LogOp::AddValue(e, a, v) => format!(
            "add {} to {}.{}",
            entity_name(db, *v),
            entity_name(db, *e),
            attr_name(db, *a)
        ),
        LogOp::Unassign(e, a) => format!("unassign {}.{}", entity_name(db, *e), attr_name(db, *a)),
        LogOp::CommitMembership(c, _) => {
            format!("commit membership predicate of {}", class_name(db, *c))
        }
        LogOp::RefreshDerivedClass(c) => {
            format!("refresh derived class {}", class_name(db, *c))
        }
        LogOp::CommitDerivation(a, _) => {
            format!("commit derivation of {}", attr_name(db, *a))
        }
        LogOp::RefreshDerivedAttr(a) => {
            format!("refresh derived attribute {}", attr_name(db, *a))
        }
        LogOp::EnableMultipleInheritance => "enable multiple inheritance".into(),
        LogOp::AddSecondaryParent(c, p) => format!(
            "add secondary parent {} to {}",
            class_name(db, *p),
            class_name(db, *c)
        ),
        LogOp::CreateConstraint(n, c, _, kind) => format!(
            "create {} constraint {n} on {}",
            match kind {
                isis_core::ConstraintKind::ForAll => "for-all",
                isis_core::ConstraintKind::Forbidden => "forbidden",
            },
            class_name(db, *c)
        ),
        LogOp::DeleteConstraint(id) => format!("delete constraint {id}"),
        LogOp::CommitBatch(ops) => format!("commit {} operation(s) atomically", ops.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::SyncPolicy;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("isis_hist_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn build(dir: &StoreDir) {
        let mut db = dir.open_logged("design", SyncPolicy::EverySync).unwrap();
        let m = db.create_baseclass("musicians").unwrap();
        let i = db.create_baseclass("instruments").unwrap();
        let plays = db
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        db.create_grouping(m, "by_instrument", plays).unwrap();
        let e = db.insert_entity(m, "Edith").unwrap();
        let v = db.insert_entity(i, "viola").unwrap();
        db.assign_multi(e, plays, [v]).unwrap();
        db.rename_class(i, "axes").unwrap();
    }

    #[test]
    fn narration_resolves_names_in_time() {
        let root = tempdir("narrate");
        let dir = StoreDir::open(&root).unwrap();
        build(&dir);
        let hist = DesignHistory::load(&dir, "design").unwrap();
        assert_eq!(hist.len(), 8);
        let entries = hist.narrate().unwrap();
        let lines: Vec<&str> = entries.iter().map(|e| e.description.as_str()).collect();
        assert_eq!(lines[0], "create baseclass musicians");
        assert!(lines[2].contains("multivalued attribute plays on musicians"));
        assert!(lines[3].contains("grouping by_instrument of musicians on plays"));
        assert!(lines[6].contains("Edith.plays = {viola}"));
        // The rename narrates against the *old* name.
        assert_eq!(lines[7], "rename class instruments to axes");
        // Schema/data classification.
        assert!(entries[0].schema_level);
        assert!(!entries[4].schema_level); // insert entity
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn time_travel_reconstructs_intermediate_states() {
        let root = tempdir("travel");
        let dir = StoreDir::open(&root).unwrap();
        build(&dir);
        let hist = DesignHistory::load(&dir, "design").unwrap();
        // Base: only the predefined classes.
        let t0 = hist.state_at(0).unwrap();
        assert_eq!(t0.classes().count(), 4);
        // After 2 ops: both baseclasses, no attribute yet.
        let t2 = hist.state_at(2).unwrap();
        assert!(t2.class_by_name("musicians").is_ok());
        assert!(t2.class_by_name("instruments").is_ok());
        let m = t2.class_by_name("musicians").unwrap();
        assert!(t2.attr_by_name(m, "plays").is_err());
        // Final state equals a fresh load.
        let latest = hist.state_at(hist.len()).unwrap();
        assert_eq!(latest.to_image(), dir.load("design").unwrap().to_image());
        assert!(latest.class_by_name("axes").is_ok());
        // Every intermediate state is consistent.
        for k in 0..=hist.len() {
            assert!(
                hist.state_at(k).unwrap().is_consistent().unwrap(),
                "state {k}"
            );
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn schema_diff_lists_additions_and_removals() {
        let root = tempdir("diff");
        let dir = StoreDir::open(&root).unwrap();
        build(&dir);
        let hist = DesignHistory::load(&dir, "design").unwrap();
        let diff = hist.schema_diff(0, hist.len()).unwrap();
        assert!(diff.contains(&"+ class musicians".to_string()));
        assert!(diff.contains(&"+ attribute plays".to_string()));
        assert!(diff.contains(&"+ grouping by_instrument".to_string()));
        // The rename shows as remove+add.
        assert!(diff.contains(&"+ class axes".to_string()));
        assert!(!diff.contains(&"+ class instruments".to_string()));
        // Reverse direction flips signs.
        let rev = hist.schema_diff(hist.len(), 0).unwrap();
        assert!(rev.contains(&"- class musicians".to_string()));
        // Same point → empty diff.
        assert!(hist.schema_diff(3, 3).unwrap().is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_history() {
        let root = tempdir("empty");
        let dir = StoreDir::open(&root).unwrap();
        let db = isis_core::Database::new("fresh");
        dir.save(&db, "fresh").unwrap();
        let hist = DesignHistory::load(&dir, "fresh").unwrap();
        assert!(hist.is_empty());
        assert!(hist.narrate().unwrap().is_empty());
        assert_eq!(hist.state_at(0).unwrap().to_image(), db.to_image());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
