//! The write-ahead log: a durable stream of logical operations.
//!
//! Every mutation of a [`LoggedDatabase`](crate::LoggedDatabase) is encoded
//! as a [`LogOp`] and appended as a CRC-framed record *after* being applied
//! in memory (the in-memory engine validates; only validated operations
//! reach the log, so replay can never fail on well-formed files). Replay of
//! `snapshot + log` reproduces the database state exactly, because every
//! id-allocating operation (including literal interning) is logged in order.
//!
//! A torn final record — the classic crash during append — is detected by
//! its checksum/length and discarded on open. Replay can also run in
//! *salvage* mode ([`replay_with`]): instead of stopping at the first
//! corrupt mid-log record it scans forward, byte by byte, to the next
//! position where a whole frame checksums *and* decodes, and resumes there
//! — reporting how many bytes it skipped so recovery can tell the user.
//!
//! A log segment opened by a [`StoreDir`](crate::StoreDir) begins with a
//! header record naming the *snapshot generation* it extends. On recovery
//! the log is replayed only when its header generation matches the snapshot
//! actually loaded; a crash between installing a new snapshot and resetting
//! the log can therefore never double-apply old operations. Headerless logs
//! (standalone [`WalFile`] use, pre-generation files) replay
//! unconditionally, as before.
//!
//! All file I/O goes through the [`Vfs`] trait, so the
//! crash-consistency suite can inject faults at every byte boundary.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use isis_core::{
    AttrDerivation, AttrId, ClassId, ConstraintId, ConstraintKind, Database, EntityId, GroupingId,
    Literal, Multiplicity, Predicate, ValueClassSpec,
};

use crate::codec::{frame, read_frame, CodecError, Reader, Writer};
use crate::encode::{r_map, r_predicate, w_map, w_predicate};
use crate::error::StoreError;
use crate::vfs::{StdVfs, Vfs};

/// A logical, replayable database operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// `create_baseclass(name)`.
    CreateBaseclass(String),
    /// `create_subclass(parent, name)`.
    CreateSubclass(ClassId, String),
    /// `create_derived_subclass(parent, name)`.
    CreateDerivedSubclass(ClassId, String),
    /// `rename_class(class, name)`.
    RenameClass(ClassId, String),
    /// `delete_class(class)`.
    DeleteClass(ClassId),
    /// `create_attribute(class, name, value_class, multiplicity)`.
    CreateAttribute(ClassId, String, ValueClassSpec, Multiplicity),
    /// `rename_attr(attr, name)`.
    RenameAttr(AttrId, String),
    /// `respecify_value_class(attr, value_class)`.
    RespecifyValueClass(AttrId, ValueClassSpec),
    /// `delete_attr(attr)`.
    DeleteAttr(AttrId),
    /// `create_grouping(parent, name, attr)`.
    CreateGrouping(ClassId, String, AttrId),
    /// `rename_grouping(grouping, name)`.
    RenameGrouping(GroupingId, String),
    /// `delete_grouping(grouping)`.
    DeleteGrouping(GroupingId),
    /// `insert_entity(base, name)`.
    InsertEntity(ClassId, String),
    /// `intern(literal)`.
    Intern(Literal),
    /// `add_to_class(entity, class)`.
    AddToClass(EntityId, ClassId),
    /// `remove_from_class(entity, class)`.
    RemoveFromClass(EntityId, ClassId),
    /// `delete_entity(entity)`.
    DeleteEntity(EntityId),
    /// `rename_entity(entity, name)`.
    RenameEntity(EntityId, String),
    /// `assign_single(entity, attr, value)`.
    AssignSingle(EntityId, AttrId, EntityId),
    /// `assign_multi(entity, attr, values)`.
    AssignMulti(EntityId, AttrId, Vec<EntityId>),
    /// `add_value(entity, attr, value)`.
    AddValue(EntityId, AttrId, EntityId),
    /// `unassign(entity, attr)`.
    Unassign(EntityId, AttrId),
    /// `commit_membership(class, predicate)`.
    CommitMembership(ClassId, Predicate),
    /// `refresh_derived_class(class)`.
    RefreshDerivedClass(ClassId),
    /// `commit_derivation(attr, derivation)`.
    CommitDerivation(AttrId, AttrDerivation),
    /// `refresh_derived_attr(attr)`.
    RefreshDerivedAttr(AttrId),
    /// `enable_multiple_inheritance()`.
    EnableMultipleInheritance,
    /// `add_secondary_parent(class, parent)`.
    AddSecondaryParent(ClassId, ClassId),
    /// `create_constraint(name, class, predicate, kind)`.
    CreateConstraint(String, ClassId, Predicate, ConstraintKind),
    /// `delete_constraint(id)`.
    DeleteConstraint(ConstraintId),
    /// One MVCC commit's operations, framed as a single atomic record:
    /// a torn tail or checksum failure discards the *whole* commit, so
    /// recovery can never observe half of one. Batches never nest.
    CommitBatch(Vec<LogOp>),
}

impl LogOp {
    /// Applies the operation to a database, returning the engine error if
    /// the operation is rejected.
    pub fn apply(&self, db: &mut Database) -> Result<(), isis_core::CoreError> {
        match self {
            LogOp::CreateBaseclass(n) => db.create_baseclass(n).map(|_| ()),
            LogOp::CreateSubclass(p, n) => db.create_subclass(*p, n).map(|_| ()),
            LogOp::CreateDerivedSubclass(p, n) => db.create_derived_subclass(*p, n).map(|_| ()),
            LogOp::RenameClass(c, n) => db.rename_class(*c, n).map(|_| ()),
            LogOp::DeleteClass(c) => db.delete_class(*c).map(|_| ()),
            LogOp::CreateAttribute(c, n, vc, m) => db.create_attribute(*c, n, *vc, *m).map(|_| ()),
            LogOp::RenameAttr(a, n) => db.rename_attr(*a, n).map(|_| ()),
            LogOp::RespecifyValueClass(a, vc) => db.respecify_value_class(*a, *vc).map(|_| ()),
            LogOp::DeleteAttr(a) => db.delete_attr(*a).map(|_| ()),
            LogOp::CreateGrouping(p, n, a) => db.create_grouping(*p, n, *a).map(|_| ()),
            LogOp::RenameGrouping(g, n) => db.rename_grouping(*g, n).map(|_| ()),
            LogOp::DeleteGrouping(g) => db.delete_grouping(*g).map(|_| ()),
            LogOp::InsertEntity(b, n) => db.insert_entity(*b, n).map(|_| ()),
            LogOp::Intern(l) => db.intern(l.clone()).map(|_| ()),
            LogOp::AddToClass(e, c) => db.add_to_class(*e, *c).map(|_| ()),
            LogOp::RemoveFromClass(e, c) => db.remove_from_class(*e, *c).map(|_| ()),
            LogOp::DeleteEntity(e) => db.delete_entity(*e).map(|_| ()),
            LogOp::RenameEntity(e, n) => db.rename_entity(*e, n).map(|_| ()),
            LogOp::AssignSingle(e, a, v) => db.assign_single(*e, *a, *v).map(|_| ()),
            LogOp::AssignMulti(e, a, vs) => db.assign_multi(*e, *a, vs.iter().copied()).map(|_| ()),
            LogOp::AddValue(e, a, v) => db.add_value(*e, *a, *v).map(|_| ()),
            LogOp::Unassign(e, a) => db.unassign(*e, *a).map(|_| ()),
            LogOp::CommitMembership(c, p) => db.commit_membership(*c, p.clone()).map(|_| ()),
            LogOp::RefreshDerivedClass(c) => db.refresh_derived_class(*c).map(|_| ()),
            LogOp::CommitDerivation(a, d) => db.commit_derivation(*a, d.clone()).map(|_| ()),
            LogOp::RefreshDerivedAttr(a) => db.refresh_derived_attr(*a).map(|_| ()),
            LogOp::EnableMultipleInheritance => {
                db.enable_multiple_inheritance();
                Ok(())
            }
            LogOp::AddSecondaryParent(c, p) => db.add_secondary_parent(*c, *p).map(|_| ()),
            LogOp::CreateConstraint(n, c, p, k) => {
                db.create_constraint(n, *c, p.clone(), *k).map(|_| ())
            }
            LogOp::DeleteConstraint(id) => db.delete_constraint(*id),
            LogOp::CommitBatch(ops) => {
                for op in ops {
                    op.apply(db)?;
                }
                Ok(())
            }
        }
    }

    /// Encodes the operation into bytes (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let wc = |w: &mut Writer, c: &ClassId| w.u32(c.raw());
        let wa = |w: &mut Writer, a: &AttrId| w.u32(a.raw());
        let wg = |w: &mut Writer, g: &GroupingId| w.u32(g.raw());
        let we = |w: &mut Writer, e: &EntityId| w.u32(e.raw());
        let wvc = |w: &mut Writer, vc: &ValueClassSpec| match vc {
            ValueClassSpec::Class(c) => {
                w.u8(0);
                w.u32(c.raw());
            }
            ValueClassSpec::Grouping(g) => {
                w.u8(1);
                w.u32(g.raw());
            }
        };
        match self {
            LogOp::CreateBaseclass(n) => {
                w.u8(0);
                w.string(n);
            }
            LogOp::CreateSubclass(p, n) => {
                w.u8(1);
                wc(&mut w, p);
                w.string(n);
            }
            LogOp::CreateDerivedSubclass(p, n) => {
                w.u8(2);
                wc(&mut w, p);
                w.string(n);
            }
            LogOp::RenameClass(c, n) => {
                w.u8(3);
                wc(&mut w, c);
                w.string(n);
            }
            LogOp::DeleteClass(c) => {
                w.u8(4);
                wc(&mut w, c);
            }
            LogOp::CreateAttribute(c, n, vc, m) => {
                w.u8(5);
                wc(&mut w, c);
                w.string(n);
                wvc(&mut w, vc);
                w.boolean(*m == Multiplicity::Multi);
            }
            LogOp::RenameAttr(a, n) => {
                w.u8(6);
                wa(&mut w, a);
                w.string(n);
            }
            LogOp::RespecifyValueClass(a, vc) => {
                w.u8(7);
                wa(&mut w, a);
                wvc(&mut w, vc);
            }
            LogOp::DeleteAttr(a) => {
                w.u8(8);
                wa(&mut w, a);
            }
            LogOp::CreateGrouping(p, n, a) => {
                w.u8(9);
                wc(&mut w, p);
                w.string(n);
                wa(&mut w, a);
            }
            LogOp::RenameGrouping(g, n) => {
                w.u8(10);
                wg(&mut w, g);
                w.string(n);
            }
            LogOp::DeleteGrouping(g) => {
                w.u8(11);
                wg(&mut w, g);
            }
            LogOp::InsertEntity(b, n) => {
                w.u8(12);
                wc(&mut w, b);
                w.string(n);
            }
            LogOp::Intern(l) => {
                w.u8(13);
                match l {
                    Literal::Str(s) => {
                        w.u8(0);
                        w.string(s);
                    }
                    Literal::Int(i) => {
                        w.u8(1);
                        w.i64(*i);
                    }
                    Literal::Real(x) => {
                        w.u8(2);
                        w.f64(*x);
                    }
                    Literal::Bool(b) => {
                        w.u8(3);
                        w.boolean(*b);
                    }
                }
            }
            LogOp::AddToClass(e, c) => {
                w.u8(14);
                we(&mut w, e);
                wc(&mut w, c);
            }
            LogOp::RemoveFromClass(e, c) => {
                w.u8(15);
                we(&mut w, e);
                wc(&mut w, c);
            }
            LogOp::DeleteEntity(e) => {
                w.u8(16);
                we(&mut w, e);
            }
            LogOp::RenameEntity(e, n) => {
                w.u8(17);
                we(&mut w, e);
                w.string(n);
            }
            LogOp::AssignSingle(e, a, v) => {
                w.u8(18);
                we(&mut w, e);
                wa(&mut w, a);
                we(&mut w, v);
            }
            LogOp::AssignMulti(e, a, vs) => {
                w.u8(19);
                we(&mut w, e);
                wa(&mut w, a);
                w.seq(vs, |w, v| w.u32(v.raw()));
            }
            LogOp::AddValue(e, a, v) => {
                w.u8(20);
                we(&mut w, e);
                wa(&mut w, a);
                we(&mut w, v);
            }
            LogOp::Unassign(e, a) => {
                w.u8(21);
                we(&mut w, e);
                wa(&mut w, a);
            }
            LogOp::CommitMembership(c, p) => {
                w.u8(22);
                wc(&mut w, c);
                w_predicate(&mut w, p);
            }
            LogOp::RefreshDerivedClass(c) => {
                w.u8(23);
                wc(&mut w, c);
            }
            LogOp::CommitDerivation(a, d) => {
                w.u8(24);
                wa(&mut w, a);
                match d {
                    AttrDerivation::Assign(m) => {
                        w.u8(0);
                        w_map(&mut w, m);
                    }
                    AttrDerivation::Predicate(p) => {
                        w.u8(1);
                        w_predicate(&mut w, p);
                    }
                }
            }
            LogOp::RefreshDerivedAttr(a) => {
                w.u8(25);
                wa(&mut w, a);
            }
            LogOp::EnableMultipleInheritance => {
                w.u8(26);
            }
            LogOp::AddSecondaryParent(c, p) => {
                w.u8(27);
                wc(&mut w, c);
                wc(&mut w, p);
            }
            LogOp::CreateConstraint(n, c, p, k) => {
                w.u8(28);
                w.string(n);
                wc(&mut w, c);
                w_predicate(&mut w, p);
                w.u8(match k {
                    ConstraintKind::ForAll => 0,
                    ConstraintKind::Forbidden => 1,
                });
            }
            LogOp::DeleteConstraint(id) => {
                w.u8(29);
                w.u32(id.raw());
            }
            LogOp::CommitBatch(ops) => {
                w.u8(30);
                w.seq(ops, |w, op| w.bytes_field(&op.encode()));
            }
        }
        w.into_bytes()
    }

    /// Decodes one operation.
    pub fn decode(bytes: &[u8]) -> Result<LogOp, CodecError> {
        let mut r = Reader::new(bytes);
        let rc =
            |r: &mut Reader| -> Result<ClassId, CodecError> { Ok(ClassId::from_raw(r.u32()?)) };
        let ra = |r: &mut Reader| -> Result<AttrId, CodecError> { Ok(AttrId::from_raw(r.u32()?)) };
        let rg = |r: &mut Reader| -> Result<GroupingId, CodecError> {
            Ok(GroupingId::from_raw(r.u32()?))
        };
        let re =
            |r: &mut Reader| -> Result<EntityId, CodecError> { Ok(EntityId::from_raw(r.u32()?)) };
        let rvc = |r: &mut Reader| -> Result<ValueClassSpec, CodecError> {
            Ok(match r.u8()? {
                0 => ValueClassSpec::Class(ClassId::from_raw(r.u32()?)),
                1 => ValueClassSpec::Grouping(GroupingId::from_raw(r.u32()?)),
                t => return Err(CodecError::Corrupt(format!("value class tag {t}"))),
            })
        };
        let op = match r.u8()? {
            0 => LogOp::CreateBaseclass(r.string()?),
            1 => LogOp::CreateSubclass(rc(&mut r)?, r.string()?),
            2 => LogOp::CreateDerivedSubclass(rc(&mut r)?, r.string()?),
            3 => LogOp::RenameClass(rc(&mut r)?, r.string()?),
            4 => LogOp::DeleteClass(rc(&mut r)?),
            5 => {
                let c = rc(&mut r)?;
                let n = r.string()?;
                let vc = rvc(&mut r)?;
                let m = if r.boolean()? {
                    Multiplicity::Multi
                } else {
                    Multiplicity::Single
                };
                LogOp::CreateAttribute(c, n, vc, m)
            }
            6 => LogOp::RenameAttr(ra(&mut r)?, r.string()?),
            7 => LogOp::RespecifyValueClass(ra(&mut r)?, rvc(&mut r)?),
            8 => LogOp::DeleteAttr(ra(&mut r)?),
            9 => LogOp::CreateGrouping(rc(&mut r)?, r.string()?, ra(&mut r)?),
            10 => LogOp::RenameGrouping(rg(&mut r)?, r.string()?),
            11 => LogOp::DeleteGrouping(rg(&mut r)?),
            12 => LogOp::InsertEntity(rc(&mut r)?, r.string()?),
            13 => LogOp::Intern(match r.u8()? {
                0 => Literal::Str(r.string()?),
                1 => Literal::Int(r.i64()?),
                2 => Literal::Real(r.f64()?),
                3 => Literal::Bool(r.boolean()?),
                t => return Err(CodecError::Corrupt(format!("literal tag {t}"))),
            }),
            14 => LogOp::AddToClass(re(&mut r)?, rc(&mut r)?),
            15 => LogOp::RemoveFromClass(re(&mut r)?, rc(&mut r)?),
            16 => LogOp::DeleteEntity(re(&mut r)?),
            17 => LogOp::RenameEntity(re(&mut r)?, r.string()?),
            18 => LogOp::AssignSingle(re(&mut r)?, ra(&mut r)?, re(&mut r)?),
            19 => {
                let e = re(&mut r)?;
                let a = ra(&mut r)?;
                let vs = r.seq(|r| Ok(EntityId::from_raw(r.u32()?)))?;
                LogOp::AssignMulti(e, a, vs)
            }
            20 => LogOp::AddValue(re(&mut r)?, ra(&mut r)?, re(&mut r)?),
            21 => LogOp::Unassign(re(&mut r)?, ra(&mut r)?),
            22 => LogOp::CommitMembership(rc(&mut r)?, r_predicate(&mut r)?),
            23 => LogOp::RefreshDerivedClass(rc(&mut r)?),
            24 => {
                let a = ra(&mut r)?;
                let d = match r.u8()? {
                    0 => AttrDerivation::Assign(r_map(&mut r)?),
                    1 => AttrDerivation::Predicate(r_predicate(&mut r)?),
                    t => return Err(CodecError::Corrupt(format!("derivation tag {t}"))),
                };
                LogOp::CommitDerivation(a, d)
            }
            25 => LogOp::RefreshDerivedAttr(ra(&mut r)?),
            26 => LogOp::EnableMultipleInheritance,
            27 => LogOp::AddSecondaryParent(rc(&mut r)?, rc(&mut r)?),
            28 => {
                let n = r.string()?;
                let c = rc(&mut r)?;
                let p = r_predicate(&mut r)?;
                let k = match r.u8()? {
                    0 => ConstraintKind::ForAll,
                    1 => ConstraintKind::Forbidden,
                    t => return Err(CodecError::Corrupt(format!("constraint kind tag {t}"))),
                };
                LogOp::CreateConstraint(n, c, p, k)
            }
            29 => LogOp::DeleteConstraint(ConstraintId::from_raw(r.u32()?)),
            30 => {
                let ops = r.seq(|r| {
                    let bytes = r.bytes_field()?;
                    // Reject nesting *before* recursing so hostile input
                    // cannot drive the decoder arbitrarily deep.
                    if bytes.first() == Some(&30) {
                        return Err(CodecError::Corrupt("nested commit batch".into()));
                    }
                    LogOp::decode(bytes)
                })?;
                LogOp::CommitBatch(ops)
            }
            t => return Err(CodecError::Corrupt(format!("log op tag {t}"))),
        };
        if !r.is_at_end() {
            return Err(CodecError::Corrupt("trailing bytes after log op".into()));
        }
        Ok(op)
    }
}

/// Durability policy for the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every append (durable to the last operation).
    EverySync,
    /// Let the OS flush; `fsync` only at checkpoints. Faster, may lose a
    /// suffix of operations on power failure (never corrupts: torn tails
    /// are discarded on open).
    #[default]
    OsFlush,
}

/// Magic bytes at the start of a WAL segment header record's payload.
/// The header frame's payload is these 8 bytes followed by the u64 (LE)
/// snapshot generation the segment extends.
pub const WAL_HEADER_MAGIC: &[u8; 8] = b"ISISWAL\x01";

fn header_frame(generation: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    payload.extend_from_slice(WAL_HEADER_MAGIC);
    payload.extend_from_slice(&generation.to_le_bytes());
    frame(&payload)
}

fn parse_header(payload: &[u8]) -> Option<u64> {
    if payload.len() != 16 || &payload[..8] != WAL_HEADER_MAGIC {
        return None;
    }
    let mut gen8 = [0u8; 8];
    gen8.copy_from_slice(&payload[8..16]);
    Some(u64::from_le_bytes(gen8))
}

/// An append-only write-ahead log file.
#[derive(Debug)]
pub struct WalFile {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    policy: SyncPolicy,
    records: usize,
}

impl WalFile {
    /// Opens (creating if needed) the log at `path` for appending, on the
    /// real filesystem.
    pub fn open(path: impl Into<PathBuf>, policy: SyncPolicy) -> Result<WalFile, StoreError> {
        WalFile::open_with(Arc::new(StdVfs::new()), path, policy)
    }

    /// Opens (creating if needed) the log at `path` through an explicit
    /// [`Vfs`].
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        path: impl Into<PathBuf>,
        policy: SyncPolicy,
    ) -> Result<WalFile, StoreError> {
        let path = path.into();
        if !vfs.exists(&path) {
            vfs.append(&path, &[])?;
        }
        Ok(WalFile {
            vfs,
            path,
            policy,
            records: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The durability policy the log was opened with.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Records appended through this handle.
    pub fn appended_records(&self) -> usize {
        self.records
    }

    /// Appends one operation.
    pub fn append(&mut self, op: &LogOp) -> Result<(), StoreError> {
        let obs = isis_obs::global();
        let timer = obs.timer("store.wal.append_ns");
        let framed = frame(&op.encode());
        self.vfs.append(&self.path, &framed)?;
        if self.policy == SyncPolicy::EverySync {
            self.vfs.sync_file(&self.path)?;
        }
        self.records += 1;
        drop(timer);
        obs.count("store.wal.appends", 1);
        obs.count("store.wal.append_bytes", framed.len() as u64);
        Ok(())
    }

    /// Current byte length of the log file — a rollback mark for
    /// [`WalFile::rewind_to`].
    pub(crate) fn len(&self) -> Result<u64, StoreError> {
        Ok(self.vfs.file_len(&self.path)?)
    }

    /// Rewinds the file to `len` bytes and makes the rewind durable,
    /// discarding a failed append so recovery can never replay a record
    /// whose write was reported as failed. Uses [`Vfs::truncate_to`]
    /// (all-or-nothing `set_len` semantics) rather than rewriting the
    /// retained prefix: a rewrite that failed partway would destroy
    /// records that were already acknowledged as durable.
    pub(crate) fn rewind_to(&mut self, len: u64) -> Result<(), StoreError> {
        if self.vfs.file_len(&self.path)? > len {
            self.vfs.truncate_to(&self.path, len)?;
        } else {
            self.vfs.sync_file(&self.path)?;
        }
        Ok(())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let obs = isis_obs::global();
        let _timer = obs.timer("store.wal.fsync_ns");
        obs.count("store.wal.fsyncs", 1);
        self.vfs.sync_file(&self.path)?;
        Ok(())
    }

    /// Truncates the log (after a checkpoint made its contents redundant).
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.vfs.truncate(&self.path)?;
        self.records = 0;
        Ok(())
    }

    /// Starts a fresh log segment extending snapshot `generation`: truncates
    /// the log, writes the generation header record, and makes it durable.
    /// On recovery the segment replays only onto that exact generation.
    pub fn reset(&mut self, generation: u64) -> Result<(), StoreError> {
        self.vfs.truncate(&self.path)?;
        self.records = 0;
        self.vfs.append(&self.path, &header_frame(generation))?;
        self.vfs.sync_file(&self.path)?;
        Ok(())
    }
}

/// The outcome of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    /// Operations recovered, in order.
    pub ops: Vec<LogOp>,
    /// Bytes consumed as valid frames (header record included).
    pub valid_bytes: usize,
    /// `true` if a torn/corrupt tail was discarded.
    pub torn_tail: bool,
    /// The snapshot generation named by the segment header, or `None` for
    /// a headerless (standalone / pre-generation) log, which replays
    /// unconditionally.
    pub snapshot_gen: Option<u64>,
    /// Bytes skipped by salvage resynchronisation (0 in strict mode).
    pub skipped_bytes: usize,
    /// Number of corrupt regions salvage scanned past (0 in strict mode).
    pub resyncs: usize,
}

impl Replay {
    fn empty() -> Replay {
        Replay {
            ops: Vec::new(),
            valid_bytes: 0,
            torn_tail: false,
            snapshot_gen: None,
            skipped_bytes: 0,
            resyncs: 0,
        }
    }
}

/// The first position at or after `from` where a complete frame checksums
/// and decodes as a [`LogOp`].
fn resync(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len()).find(
        |&q| matches!(read_frame(&bytes[q..]), Ok((payload, _)) if LogOp::decode(payload).is_ok()),
    )
}

/// Reads a log file, returning every valid operation up to the first torn
/// or corrupt record (which a crash during append can legitimately leave).
pub fn replay_log(path: &Path) -> Result<Replay, StoreError> {
    replay_with(&StdVfs::new(), path, false)
}

/// Reads a log file through a [`Vfs`]. In strict mode (`salvage == false`)
/// replay stops at the first torn or corrupt record, exactly like
/// [`replay_log`]. In salvage mode a corrupt mid-log region is scanned past
/// to the next whole, decodable frame; the skipped byte count and resync
/// count are reported so callers can surface the loss.
pub fn replay_with(vfs: &dyn Vfs, path: &Path, salvage: bool) -> Result<Replay, StoreError> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::empty()),
        Err(e) => return Err(e.into()),
    };
    let mut replay = Replay::empty();
    let mut pos = 0;
    // A generation header is recognised only as the segment's first record.
    if let Ok((payload, consumed)) = read_frame(&bytes) {
        if let Some(generation) = parse_header(payload) {
            replay.snapshot_gen = Some(generation);
            pos = consumed;
            replay.valid_bytes = consumed;
        }
    }
    while pos < bytes.len() {
        let ok = match read_frame(&bytes[pos..]) {
            Ok((payload, consumed)) => match LogOp::decode(payload) {
                Ok(op) => {
                    replay.ops.push(op);
                    pos += consumed;
                    replay.valid_bytes += consumed;
                    true
                }
                Err(_) => false,
            },
            Err(_) => false,
        };
        if !ok {
            if salvage {
                if let Some(next) = resync(&bytes, pos + 1) {
                    replay.skipped_bytes += next - pos;
                    replay.resyncs += 1;
                    pos = next;
                    continue;
                }
            }
            replay.torn_tail = true;
            break;
        }
    }
    Ok(replay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::Database;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("isis_wal_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_ops() -> Vec<LogOp> {
        vec![
            LogOp::CreateBaseclass("musicians".into()),
            LogOp::CreateBaseclass("instruments".into()),
            LogOp::CreateAttribute(
                ClassId::from_raw(4),
                "plays".into(),
                ValueClassSpec::Class(ClassId::from_raw(5)),
                Multiplicity::Multi,
            ),
            LogOp::InsertEntity(ClassId::from_raw(4), "Edith".into()),
            LogOp::InsertEntity(ClassId::from_raw(5), "viola".into()),
            LogOp::Intern(Literal::Int(4)),
            LogOp::Intern(Literal::Bool(true)),
            LogOp::Intern(Literal::Real(2.5)),
            LogOp::Intern(Literal::Str("x".into())),
        ]
    }

    #[test]
    fn op_encode_roundtrip() {
        for op in sample_ops() {
            let bytes = op.encode();
            assert_eq!(LogOp::decode(&bytes).unwrap(), op);
        }
        // Some more exotic ops.
        let ops = vec![
            LogOp::CommitMembership(ClassId::from_raw(9), Predicate::always_true()),
            LogOp::CommitDerivation(
                AttrId::from_raw(3),
                AttrDerivation::Assign(isis_core::Map::new(vec![AttrId::from_raw(1)])),
            ),
            LogOp::AssignMulti(
                EntityId::from_raw(1),
                AttrId::from_raw(2),
                vec![EntityId::from_raw(3), EntityId::from_raw(4)],
            ),
            LogOp::EnableMultipleInheritance,
            LogOp::AddSecondaryParent(ClassId::from_raw(5), ClassId::from_raw(6)),
        ];
        for op in ops {
            assert_eq!(LogOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_bad_tags_and_trailing() {
        assert!(LogOp::decode(&[200]).is_err());
        let mut bytes = LogOp::EnableMultipleInheritance.encode();
        bytes.push(0);
        assert!(LogOp::decode(&bytes).is_err());
    }

    #[test]
    fn commit_batch_roundtrips_and_rejects_nesting() {
        let batch = LogOp::CommitBatch(sample_ops());
        assert_eq!(LogOp::decode(&batch.encode()).unwrap(), batch);
        assert_eq!(
            LogOp::decode(&LogOp::CommitBatch(Vec::new()).encode()).unwrap(),
            LogOp::CommitBatch(Vec::new())
        );
        let nested = LogOp::CommitBatch(vec![LogOp::CommitBatch(sample_ops())]);
        assert!(LogOp::decode(&nested.encode()).is_err());
    }

    #[test]
    fn commit_batch_applies_atomically_through_replay() {
        let dir = tempdir("batch");
        let path = dir.join("batch.wal");
        let mut wal = WalFile::open(&path, SyncPolicy::EverySync).unwrap();
        wal.append(&LogOp::CommitBatch(vec![
            LogOp::CreateBaseclass("musicians".into()),
            LogOp::InsertEntity(ClassId::from_raw(4), "Edith".into()),
        ]))
        .unwrap();
        drop(wal);
        let replay = replay_log(&path).unwrap();
        assert_eq!(replay.ops.len(), 1);
        let mut db = Database::new("batch");
        for op in &replay.ops {
            op.apply(&mut db).unwrap();
        }
        let musicians = db.class_by_name("musicians").unwrap();
        assert!(db.entity_by_name(musicians, "Edith").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_and_replay() {
        let dir = tempdir("append");
        let path = dir.join("test.wal");
        let mut wal = WalFile::open(&path, SyncPolicy::EverySync).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        assert_eq!(wal.appended_records(), sample_ops().len());
        drop(wal);
        let replay = replay_log(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.ops, sample_ops());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_discarded() {
        let dir = tempdir("torn");
        let path = dir.join("torn.wal");
        let mut wal = WalFile::open(&path, SyncPolicy::OsFlush).unwrap();
        for op in sample_ops() {
            wal.append(&op).unwrap();
        }
        drop(wal);
        // Chop a few bytes off the end: the last record becomes torn.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replay = replay_log(&path).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.ops.len(), sample_ops().len() - 1);
        // Corrupt a middle byte: everything after it is discarded.
        let mut bytes2 = bytes.clone();
        bytes2[10] ^= 0xFF;
        std::fs::write(&path, &bytes2).unwrap();
        let replay2 = replay_log(&path).unwrap();
        assert!(replay2.torn_tail);
        assert!(replay2.ops.len() < sample_ops().len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_log_is_empty() {
        let dir = tempdir("missing");
        let replay = replay_log(&dir.join("nope.wal")).unwrap();
        assert!(replay.ops.is_empty());
        assert!(!replay.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ops_apply_like_direct_calls() {
        let mut direct = Database::new("d");
        let m = direct.create_baseclass("musicians").unwrap();
        let i = direct.create_baseclass("instruments").unwrap();
        let plays = direct
            .create_attribute(m, "plays", i, Multiplicity::Multi)
            .unwrap();
        let e = direct.insert_entity(m, "Edith").unwrap();
        let v = direct.insert_entity(i, "viola").unwrap();
        direct.assign_multi(e, plays, [v]).unwrap();
        direct.int(4);

        let mut replayed = Database::new("d");
        for op in [
            LogOp::CreateBaseclass("musicians".into()),
            LogOp::CreateBaseclass("instruments".into()),
            LogOp::CreateAttribute(
                m,
                "plays".into(),
                ValueClassSpec::Class(i),
                Multiplicity::Multi,
            ),
            LogOp::InsertEntity(m, "Edith".into()),
            LogOp::InsertEntity(i, "viola".into()),
            LogOp::AssignMulti(e, plays, vec![v]),
            LogOp::Intern(Literal::Int(4)),
        ] {
            op.apply(&mut replayed).unwrap();
        }
        assert_eq!(direct.to_image(), replayed.to_image());
    }

    #[test]
    fn truncate_empties_log() {
        let dir = tempdir("trunc");
        let path = dir.join("t.wal");
        let mut wal = WalFile::open(&path, SyncPolicy::EverySync).unwrap();
        wal.append(&LogOp::CreateBaseclass("x".into())).unwrap();
        wal.truncate().unwrap();
        drop(wal);
        assert!(replay_log(&path).unwrap().ops.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intern_literal_tag_4_is_corrupt() {
        assert!(LogOp::decode(&[13u8, 4]).is_err());
    }

    #[test]
    fn reset_writes_generation_header() {
        let dir = tempdir("reset");
        let path = dir.join("g.wal");
        let mut wal = WalFile::open(&path, SyncPolicy::EverySync).unwrap();
        wal.reset(7).unwrap();
        wal.append(&LogOp::CreateBaseclass("x".into())).unwrap();
        let replay = replay_log(&path).unwrap();
        assert_eq!(replay.snapshot_gen, Some(7));
        assert_eq!(replay.ops, vec![LogOp::CreateBaseclass("x".into())]);
        assert!(!replay.torn_tail);
        // Resetting again starts a fresh segment under the new generation.
        wal.reset(8).unwrap();
        let replay = replay_log(&path).unwrap();
        assert_eq!(replay.snapshot_gen, Some(8));
        assert!(replay.ops.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_resyncs_past_mid_log_corruption() {
        let dir = tempdir("salvage");
        let path = dir.join("s.wal");
        let ops = sample_ops();
        {
            let mut wal = WalFile::open(&path, SyncPolicy::OsFlush).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
        }
        // Flip a payload bit inside the third record.
        let mut bytes = std::fs::read(&path).unwrap();
        let skip: usize = ops[..2].iter().map(|op| op.encode().len() + 8).sum();
        bytes[skip + 8] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        // Strict replay stops at the corruption.
        let strict = replay_log(&path).unwrap();
        assert!(strict.torn_tail);
        assert_eq!(strict.ops, &ops[..2]);
        // Salvage skips exactly the corrupted record and resumes.
        let vfs = StdVfs::new();
        let salvaged = replay_with(&vfs, &path, true).unwrap();
        assert!(!salvaged.torn_tail);
        assert_eq!(salvaged.resyncs, 1);
        assert_eq!(salvaged.skipped_bytes, ops[2].encode().len() + 8);
        let mut expect = ops.clone();
        expect.remove(2);
        assert_eq!(salvaged.ops, expect);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
