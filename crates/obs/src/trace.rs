//! The span/event recorder: a bounded ring buffer of trace records.
//!
//! Spans carry hierarchical ids — each span records the id of the span that
//! was open on the same thread when it started — so a dump reconstructs the
//! call tree (e.g. `session.command.refresh` containing the four refresh
//! phases). The ring is bounded: when full, the **oldest** records are
//! dropped and counted, so a long session keeps the most recent activity
//! and memory stays constant.
//!
//! The recorder itself is clock-free; [`crate::Obs`] stamps records with
//! nanoseconds since its construction so all timestamps share one epoch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Default ring capacity (records, not spans — a span is two records).
pub const DEFAULT_CAPACITY: usize = 4096;

/// One record in the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A span opened.
    SpanStart {
        /// Unique span id (never 0).
        id: u64,
        /// Id of the enclosing span on the same thread, or 0 for a root.
        parent: u64,
        /// Span name (`crate.component.event`).
        name: &'static str,
        /// Nanoseconds since the recorder's epoch.
        t_ns: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id from the matching [`TraceRecord::SpanStart`].
        id: u64,
        /// Wall-clock duration of the span in nanoseconds.
        dur_ns: u64,
    },
    /// A point event, attributed to the innermost open span.
    Event {
        /// Id of the enclosing span, or 0 if none was open.
        span: u64,
        /// Event name (`crate.component.event`).
        name: &'static str,
        /// Free-form detail (e.g. the access path a query chose).
        detail: String,
        /// Nanoseconds since the recorder's epoch.
        t_ns: u64,
    },
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

/// The bounded recorder. See the module docs for semantics.
#[derive(Debug)]
pub struct Recorder {
    ring: Mutex<Ring>,
    next_id: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Recorder {
    /// A recorder whose ring holds at most `cap` records (min 2: one span).
    pub fn with_capacity(cap: usize) -> Recorder {
        Recorder {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: cap.max(2),
                dropped: 0,
            }),
            next_id: AtomicU64::new(1),
        }
    }

    /// Allocate a fresh span id (monotonic, never 0).
    pub fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Append a record, evicting the oldest if the ring is full.
    pub fn push(&self, rec: TraceRecord) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(rec);
    }

    /// Discard all records (capacity and the id counter are kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.buf.clear();
        ring.dropped = 0;
    }

    /// Change the capacity, evicting oldest records if shrinking.
    pub fn set_capacity(&self, cap: usize) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        ring.cap = cap.max(2);
        while ring.buf.len() > ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock().expect("trace ring poisoned");
        TraceSnapshot {
            records: ring.buf.iter().cloned().collect(),
            dropped: ring.dropped,
            capacity: ring.cap,
        }
    }
}

/// A copied-out view of the ring, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSnapshot {
    /// Records oldest-first.
    pub records: Vec<TraceRecord>,
    /// Records evicted since the last [`Recorder::clear`].
    pub dropped: u64,
    /// Ring capacity at snapshot time.
    pub capacity: usize,
}

/// A span reassembled from its start/end records.
#[derive(Debug, Clone)]
struct SpanNode {
    id: u64,
    parent: u64,
    name: &'static str,
    t_ns: u64,
    dur_ns: Option<u64>,
    children: Vec<usize>,
    events: Vec<usize>,
}

impl TraceSnapshot {
    /// Number of span-start records in the snapshot.
    pub fn span_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanStart { .. }))
            .count()
    }

    fn assemble(&self) -> (Vec<SpanNode>, Vec<usize>, Vec<&TraceRecord>) {
        let mut spans: Vec<SpanNode> = Vec::new();
        let mut orphan_events: Vec<usize> = Vec::new();
        let mut events: Vec<&TraceRecord> = Vec::new();
        for rec in &self.records {
            match rec {
                TraceRecord::SpanStart {
                    id,
                    parent,
                    name,
                    t_ns,
                } => spans.push(SpanNode {
                    id: *id,
                    parent: *parent,
                    name,
                    t_ns: *t_ns,
                    dur_ns: None,
                    children: Vec::new(),
                    events: Vec::new(),
                }),
                TraceRecord::SpanEnd { id, dur_ns } => {
                    if let Some(s) = spans.iter_mut().rev().find(|s| s.id == *id) {
                        s.dur_ns = Some(*dur_ns);
                    }
                }
                TraceRecord::Event { span, .. } => {
                    let idx = events.len();
                    events.push(rec);
                    match spans.iter().position(|s| s.id == *span) {
                        Some(si) => spans[si].events.push(idx),
                        None => orphan_events.push(idx),
                    }
                }
            }
        }
        // Wire up parent → child links; spans whose parent fell off the
        // ring become roots.
        let mut roots = Vec::new();
        for i in 0..spans.len() {
            let parent = spans[i].parent;
            match spans.iter().position(|s| s.id == parent) {
                Some(pi) if parent != 0 => spans[pi].children.push(i),
                _ => roots.push(i),
            }
        }
        (spans, roots, events)
    }

    /// Render as an indented tree — the REPL `trace dump` output.
    pub fn to_text(&self) -> String {
        let (spans, roots, events) = self.assemble();
        let mut out = format!(
            "trace: {} span(s), {} event(s), {} dropped (capacity {})\n",
            spans.len(),
            events.len(),
            self.dropped,
            self.capacity
        );
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}µs", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(
            out: &mut String,
            spans: &[SpanNode],
            events: &[&TraceRecord],
            i: usize,
            depth: usize,
        ) {
            let s = &spans[i];
            let dur = match s.dur_ns {
                Some(d) => fmt_ns(d),
                None => "open".to_string(),
            };
            out.push_str(&format!(
                "{:indent$}{} [{dur}]\n",
                "",
                s.name,
                indent = depth * 2
            ));
            for &ei in &s.events {
                if let TraceRecord::Event { name, detail, .. } = events[ei] {
                    out.push_str(&format!(
                        "{:indent$}· {name}: {detail}\n",
                        "",
                        indent = (depth + 1) * 2
                    ));
                }
            }
            for &ci in &s.children {
                walk(out, spans, events, ci, depth + 1);
            }
        }
        for &r in &roots {
            walk(&mut out, &spans, &events, r, 1);
        }
        for rec in &self.records {
            if let TraceRecord::Event {
                span: 0,
                name,
                detail,
                ..
            } = rec
            {
                out.push_str(&format!("  · {name}: {detail}\n"));
            }
        }
        out
    }

    /// Render as a flat JSON document (spans merged with their end records,
    /// events attributed by span id) that [`Json::parse`] round-trips.
    pub fn to_json(&self) -> Json {
        let (spans, _, _) = self.assemble();
        let span_items: Vec<Json> = spans
            .iter()
            .map(|s| {
                Json::obj([
                    ("id", Json::from(s.id)),
                    ("parent", Json::from(s.parent)),
                    ("name", Json::from(s.name)),
                    ("start_ns", Json::from(s.t_ns)),
                    (
                        "dur_ns",
                        match s.dur_ns {
                            Some(d) => Json::from(d),
                            None => Json::Null,
                        },
                    ),
                ])
            })
            .collect();
        let event_items: Vec<Json> = self
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Event {
                    span,
                    name,
                    detail,
                    t_ns,
                } => Some(Json::obj([
                    ("span", Json::from(*span)),
                    ("name", Json::from(*name)),
                    ("detail", Json::from(detail.clone())),
                    ("t_ns", Json::from(*t_ns)),
                ])),
                _ => None,
            })
            .collect();
        Json::obj([
            ("dropped", Json::from(self.dropped)),
            ("capacity", Json::from(self.capacity)),
            ("spans", Json::Arr(span_items)),
            ("events", Json::Arr(event_items)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_never_exceeds_capacity_and_counts_drops() {
        let r = Recorder::with_capacity(8);
        for i in 0..100 {
            r.push(TraceRecord::SpanStart {
                id: i + 1,
                parent: 0,
                name: "t",
                t_ns: i,
            });
        }
        let snap = r.snapshot();
        assert_eq!(snap.records.len(), 8);
        assert_eq!(snap.dropped, 92);
        // Oldest evicted: the survivors are the last 8 pushes.
        assert!(matches!(
            snap.records[0],
            TraceRecord::SpanStart { id: 93, .. }
        ));
    }

    #[test]
    fn text_dump_indents_children_under_parents() {
        let r = Recorder::default();
        r.push(TraceRecord::SpanStart {
            id: 1,
            parent: 0,
            name: "session.command.refresh",
            t_ns: 0,
        });
        r.push(TraceRecord::SpanStart {
            id: 2,
            parent: 1,
            name: "session.refresh.drain",
            t_ns: 10,
        });
        r.push(TraceRecord::Event {
            span: 2,
            name: "session.refresh.rounds",
            detail: "2 rounds".into(),
            t_ns: 15,
        });
        r.push(TraceRecord::SpanEnd {
            id: 2,
            dur_ns: 1500,
        });
        r.push(TraceRecord::SpanEnd {
            id: 1,
            dur_ns: 2_000_000,
        });
        let text = r.snapshot().to_text();
        assert!(text.contains("session.command.refresh [2.00ms]"), "{text}");
        assert!(text.contains("    session.refresh.drain [1.5µs]"), "{text}");
        assert!(
            text.contains("· session.refresh.rounds: 2 rounds"),
            "{text}"
        );
    }

    #[test]
    fn unfinished_spans_render_as_open() {
        let r = Recorder::default();
        r.push(TraceRecord::SpanStart {
            id: 1,
            parent: 0,
            name: "x",
            t_ns: 0,
        });
        assert!(r.snapshot().to_text().contains("x [open]"));
    }

    #[test]
    fn json_export_round_trips() {
        let r = Recorder::default();
        r.push(TraceRecord::SpanStart {
            id: 1,
            parent: 0,
            name: "a",
            t_ns: 5,
        });
        r.push(TraceRecord::SpanEnd { id: 1, dur_ns: 42 });
        r.push(TraceRecord::Event {
            span: 1,
            name: "e",
            detail: "d \"quoted\"".into(),
            t_ns: 7,
        });
        let json = r.snapshot().to_json();
        let back = Json::parse(&json.pretty()).unwrap();
        assert_eq!(back, json);
        assert_eq!(
            back.get("spans")
                .unwrap()
                .idx(0)
                .unwrap()
                .get("dur_ns")
                .unwrap()
                .as_f64(),
            Some(42.0)
        );
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let r = Recorder::with_capacity(10);
        for i in 0..10 {
            r.push(TraceRecord::SpanEnd { id: i, dur_ns: 0 });
        }
        r.set_capacity(3);
        let snap = r.snapshot();
        assert_eq!(snap.records.len(), 3);
        assert_eq!(snap.capacity, 3);
        assert!(matches!(
            snap.records[0],
            TraceRecord::SpanEnd { id: 7, .. }
        ));
    }
}
