//! The typed metrics registry: counters, gauges, and log₂-bucketed
//! histograms.
//!
//! Metric names follow the `crate.component.event` scheme documented in
//! DESIGN.md §5c — e.g. `query.service.index_probes` or
//! `store.wal.append_ns`. All metric updates are single atomic operations,
//! so instruments can be bumped from any thread without locking; the
//! registry's mutex is only taken to resolve a name to a handle (once per
//! call site when handles are cached, as the hot paths do) and to snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (queue depths, sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets — enough for any `u64` sample.
const BUCKETS: usize = 64;

/// A histogram with one bucket per power of two.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))` (bucket 0 additionally
/// holds zero). Quantile estimates therefore over-approximate by at most
/// 2×, which [`HistogramSnapshot`]'s `p50`/`p95`/`p99` make precise: each
/// reported quantile is an upper bound on the true sample quantile, clamped
/// to the exact observed `[min, max]`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }
}

/// The log₂ bucket index for a sample.
#[inline]
fn bucket_of(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// The largest value bucket `i` can hold.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Upper bound on the median, clamped to `[min, max]`.
    pub p50: u64,
    /// Upper bound on the 95th percentile, clamped to `[min, max]`.
    pub p95: u64,
    /// Upper bound on the 99th percentile, clamped to `[min, max]`.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The value of one registered metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current count.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram summary.
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The registry: a name → metric map.
///
/// Metrics are created on first use and live for the registry's lifetime;
/// [`Registry::reset`] zeroes values but keeps the handles valid, so cached
/// `Arc`s held by instrumentation sites never dangle.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — metric
    /// names are a global contract (DESIGN.md §5c), so a kind clash is a
    /// programming error.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::default()))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::default()))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::default()))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Zero every registered metric, keeping existing handles valid.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        for metric in inner.values() {
            match metric {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    h.count.store(0, Ordering::Relaxed);
                    h.sum.store(0, Ordering::Relaxed);
                    h.min.store(u64::MAX, Ordering::Relaxed);
                    h.max.store(0, Ordering::Relaxed);
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// A sorted point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            entries: inner
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// A sorted snapshot of the whole registry, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Render as aligned text, one metric per line — the REPL `metrics`
    /// output.
    pub fn to_text(&self) -> String {
        if self.entries.is_empty() {
            return "no metrics recorded\n".to_string();
        }
        let width = self
            .entries
            .iter()
            .map(|(name, _)| name.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let rendered = match value {
                MetricValue::Counter(v) => format!("{v}"),
                MetricValue::Gauge(v) => format!("{v}"),
                MetricValue::Histogram(h) => format!(
                    "count={} mean={:.1} p50<={} p95<={} p99<={} min={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.min,
                    h.max
                ),
            };
            out.push_str(&format!("{name:<width$}  {rendered}\n"));
        }
        out
    }

    /// Render as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(c) => {
                            Json::obj([("type", Json::from("counter")), ("value", Json::from(*c))])
                        }
                        MetricValue::Gauge(g) => {
                            Json::obj([("type", Json::from("gauge")), ("value", Json::from(*g))])
                        }
                        MetricValue::Histogram(h) => Json::obj([
                            ("type", Json::from("histogram")),
                            ("count", Json::from(h.count)),
                            ("sum", Json::from(h.sum)),
                            ("mean", Json::from(h.mean())),
                            ("min", Json::from(h.min)),
                            ("max", Json::from(h.max)),
                            ("p50", Json::from(h.p50)),
                            ("p95", Json::from(h.p95)),
                            ("p99", Json::from(h.p99)),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("a.b.c");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a.b.c").get(), 5);
        let g = r.gauge("a.b.depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [3u64, 5, 9, 1000, 17, 0, 2] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.max);
        // True median is 5; the log2 upper bound for its bucket is 7.
        assert!(s.p50 >= 5 && s.p50 <= 9, "p50={}", s.p50);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p99),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(1), 3);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn reset_keeps_handles_valid() {
        let r = Registry::new();
        let c = r.counter("n");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("n").get(), 1);
    }

    #[test]
    fn snapshot_exports_sorted_text_and_json() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.histogram("a.ns").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.entries[0].0, "a.ns");
        let text = snap.to_text();
        assert!(text.contains("b.count"), "{text}");
        let json = snap.to_json();
        assert_eq!(
            json.get("b.count").unwrap().get("value").unwrap().as_f64(),
            Some(2.0)
        );
        assert_eq!(
            json.get("a.ns").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
    }
}
