//! A minimal JSON value model with a serializer and parser.
//!
//! The build environment has no crates.io access (see ROADMAP.md), so this
//! module is the workspace's only JSON codec: the metrics/trace exporters
//! ([`crate::metrics::MetricsSnapshot::to_json`],
//! [`crate::trace::TraceSnapshot::to_json`]) and the bench report writer in
//! `isis-bench` all serialize through it, and `tests/obs_props.rs`
//! property-checks that exports round-trip through [`Json::parse`].
//!
//! Deliberate simplifications, documented so callers are not surprised:
//!
//! * numbers are `f64` (integers above 2⁵³ lose precision — the exporters
//!   only emit counts and nanosecond totals, which fit);
//! * non-finite numbers serialize as `null`;
//! * objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   serialize → parse → serialize is byte-stable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always an `f64`; see the module docs for the caveats).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and duplicate keys are not
    /// merged (the parser keeps the first occurrence wins semantics of
    /// [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub at: usize,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Build an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Look up a key in an object (first occurrence wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation — the form written to
    /// `out/bench_*.json` so diffs stay readable.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing non-whitespace input is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after document"));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{:?}` on f64 prints the shortest representation that parses back
        // to the same value.
        let _ = write!(out, "{v:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let b = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a low surrogate must follow.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", Json::from("query_index")),
            ("mean_ns", Json::from(1234.5f64)),
            ("iters", Json::from(200u64)),
            (
                "results",
                Json::arr([Json::obj([("id", Json::from("a/100"))]), Json::Null]),
            ),
            ("ok", Json::from(true)),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Compact form round-trips byte-stably.
        let compact = doc.dump();
        assert_eq!(Json::parse(&compact).unwrap().dump(), compact);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\t\"\\ \u0041 \ud83d\ude00 é""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\ A 😀 é");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::from(1_500_000_000u64).dump(), "1500000000");
        assert_eq!(Json::from(0.25f64).dump(), "0.25");
        assert_eq!(Json::Num(f64::NAN).dump(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate() {
        let v = Json::parse(r#"{"a": [1, {"b": true}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().idx(0).unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("a")
                .unwrap()
                .idx(1)
                .unwrap()
                .get("b")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }
}
