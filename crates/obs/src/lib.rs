//! `isis-obs`: hand-rolled observability for the ISIS reproduction.
//!
//! The build environment has no crates.io access, so this crate provides —
//! with zero dependencies — what `tracing` + `metrics` would: a lock-cheap
//! span/event recorder with a bounded ring buffer ([`trace`]), a typed
//! metrics registry with counters, gauges, and log₂ histograms
//! ([`metrics`]), a minimal JSON codec ([`json`]), and text/JSON exporters.
//!
//! # The fast path
//!
//! Everything hangs off an [`Obs`] handle (usually [`global()`]). Every
//! instrument call first checks [`Obs::enabled`] — a single relaxed atomic
//! load — and returns immediately when observability is off. No clock is
//! read, no lock is taken, no allocation happens on the disabled path; the
//! `obs_overhead` bench in `isis-bench` holds this to <2% of the
//! 10k-musician query benchmark (DESIGN.md §5c records the budget).
//!
//! # Toggles
//!
//! * `ISIS_OBS` environment variable, read once when [`global()`] is first
//!   used: `1`/`on`/`true`/`yes` enables metrics, `trace` additionally
//!   enables the span recorder, anything else (or unset) leaves both off.
//! * [`Obs::set_enabled`] / [`Obs::set_tracing`] at runtime — the REPL's
//!   `metrics on|off` and `trace on|off` commands call these.
//!
//! # Naming
//!
//! Metric and span names follow `crate.component.event`, e.g.
//! `query.service.index_probes`, `store.wal.fsync_ns`,
//! `session.refresh.apply_ns`. Histograms of durations end in `_ns`.
//!
//! ```
//! let obs = isis_obs::Obs::new();
//! obs.set_enabled(true);
//! obs.set_tracing(true);
//! {
//!     let _outer = obs.span("demo.outer.work");
//!     let _inner = obs.span("demo.inner.step");
//!     obs.count("demo.inner.items", 3);
//! }
//! assert_eq!(obs.recorder().snapshot().span_count(), 2);
//! assert!(obs.registry().snapshot().to_text().contains("demo.inner.items"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

pub use flight::{FlightEvent, FlightRecorder, FlightSnapshot};
pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry,
};
pub use trace::{Recorder, TraceRecord, TraceSnapshot};

thread_local! {
    /// The stack of span ids open on this thread; the top is the parent of
    /// the next span or event.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One observability domain: an enabled flag, a metrics registry, and a
/// trace recorder sharing a clock epoch.
///
/// The process-wide instance is [`global()`]; tests build private instances
/// with [`Obs::new`] so their assertions don't race other tests.
#[derive(Debug)]
pub struct Obs {
    enabled: AtomicBool,
    tracing: AtomicBool,
    registry: Registry,
    recorder: Recorder,
    flight: flight::FlightRecorder,
    epoch: Instant,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A fresh instance with metrics and tracing both off.
    pub fn new() -> Obs {
        Obs {
            enabled: AtomicBool::new(false),
            tracing: AtomicBool::new(false),
            registry: Registry::new(),
            recorder: Recorder::default(),
            flight: flight::FlightRecorder::default(),
            epoch: Instant::now(),
        }
    }

    /// Is any instrumentation live? This is the one branch every
    /// instrument call pays when observability is off.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn metrics (and the possibility of tracing) on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Is the span recorder live? (Requires [`Obs::enabled`] too.)
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Turn span/event recording on or off. Turning tracing on also
    /// enables metrics — a span without its histogram is half a story.
    pub fn set_tracing(&self, on: bool) {
        if on {
            self.set_enabled(true);
        }
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The flight recorder: the bounded journal of structured decision
    /// events ([`flight`]).
    pub fn flight(&self) -> &flight::FlightRecorder {
        &self.flight
    }

    /// Nanoseconds since this instance was created — the epoch all trace
    /// records are stamped with.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Bump the counter `name` by `delta`. No-op when disabled.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if self.enabled() {
            self.registry.counter(name).add(delta);
        }
    }

    /// Set the gauge `name` to `v`. No-op when disabled.
    #[inline]
    pub fn gauge(&self, name: &str, v: i64) {
        if self.enabled() {
            self.registry.gauge(name).set(v);
        }
    }

    /// Record `v` into the histogram `name`. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if self.enabled() {
            self.registry.histogram(name).record(v);
        }
    }

    /// Start a timer that records its elapsed nanoseconds into the
    /// histogram `name` when dropped. When disabled this reads no clock.
    #[inline]
    pub fn timer<'a>(&'a self, name: &'static str) -> Timer<'a> {
        Timer {
            inner: if self.enabled() {
                Some((self, name, Instant::now()))
            } else {
                None
            },
        }
    }

    /// Open a span: records a trace span (when tracing) **and** feeds the
    /// histogram `name` with the span's duration (when enabled), so one
    /// call instruments a site for both exporters. When disabled this is
    /// the single-atomic-load fast path.
    #[inline]
    pub fn span<'a>(&'a self, name: &'static str) -> Span<'a> {
        if !self.enabled() {
            return Span { inner: None };
        }
        let trace_id = if self.tracing() {
            let id = self.recorder.next_span_id();
            let parent = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
            self.recorder.push(TraceRecord::SpanStart {
                id,
                parent,
                name,
                t_ns: self.now_ns(),
            });
            SPAN_STACK.with(|s| s.borrow_mut().push(id));
            id
        } else {
            0
        };
        Span {
            inner: Some(SpanInner {
                obs: self,
                name,
                trace_id,
                start: Instant::now(),
            }),
        }
    }

    /// Record a point event under the innermost open span. The `detail`
    /// closure only runs when tracing is live, so formatting costs nothing
    /// on the disabled path.
    #[inline]
    pub fn event(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if self.enabled() && self.tracing() {
            let span = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
            self.recorder.push(TraceRecord::Event {
                span,
                name,
                detail: detail(),
                t_ns: self.now_ns(),
            });
        }
    }

    /// Record a structured decision event into the flight recorder,
    /// stamped with the clock and the innermost open span. The `data`
    /// closure only runs when observability is enabled, so payload
    /// construction costs nothing on the disabled path.
    #[inline]
    pub fn flight_event(&self, kind: &'static str, data: impl FnOnce() -> Json) {
        if self.enabled() {
            let span = SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0));
            self.flight.push(self.now_ns(), span, kind, data());
        }
    }

    /// A machine-readable report of everything this instance has seen:
    /// `{"schema": "isis-obs/1", "metrics": {...}, "trace": {...},
    /// "flight": {...}}`.
    pub fn run_report(&self) -> Json {
        Json::obj([
            ("schema", Json::from("isis-obs/1")),
            ("metrics", self.registry.snapshot().to_json()),
            ("trace", self.recorder.snapshot().to_json()),
            ("flight", self.flight.snapshot().to_json()),
        ])
    }
}

struct SpanInner<'a> {
    obs: &'a Obs,
    name: &'static str,
    trace_id: u64,
    start: Instant,
}

/// RAII guard returned by [`Obs::span`]; closes the span on drop.
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        if inner.trace_id != 0 {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&id| id == inner.trace_id) {
                    stack.truncate(pos);
                }
            });
            inner.obs.recorder.push(TraceRecord::SpanEnd {
                id: inner.trace_id,
                dur_ns,
            });
        }
        if inner.obs.enabled() {
            inner.obs.registry.histogram(inner.name).record(dur_ns);
        }
    }
}

/// RAII guard returned by [`Obs::timer`]; records elapsed ns on drop.
pub struct Timer<'a> {
    inner: Option<(&'a Obs, &'static str, Instant)>,
}

impl Timer<'_> {
    /// Stop the timer and return the elapsed nanoseconds it recorded
    /// (`None` when observability was disabled at start).
    pub fn stop(mut self) -> Option<u64> {
        let (obs, name, start) = self.inner.take()?;
        let ns = start.elapsed().as_nanos() as u64;
        obs.registry.histogram(name).record(ns);
        Some(ns)
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let Some((obs, name, start)) = self.inner.take() {
            obs.registry
                .histogram(name)
                .record(start.elapsed().as_nanos() as u64);
        }
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide [`Obs`] instance.
///
/// On first use, the `ISIS_OBS` environment variable decides the initial
/// state: `1`/`on`/`true`/`yes` enables metrics, `trace` enables metrics
/// and tracing, anything else (including unset) leaves everything off —
/// the disabled fast path.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(|| {
        let obs = Obs::new();
        match std::env::var("ISIS_OBS").as_deref() {
            Ok("1") | Ok("on") | Ok("true") | Ok("yes") => obs.set_enabled(true),
            Ok("trace") => obs.set_tracing(true),
            _ => {}
        }
        obs
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_instruments_record_nothing() {
        let obs = Obs::new();
        obs.count("a.b.c", 3);
        obs.observe("a.b.ns", 10);
        obs.gauge("a.b.g", 1);
        {
            let _s = obs.span("a.b.span");
            obs.event("a.b.e", || unreachable!("detail must not run"));
        }
        assert!(obs.registry().snapshot().entries.is_empty());
        assert!(obs.recorder().snapshot().records.is_empty());
    }

    #[test]
    fn spans_nest_via_the_thread_stack() {
        let obs = Obs::new();
        obs.set_tracing(true);
        {
            let _a = obs.span("t.a.outer");
            {
                let _b = obs.span("t.b.inner");
                obs.event("t.b.note", || "hello".into());
            }
            let _c = obs.span("t.c.sibling");
        }
        let snap = obs.recorder().snapshot();
        let starts: Vec<(u64, u64, &str)> = snap
            .records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::SpanStart {
                    id, parent, name, ..
                } => Some((*id, *parent, *name)),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 3);
        let (outer_id, outer_parent, _) = starts[0];
        assert_eq!(outer_parent, 0);
        assert_eq!(starts[1].1, outer_id, "inner's parent is outer");
        assert_eq!(starts[2].1, outer_id, "sibling's parent is outer");
        // The span histograms were fed too.
        let metrics = obs.registry().snapshot();
        assert!(metrics.entries.iter().any(|(n, _)| n == "t.b.inner"));
    }

    #[test]
    fn metrics_without_tracing_skip_the_ring() {
        let obs = Obs::new();
        obs.set_enabled(true);
        {
            let _s = obs.span("m.only.span");
        }
        obs.count("m.only.count", 1);
        assert!(obs.recorder().snapshot().records.is_empty());
        let snap = obs.registry().snapshot();
        assert_eq!(snap.entries.len(), 2);
    }

    #[test]
    fn timer_records_elapsed_ns() {
        let obs = Obs::new();
        obs.set_enabled(true);
        let t = obs.timer("x.y.ns");
        let ns = t.stop().expect("enabled timer returns ns");
        let snap = obs.registry().snapshot();
        let MetricValue::Histogram(h) = &snap.entries[0].1 else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 1);
        assert!(h.max >= ns || h.count == 1);
        // Disabled timers return None and record nothing.
        let off = Obs::new();
        assert!(off.timer("x.y.ns").stop().is_none());
    }

    #[test]
    fn set_tracing_implies_enabled() {
        let obs = Obs::new();
        obs.set_tracing(true);
        assert!(obs.enabled());
        obs.set_tracing(false);
        assert!(obs.enabled(), "disabling tracing keeps metrics on");
    }

    #[test]
    fn flight_events_capture_span_context() {
        let obs = Obs::new();
        obs.flight_event("f.off", || unreachable!("payload must not build"));
        assert!(obs.flight().is_empty());
        obs.set_tracing(true);
        {
            let _s = obs.span("f.outer.span");
            obs.flight_event("f.on", || Json::obj([("k", Json::from(1u64))]));
        }
        obs.flight_event("f.root", || Json::Null);
        let snap = obs.flight().snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, "f.on");
        assert_ne!(snap.events[0].span, 0, "attributed to the open span");
        assert_eq!(snap.events[1].span, 0, "no span open at top level");
    }

    #[test]
    fn run_report_is_parseable() {
        let obs = Obs::new();
        obs.set_tracing(true);
        {
            let _s = obs.span("r.r.span");
        }
        obs.count("r.r.count", 2);
        let report = obs.run_report();
        let back = Json::parse(&report.pretty()).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("isis-obs/1"));
        assert!(back.get("metrics").unwrap().get("r.r.count").is_some());
    }
}
