//! The flight recorder: a bounded journal of structured decision events.
//!
//! Where the trace ring ([`crate::trace`]) records *that* spans happened
//! and the registry records *how often*, the flight recorder captures
//! *what the system decided*: one [`FlightEvent`] per interesting decision
//! (a commit outcome, a shipping round, a slow query, an explain capture),
//! each carrying a structured [`Json`] payload plus the span context it
//! happened under, interleaved in one global order. The ring is bounded
//! like the trace ring — oldest events are dropped and counted — so a
//! long-running process keeps the most recent history in constant memory.
//!
//! Events are appended through [`crate::Obs::flight_event`], which stamps
//! the clock and the innermost open span and only builds the payload when
//! observability is enabled. A snapshot exports three ways: an indented
//! text dump (REPL `flight dump`), a single JSON document, and JSONL — one
//! event object per line, the `out/obs/flight.jsonl` artifact format.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Default ring capacity in events.
pub const DEFAULT_CAPACITY: usize = 2048;

/// One structured decision event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reset; survives eviction).
    pub seq: u64,
    /// Nanoseconds since the owning [`crate::Obs`] epoch.
    pub t_ns: u64,
    /// Id of the innermost open span when recorded, or 0 for none.
    pub span: u64,
    /// Event kind (`crate.component.event`, e.g. `core.mvcc.commit`).
    pub kind: &'static str,
    /// Structured payload; shape is the event kind's contract.
    pub data: Json,
}

impl FlightEvent {
    /// The event as one JSON object — the JSONL line format.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("t_ns", Json::from(self.t_ns)),
            ("span", Json::from(self.span)),
            ("kind", Json::from(self.kind)),
            ("data", self.data.clone()),
        ])
    }
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<FlightEvent>,
    cap: usize,
    dropped: u64,
}

/// The bounded flight-recorder ring. See the module docs for semantics.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    next_seq: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder whose ring holds at most `cap` events (min 1).
    pub fn with_capacity(cap: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            }),
            next_seq: AtomicU64::new(1),
        }
    }

    /// Append an event, evicting the oldest if the ring is full. Returns
    /// the sequence number assigned.
    pub fn push(&self, t_ns: u64, span: u64, kind: &'static str, data: Json) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(FlightEvent {
            seq,
            t_ns,
            span,
            kind,
            data,
        });
        seq
    }

    /// Discard all events (capacity and the sequence counter are kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        ring.buf.clear();
        ring.dropped = 0;
    }

    /// Change the capacity, evicting oldest events if shrinking.
    pub fn set_capacity(&self, cap: usize) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        ring.cap = cap.max(1);
        while ring.buf.len() > ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out the current contents.
    pub fn snapshot(&self) -> FlightSnapshot {
        let ring = self.ring.lock().expect("flight ring poisoned");
        FlightSnapshot {
            events: ring.buf.iter().cloned().collect(),
            dropped: ring.dropped,
            capacity: ring.cap,
        }
    }
}

/// A copied-out view of the flight ring, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Events oldest-first.
    pub events: Vec<FlightEvent>,
    /// Events evicted since the last [`FlightRecorder::clear`].
    pub dropped: u64,
    /// Ring capacity at snapshot time.
    pub capacity: usize,
}

impl FlightSnapshot {
    /// The whole snapshot as one JSON document (schema `isis-obs/flight/1`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("isis-obs/flight/1")),
            ("dropped", Json::from(self.dropped)),
            ("capacity", Json::from(self.capacity)),
            (
                "events",
                Json::Arr(self.events.iter().map(FlightEvent::to_json).collect()),
            ),
        ])
    }

    /// JSONL export: one compact JSON object per line, oldest first — the
    /// `out/obs/flight.jsonl` artifact format. Ends with a newline when
    /// any events exist.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Human-readable dump — the REPL `flight dump` output.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "flight: {} event(s), {} dropped (capacity {})\n",
            self.events.len(),
            self.dropped,
            self.capacity
        );
        for e in &self.events {
            let at = if e.t_ns >= 1_000_000_000 {
                format!("{:.3}s", e.t_ns as f64 / 1e9)
            } else {
                format!("{:.3}ms", e.t_ns as f64 / 1e6)
            };
            out.push_str(&format!(
                "  #{} +{at} {}{}: {}\n",
                e.seq,
                e.kind,
                if e.span != 0 {
                    format!(" (span {})", e.span)
                } else {
                    String::new()
                },
                e.data.dump()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.push(i, 0, "t.e", Json::obj([("i", Json::from(i))]));
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        // Oldest evicted: survivors are the last 4 pushes, seqs 7..=10.
        assert_eq!(snap.events[0].seq, 7);
        assert_eq!(snap.events[3].seq, 10);
    }

    #[test]
    fn jsonl_has_one_parseable_line_per_event() {
        let r = FlightRecorder::default();
        r.push(5, 1, "a.b", Json::obj([("x", Json::from(1u64))]));
        r.push(9, 0, "c.d", Json::obj([("y", Json::from("z"))]));
        let jsonl = r.snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let j = Json::parse(line).unwrap();
            assert!(j.get("kind").unwrap().as_str().is_some());
            assert!(j.get("seq").unwrap().as_f64().is_some());
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let r = FlightRecorder::default();
        r.push(
            1,
            2,
            "q.r",
            Json::obj([("nested", Json::Arr(vec![Json::from(true), Json::Null]))]),
        );
        let json = r.snapshot().to_json();
        let back = Json::parse(&json.pretty()).unwrap();
        assert_eq!(back, json);
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("isis-obs/flight/1")
        );
    }

    #[test]
    fn clear_keeps_sequence_monotonic() {
        let r = FlightRecorder::default();
        let a = r.push(0, 0, "x", Json::Null);
        r.clear();
        let b = r.push(0, 0, "x", Json::Null);
        assert!(b > a);
        assert_eq!(r.snapshot().dropped, 0);
    }
}
