//! Parallel predicate evaluation.
//!
//! The ISIS evaluator is per-candidate and read-only, so a derived-subclass
//! evaluation parallelises trivially: partition the parent extent across
//! scoped worker threads, evaluate each chunk against the shared database,
//! and splice the survivors back in extent order (determinism: the result
//! set is identical to the serial evaluator's, in the same order).
//!
//! The original ISIS ran on a single-user workstation; this module is the
//! "production library" concession for modern multi-core hosts, and the
//! `parallel` bench measures when it pays.

use isis_core::{ClassId, Database, EntityId, OrderedSet, Predicate};

use crate::error::QueryError;
use crate::service::IndexService;

/// Evaluates `{ e ∈ parent | P(e) }` across `threads` workers. With
/// `threads <= 1` (or a tiny extent) this falls back to the serial
/// evaluator. Results are identical to
/// [`Database::evaluate_derived_members`], in the same order.
pub fn evaluate_derived_members_parallel(
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    threads: usize,
) -> Result<OrderedSet, QueryError> {
    db.validate_predicate(parent, None, pred)?;
    let members: Vec<EntityId> = db.members(parent)?.iter().collect();
    if threads <= 1 || members.len() < 64 {
        return db
            .evaluate_derived_members(parent, pred)
            .map_err(QueryError::from);
    }
    let chunk = members.len().div_ceil(threads);
    let chunks: Vec<&[EntityId]> = members.chunks(chunk).collect();
    let mut per_chunk: Vec<Result<Vec<EntityId>, isis_core::CoreError>> =
        Vec::with_capacity(chunks.len());
    crossbeam_utils::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move |_| -> Result<Vec<EntityId>, isis_core::CoreError> {
                    let mut keep = Vec::new();
                    for &e in *chunk {
                        if db.eval_predicate_for(e, pred, None)? {
                            keep.push(e);
                        }
                    }
                    Ok(keep)
                })
            })
            .collect();
        for h in handles {
            per_chunk.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    let mut out = OrderedSet::new();
    for part in per_chunk {
        for e in part? {
            out.insert(e);
        }
    }
    Ok(out)
}

/// Index-pruned parallel evaluation: the shared [`IndexService`] planner
/// first shrinks the candidate pool (index probe / grouping-range scan),
/// then the surviving candidates are partitioned across `threads` workers.
/// Results are identical to [`IndexService::evaluate`], in the same order.
pub fn evaluate_pruned_parallel(
    service: &IndexService,
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    threads: usize,
) -> Result<OrderedSet, QueryError> {
    db.validate_predicate(parent, None, pred)?;
    let pool = service.candidate_pool(db, pred)?;
    let members: Vec<EntityId> = match &pool {
        Some(p) => db
            .members(parent)?
            .iter()
            .filter(|e| p.contains(*e))
            .collect(),
        None => db.members(parent)?.iter().collect(),
    };
    if threads <= 1 || members.len() < 64 {
        let mut out = OrderedSet::new();
        for e in members {
            if db.eval_predicate_for(e, pred, None)? {
                out.insert(e);
            }
        }
        return Ok(out);
    }
    let chunk = members.len().div_ceil(threads);
    let chunks: Vec<&[EntityId]> = members.chunks(chunk).collect();
    let mut per_chunk: Vec<Result<Vec<EntityId>, isis_core::CoreError>> =
        Vec::with_capacity(chunks.len());
    crossbeam_utils::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move |_| -> Result<Vec<EntityId>, isis_core::CoreError> {
                    let mut keep = Vec::new();
                    for &e in *chunk {
                        if db.eval_predicate_for(e, pred, None)? {
                            keep.push(e);
                        }
                    }
                    Ok(keep)
                })
            })
            .collect();
        for h in handles {
            per_chunk.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope panicked");
    let mut out = OrderedSet::new();
    for part in per_chunk {
        for e in part? {
            out.insert(e);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::{synthetic_music, workload, Scale};

    #[test]
    fn parallel_matches_serial_exactly() {
        let mut s = synthetic_music(Scale::of(400), 21).unwrap();
        let probe = s.instrument_ids[0];
        let pred = workload::quartets_query(&mut s, probe, 4);
        let serial =
            s.db.evaluate_derived_members(s.music_groups, &pred)
                .unwrap();
        for threads in [1, 2, 4, 8] {
            let par =
                evaluate_derived_members_parallel(&s.db, s.music_groups, &pred, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn small_extents_fall_back_to_serial() {
        let im = isis_sample::instrumental_music().unwrap();
        let pred = isis_core::Predicate::always_true();
        let par = evaluate_derived_members_parallel(&im.db, im.musicians, &pred, 8).unwrap();
        assert_eq!(par.len(), im.all_musicians.len());
    }

    #[test]
    fn pruned_parallel_matches_serial_exactly() {
        let mut s = synthetic_music(Scale::of(400), 21).unwrap();
        let probe = s.instrument_ids[0];
        let pred = workload::quartets_query(&mut s, probe, 4);
        let mut svc = IndexService::new(&s.db);
        svc.ensure_index(&s.db, s.size).unwrap();
        let serial =
            s.db.evaluate_derived_members(s.music_groups, &pred)
                .unwrap();
        for threads in [1, 2, 4, 8] {
            let par =
                evaluate_pruned_parallel(&svc, &s.db, s.music_groups, &pred, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
        }
        assert!(
            svc.query_stats().index_probes >= 4,
            "the size clause must probe the shared index on every call"
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let mut s = synthetic_music(Scale::of(200), 3).unwrap();
        // An ordering atom over a multivalued map errors on some entity;
        // parallel evaluation must surface that error, not swallow it.
        let anchor = s.db.int(1);
        let ints = s.db.predefined(isis_core::BaseKind::Integers);
        let bad =
            isis_core::Predicate::dnf(vec![isis_core::Clause::new(vec![isis_core::Atom::new(
                isis_core::Map::single(s.plays),
                isis_core::CompareOp::Lt,
                isis_core::Rhs::constant(ints, [anchor]),
            )])]);
        assert!(evaluate_derived_members_parallel(&s.db, s.musicians, &bad, 4).is_err());
    }
}
