//! Parallel predicate evaluation over compiled programs.
//!
//! The ISIS evaluator is per-candidate and read-only, so a derived-subclass
//! evaluation parallelises trivially: partition the parent extent into
//! chunks, evaluate each chunk against the shared database with its own
//! [`MemoTable`], and splice the survivors back in extent order
//! (determinism: the result set is identical to the serial evaluator's, in
//! the same order — including *which* error surfaces first, because chunks
//! are disjoint ordered ranges scanned in order).
//!
//! Every path here evaluates one shared [`PredicateProgram`] compiled once
//! per call, and workers come from **persistent** pools ([`EvalPool`] for a
//! service-owned pool, a process-wide registry for the free function) so
//! repeated queries pay thread startup once, not per call. Chunking is
//! adaptive: extents too small to amortise a handoff run serially, and
//! larger extents are split into several chunks per worker to absorb
//! per-candidate cost skew. A per-call spawn baseline
//! ([`evaluate_derived_members_spawn`]) is kept for the
//! `predicate_compile` bench to measure exactly what pooling buys.
//!
//! Worker panics are contained with `catch_unwind` and surface as
//! [`QueryError::WorkerPanic`] instead of aborting the session.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

use isis_core::{ClassId, CoreError, Database, EntityId, OrderedSet, Predicate};

use crate::cache::ProgramCache;
use crate::error::QueryError;
use crate::program::{MemoTable, PredicateProgram};
use crate::service::IndexService;

/// Smallest chunk worth handing a worker: below this the per-job handoff
/// outweighs the evaluation itself.
const MIN_CHUNK: usize = 16;

/// Chunks handed out per worker — oversubscription absorbs per-candidate
/// cost skew without work stealing.
const OVERSUBSCRIBE: usize = 4;

/// Extent shard granularity: chunk boundaries land on multiples of this,
/// so every worker reads a contiguous aligned run of the extent-ordered
/// candidate slice (the same order storage keeps the entities in) instead
/// of ranges that straddle shard edges.
const SHARD: usize = 64;

/// Splits `0..len` into chunks for `threads` workers, or `None` when the
/// extent is too small for parallelism to pay (serial fallback). Replaces
/// the old hard-coded `len < 64` threshold: the number of workers actually
/// used scales down with the extent so every chunk stays ≥ [`MIN_CHUNK`].
/// Large plans are shard-aligned: the chunk size is rounded up to a
/// multiple of [`SHARD`] unless that would collapse the plan to one chunk.
fn plan_chunks(len: usize, threads: usize) -> Option<Vec<Range<usize>>> {
    if threads <= 1 || len < MIN_CHUNK * 2 {
        return None;
    }
    let usable = threads.min(len / MIN_CHUNK);
    if usable <= 1 {
        return None;
    }
    let want = usable * OVERSUBSCRIBE;
    let mut chunk = len.div_ceil(want).max(MIN_CHUNK);
    let aligned = chunk.div_ceil(SHARD) * SHARD;
    if aligned < len {
        chunk = aligned;
    }
    Some(
        (0..len)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(len))
            .collect(),
    )
}

/// The chunking decision [`evaluate_pruned_parallel`] would take for a
/// candidate list of `len` under `threads` workers, summarised for
/// EXPLAIN: `Some((chunk_count, max_chunk_size))`, or `None` for the
/// serial fallback.
pub fn chunk_decision(len: usize, threads: usize) -> Option<(usize, usize)> {
    plan_chunks(len, threads).map(|chunks| {
        let size = chunks.iter().map(|r| r.end - r.start).max().unwrap_or(0);
        (chunks.len(), size)
    })
}

/// Test-only fault injection for the parallel evaluator.
#[doc(hidden)]
pub mod test_hooks {
    use std::sync::atomic::AtomicU32;

    /// When set to an entity's raw id, any parallel chunk containing that
    /// entity panics inside the worker. Lets tests prove worker panics
    /// surface as [`crate::QueryError::WorkerPanic`] without needing a
    /// predicate that panics naturally. `u32::MAX` (the default) disables
    /// the hook; its cost when disabled is one relaxed load per chunk.
    pub static PANIC_ON_ENTITY: AtomicU32 = AtomicU32::new(u32::MAX);
}

/// Why one chunk failed to produce survivors.
enum WorkerFailure {
    Core(CoreError),
    Panic(String),
}

type ChunkResult = Result<Vec<EntityId>, WorkerFailure>;

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Evaluates one chunk with its own memo table, containing panics.
fn eval_chunk(
    db: &Database,
    prog: &PredicateProgram,
    chunk: &[EntityId],
    source: Option<EntityId>,
) -> ChunkResult {
    let run = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<EntityId>, CoreError> {
        let trap = test_hooks::PANIC_ON_ENTITY.load(std::sync::atomic::Ordering::Relaxed);
        if trap != u32::MAX && chunk.iter().any(|e| e.raw() == trap) {
            panic!("injected worker fault on entity {trap}");
        }
        let mut memo = MemoTable::new(prog);
        let keep = prog.eval_batch(db, chunk, source, &mut memo)?;
        memo.flush_obs();
        Ok(keep)
    }));
    match run {
        Ok(Ok(keep)) => Ok(keep),
        Ok(Err(e)) => Err(WorkerFailure::Core(e)),
        Err(p) => Err(WorkerFailure::Panic(panic_message(p.as_ref()))),
    }
}

/// Serial fallback sharing the same compiled program.
fn eval_serial(
    db: &Database,
    prog: &PredicateProgram,
    members: &[EntityId],
    source: Option<EntityId>,
) -> Result<OrderedSet, QueryError> {
    let mut memo = MemoTable::new(prog);
    let mut out = OrderedSet::new();
    for e in prog.eval_batch(db, members, source, &mut memo)? {
        out.insert(e);
    }
    memo.flush_obs();
    Ok(out)
}

/// Runs the chunk plan on a persistent pool, filling one result slot per
/// chunk.
fn run_on_pool(
    pool: &mut scoped_threadpool::Pool,
    db: &Database,
    prog: &PredicateProgram,
    members: &[EntityId],
    source: Option<EntityId>,
    ranges: &[Range<usize>],
) -> Vec<Option<ChunkResult>> {
    let mut results: Vec<Option<ChunkResult>> = ranges.iter().map(|_| None).collect();
    pool.scoped(|scope| {
        for (slot, range) in results.iter_mut().zip(ranges) {
            let chunk = &members[range.clone()];
            scope.execute(move || {
                *slot = Some(eval_chunk(db, prog, chunk, source));
            });
        }
    });
    results
}

/// Per-call spawn baseline: same program, same chunk plan, fresh scoped OS
/// threads every call.
fn run_spawned(
    db: &Database,
    prog: &PredicateProgram,
    members: &[EntityId],
    source: Option<EntityId>,
    ranges: &[Range<usize>],
) -> Vec<Option<ChunkResult>> {
    let mut results: Vec<Option<ChunkResult>> = ranges.iter().map(|_| None).collect();
    let _ = crossbeam_utils::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|range| {
                let chunk = &members[range.clone()];
                scope.spawn(move |_| eval_chunk(db, prog, chunk, source))
            })
            .collect();
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(match h.join() {
                Ok(r) => r,
                Err(p) => Err(WorkerFailure::Panic(panic_message(p.as_ref()))),
            });
        }
    });
    results
}

/// Splices per-chunk survivors back in extent order. Chunks are disjoint
/// ordered ranges scanned in order, so the first failing chunk reproduces
/// the serial evaluator's first error.
fn splice(results: Vec<Option<ChunkResult>>) -> Result<OrderedSet, QueryError> {
    let mut out = OrderedSet::new();
    for slot in results {
        let part = match slot {
            Some(Ok(p)) => p,
            Some(Err(WorkerFailure::Core(e))) => return Err(QueryError::Core(e)),
            Some(Err(WorkerFailure::Panic(m))) => return Err(QueryError::WorkerPanic(m)),
            None => return Err(QueryError::WorkerPanic("worker produced no result".into())),
        };
        for e in part {
            out.insert(e);
        }
    }
    Ok(out)
}

/// A lazily-initialised persistent worker pool for parallel predicate
/// evaluation. The OS threads are spawned on first use and reused across
/// queries; dropping the pool joins them. Owned by
/// [`crate::IndexService`] (sized via `SessionBuilder::eval_threads`) and
/// constructible standalone for benches and embedders.
pub struct EvalPool {
    threads: Cell<usize>,
    inner: RefCell<Option<scoped_threadpool::Pool>>,
}

impl fmt::Debug for EvalPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvalPool")
            .field("threads", &self.threads.get())
            .field("spawned", &self.inner.borrow().is_some())
            .finish()
    }
}

impl Default for EvalPool {
    fn default() -> EvalPool {
        EvalPool::new(1)
    }
}

impl EvalPool {
    /// A pool of `threads` workers (at least one); no threads are spawned
    /// until the first parallel evaluation needs them.
    pub fn new(threads: usize) -> EvalPool {
        EvalPool {
            threads: Cell::new(threads.max(1)),
            inner: RefCell::new(None),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Reconfigures the worker count. A changed width drops the spawned
    /// threads (joining them); the pool respawns lazily at the new width on
    /// the next parallel evaluation.
    pub fn set_threads(&self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.threads.get() {
            self.threads.set(threads);
            self.inner.borrow_mut().take();
        }
    }

    /// `true` once the worker threads have actually been spawned.
    pub fn is_spawned(&self) -> bool {
        self.inner.borrow().is_some()
    }

    /// The width of the spawned pool, or `None` while unspawned.
    pub fn spawned_threads(&self) -> Option<usize> {
        self.inner
            .borrow()
            .as_ref()
            .map(|p| p.thread_count() as usize)
    }

    pub(crate) fn with<R>(&self, f: impl FnOnce(&mut scoped_threadpool::Pool) -> R) -> R {
        let mut guard = self.inner.borrow_mut();
        let pool =
            guard.get_or_insert_with(|| scoped_threadpool::Pool::new(self.threads.get() as u32));
        f(pool)
    }

    /// Evaluates a compiled program over `members` (extent order), chunking
    /// across the pool's workers; small slices run serially. Results and
    /// first-error behaviour are identical to the serial evaluator's.
    pub fn evaluate(
        &self,
        db: &Database,
        prog: &PredicateProgram,
        members: &[EntityId],
        source: Option<EntityId>,
    ) -> Result<OrderedSet, QueryError> {
        match plan_chunks(members.len(), self.threads.get()) {
            None => eval_serial(db, prog, members, source),
            Some(ranges) => {
                splice(self.with(|pool| run_on_pool(pool, db, prog, members, source, &ranges)))
            }
        }
    }
}

/// Runs `f` against a process-wide persistent pool of exactly `threads`
/// workers, creating it on first use. Backs the free evaluation functions,
/// which have no service to own a pool; the mutex serialises concurrent
/// borrowers of the same pool size.
fn with_shared_pool<R>(threads: usize, f: impl FnOnce(&mut scoped_threadpool::Pool) -> R) -> R {
    static POOLS: OnceLock<Mutex<Vec<scoped_threadpool::Pool>>> = OnceLock::new();
    let mut pools = POOLS
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let pos = match pools
        .iter()
        .position(|p| p.thread_count() as usize == threads)
    {
        Some(i) => i,
        None => {
            pools.push(scoped_threadpool::Pool::new(threads as u32));
            pools.len() - 1
        }
    };
    f(&mut pools[pos])
}

/// How one of the entry points below sources its workers. All three share
/// the chunk plan, the chunk evaluator, and the splice — the only
/// differences left are the candidate slice and where threads come from.
enum Workers<'a> {
    /// The process-wide registry pool of the given width.
    Registry(usize),
    /// Fresh scoped OS threads per call (bench baseline).
    Spawn(usize),
    /// A caller-owned persistent pool.
    Pool(&'a EvalPool),
}

impl Workers<'_> {
    fn threads(&self) -> usize {
        match self {
            Workers::Registry(t) | Workers::Spawn(t) => *t,
            Workers::Pool(p) => p.threads(),
        }
    }
}

/// The single evaluation body every entry point routes through: plan
/// chunks over `members`, evaluate them on the chosen workers, splice in
/// extent order (serial fallback for small slices).
fn eval_members(
    db: &Database,
    prog: &PredicateProgram,
    members: &[EntityId],
    workers: &Workers<'_>,
) -> Result<OrderedSet, QueryError> {
    match plan_chunks(members.len(), workers.threads()) {
        None => eval_serial(db, prog, members, None),
        Some(ranges) => splice(match workers {
            Workers::Registry(t) => with_shared_pool(*t, |pool| {
                run_on_pool(pool, db, prog, members, None, &ranges)
            }),
            Workers::Spawn(_) => run_spawned(db, prog, members, None, &ranges),
            Workers::Pool(p) => p.with(|pool| run_on_pool(pool, db, prog, members, None, &ranges)),
        }),
    }
}

/// Evaluates `{ e ∈ parent | P(e) }` across `threads` persistent-pool
/// workers, compiling the predicate through `cache` (repeat queries reuse
/// the compiled program; see [`ProgramCache`]). With `threads <= 1` (or a
/// tiny extent) the compiled program runs serially. Results are identical
/// to [`Database::evaluate_derived_members`], in the same order.
pub fn evaluate_derived_members_parallel(
    cache: &ProgramCache,
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    threads: usize,
) -> Result<OrderedSet, QueryError> {
    cache.with_program(db, parent, None, pred, None, |prog| {
        let members: Vec<EntityId> = db
            .members(parent)
            .map_err(QueryError::Core)?
            .iter()
            .collect();
        eval_members(db, prog, &members, &Workers::Registry(threads))
    })
}

/// Per-call thread-spawn baseline for [`evaluate_derived_members_parallel`]:
/// identical program, chunking and semantics, but fresh scoped OS threads
/// on every call. Kept public so the `predicate_compile` bench can measure
/// exactly what the persistent pool buys.
pub fn evaluate_derived_members_spawn(
    cache: &ProgramCache,
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    threads: usize,
) -> Result<OrderedSet, QueryError> {
    cache.with_program(db, parent, None, pred, None, |prog| {
        let members: Vec<EntityId> = db
            .members(parent)
            .map_err(QueryError::Core)?
            .iter()
            .collect();
        eval_members(db, prog, &members, &Workers::Spawn(threads))
    })
}

/// Index-pruned parallel evaluation: the shared [`IndexService`] planner
/// first shrinks the candidate pool (index probe / grouping-range scan),
/// then the surviving candidates are evaluated through one program from
/// the service's [`ProgramCache`] on the service's persistent pool.
/// Results are identical to [`IndexService::evaluate`], in the same order.
pub fn evaluate_pruned_parallel(
    service: &IndexService,
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    threads: usize,
) -> Result<OrderedSet, QueryError> {
    service
        .program_cache()
        .with_plan(db, parent, None, pred, Some(service), |prog, plan| {
            let (_, members) = service
                .plan_candidates(db, parent, pred, plan, prog.batch_compatible())
                .map_err(QueryError::Core)?;
            isis_obs::global().event("query.parallel.plan", || {
                match chunk_decision(members.len(), threads) {
                    Some((n, sz)) => {
                        format!("{n} chunk(s) of ≤{sz} over {} candidates", members.len())
                    }
                    None => format!("serial fallback over {} candidates", members.len()),
                }
            });
            service.eval_pool().set_threads(threads);
            eval_members(db, prog, &members, &Workers::Pool(service.eval_pool()))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::{synthetic_music, workload, Scale};

    #[test]
    fn parallel_matches_serial_exactly() {
        let mut s = synthetic_music(Scale::of(400), 21).unwrap();
        let probe = s.instrument_ids[0];
        let pred = workload::quartets_query(&mut s, probe, 4);
        let serial =
            s.db.evaluate_derived_members(s.music_groups, &pred)
                .unwrap();
        let cache = ProgramCache::new();
        for threads in [1, 2, 4, 8] {
            let par =
                evaluate_derived_members_parallel(&cache, &s.db, s.music_groups, &pred, threads)
                    .unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
            let spawned =
                evaluate_derived_members_spawn(&cache, &s.db, s.music_groups, &pred, threads)
                    .unwrap();
            assert_eq!(spawned.as_slice(), serial.as_slice(), "threads={threads}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "eight calls, one compile");
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn small_extents_fall_back_to_serial() {
        let im = isis_sample::instrumental_music().unwrap();
        let pred = isis_core::Predicate::always_true();
        let cache = ProgramCache::new();
        let par =
            evaluate_derived_members_parallel(&cache, &im.db, im.musicians, &pred, 8).unwrap();
        assert_eq!(par.len(), im.all_musicians.len());
        assert!(plan_chunks(12, 8).is_none(), "12 candidates stay serial");
    }

    #[test]
    fn chunk_plans_cover_without_overlap() {
        for (len, threads) in [(64, 2), (100, 4), (1000, 8), (32, 2), (129, 3)] {
            match plan_chunks(len, threads) {
                None => assert!(len < MIN_CHUNK * 2 || threads.min(len / MIN_CHUNK) <= 1),
                Some(ranges) => {
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "gapless, in order");
                        assert!(r.end > r.start && r.end - r.start >= 1);
                        next = r.end;
                    }
                    assert_eq!(next, len, "plan covers the whole extent");
                }
            }
        }
    }

    #[test]
    fn large_chunk_plans_are_shard_aligned() {
        let ranges = plan_chunks(100_000, 8).unwrap();
        assert!(ranges.len() > 1);
        for r in &ranges[..ranges.len() - 1] {
            assert_eq!(r.start % SHARD, 0, "chunk start off shard: {r:?}");
            assert_eq!(r.end % SHARD, 0, "chunk end off shard: {r:?}");
        }
        assert_eq!(ranges.last().unwrap().end, 100_000);
    }

    #[test]
    fn pruned_parallel_matches_serial_exactly() {
        let mut s = synthetic_music(Scale::of(400), 21).unwrap();
        let probe = s.instrument_ids[0];
        let pred = workload::quartets_query(&mut s, probe, 4);
        let mut svc = IndexService::new(&s.db);
        svc.ensure_index(&s.db, s.size).unwrap();
        let serial =
            s.db.evaluate_derived_members(s.music_groups, &pred)
                .unwrap();
        let mut probes_after_first = 0;
        for threads in [1, 2, 4, 8] {
            let par =
                evaluate_pruned_parallel(&svc, &s.db, s.music_groups, &pred, threads).unwrap();
            assert_eq!(par.as_slice(), serial.as_slice(), "threads={threads}");
            if threads == 1 {
                probes_after_first = svc.query_stats().index_probes;
            }
        }
        assert!(
            probes_after_first >= 1,
            "the size clause must probe the shared index on the first call"
        );
        assert_eq!(
            svc.query_stats().index_probes,
            probes_after_first,
            "repeat calls at the same epoch must reuse the cached plan"
        );
    }

    #[test]
    fn service_pool_persists_across_calls() {
        let mut s = synthetic_music(Scale::of(400), 7).unwrap();
        let probe = s.instrument_ids[0];
        let pred = workload::quartets_query(&mut s, probe, 4);
        let svc = IndexService::new(&s.db);
        for _ in 0..3 {
            evaluate_pruned_parallel(&svc, &s.db, s.music_groups, &pred, 4).unwrap();
        }
        assert_eq!(
            svc.eval_pool_threads(),
            Some(4),
            "one persistent pool, reused across calls"
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        let mut s = synthetic_music(Scale::of(200), 3).unwrap();
        // An ordering atom over a multivalued map errors on some entity;
        // parallel evaluation must surface that error, not swallow it.
        let anchor = s.db.int(1);
        let ints = s.db.predefined(isis_core::BaseKind::Integers);
        let bad =
            isis_core::Predicate::dnf(vec![isis_core::Clause::new(vec![isis_core::Atom::new(
                isis_core::Map::single(s.plays),
                isis_core::CompareOp::Lt,
                isis_core::Rhs::constant(ints, [anchor]),
            )])]);
        let serial = s.db.evaluate_derived_members(s.musicians, &bad);
        let cache = ProgramCache::new();
        let par = evaluate_derived_members_parallel(&cache, &s.db, s.musicians, &bad, 4);
        match (serial, par) {
            (Err(want), Err(QueryError::Core(got))) => assert_eq!(got, want),
            (a, b) => panic!("both paths must fail with the serial error: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn worker_panics_surface_as_query_errors() {
        let mut pool = scoped_threadpool::Pool::new(2);
        // Drive splice through a panicking job directly: the public paths
        // contain panics inside eval_chunk, so forge a panicking chunk.
        let mut results: Vec<Option<ChunkResult>> = vec![None];
        pool.scoped(|scope| {
            let slot = &mut results[0];
            scope.execute(move || {
                *slot = Some(
                    match catch_unwind(|| -> Vec<EntityId> { panic!("injected fault") }) {
                        Ok(v) => Ok(v),
                        Err(p) => Err(WorkerFailure::Panic(panic_message(p.as_ref()))),
                    },
                );
            });
        });
        let err = splice(results).unwrap_err();
        assert!(matches!(err, QueryError::WorkerPanic(ref m) if m.contains("injected fault")));
    }
}
