//! A relational algebra: expression tree and evaluator.
//!
//! The operator set is the classical relationally-complete core — selection,
//! projection, product, union, difference — plus two conveniences that keep
//! compiled plans small and honest to benchmark: `Dup` (pairing a unary
//! relation with itself, used to seed map traversals) and `Join` (an
//! equijoin, expressible as product + select + project but implemented with
//! a hash table).
//!
//! Scalar comparisons inside selections are delegated to a
//! [`ScalarOracle`], implemented by the ISIS [`Database`] so that the
//! algebra can order interned INTEGER/REAL/STRING entities exactly like the
//! ISIS evaluator does.

use std::collections::HashMap;
use std::fmt;

use isis_core::{CompareOp, Database, EntityId};

use crate::error::QueryError;
use crate::relmodel::{Relation, RelationalDb, Tuple};

/// Resolves scalar (literal) comparisons between entities.
pub trait ScalarOracle {
    /// Compares two entities as literals under an ordering operator.
    /// Returns an error when either is not a comparable literal.
    fn compare(&self, a: EntityId, op: CompareOp, b: EntityId) -> Result<bool, QueryError>;
}

impl ScalarOracle for Database {
    fn compare(&self, a: EntityId, op: CompareOp, b: EntityId) -> Result<bool, QueryError> {
        let lhs: isis_core::OrderedSet = [a].into_iter().collect();
        let rhs: isis_core::OrderedSet = [b].into_iter().collect();
        self.compare_sets(&lhs, op, &rhs).map_err(QueryError::from)
    }
}

/// One operand of a selection comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Column index of the input tuple.
    Col(usize),
    /// A constant entity.
    Const(EntityId),
}

/// A selection condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Condition {
    /// Entity equality between two operands.
    Eq(Operand, Operand),
    /// Entity inequality.
    Ne(Operand, Operand),
    /// Scalar comparison through the oracle (`<`, `≤`, `>`, `≥`).
    Cmp(Operand, CompareOp, Operand),
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    fn resolve(op: &Operand, t: &[EntityId]) -> EntityId {
        match op {
            Operand::Col(i) => t[*i],
            Operand::Const(e) => *e,
        }
    }

    /// Evaluates the condition for one tuple.
    pub fn eval(&self, t: &[EntityId], oracle: &dyn ScalarOracle) -> Result<bool, QueryError> {
        Ok(match self {
            Condition::Eq(a, b) => Self::resolve(a, t) == Self::resolve(b, t),
            Condition::Ne(a, b) => Self::resolve(a, t) != Self::resolve(b, t),
            Condition::Cmp(a, op, b) => {
                oracle.compare(Self::resolve(a, t), *op, Self::resolve(b, t))?
            }
            Condition::And(a, b) => a.eval(t, oracle)? && b.eval(t, oracle)?,
            Condition::Or(a, b) => a.eval(t, oracle)? || b.eval(t, oracle)?,
            Condition::Not(a) => !a.eval(t, oracle)?,
        })
    }
}

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RaExpr {
    /// A base relation, by name.
    Base(String),
    /// σ — keep tuples satisfying the condition.
    Select(Box<RaExpr>, Condition),
    /// π — project onto the given column indices (in the given order).
    Project(Box<RaExpr>, Vec<usize>),
    /// × — cartesian product.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// ∪ — set union (arities must match).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// − — set difference (arities must match).
    Difference(Box<RaExpr>, Box<RaExpr>),
    /// Equijoin: tuples of `left` and `right` with
    /// `left[lcol] == right[rcol]`, output `left ++ right`.
    Join {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
        /// Join column in the left input.
        lcol: usize,
        /// Join column in the right input.
        rcol: usize,
    },
    /// Duplicates a unary relation into pairs `(e, e)`.
    Dup(Box<RaExpr>),
}

impl RaExpr {
    /// Convenience: a base relation.
    pub fn base(name: impl Into<String>) -> RaExpr {
        RaExpr::Base(name.into())
    }

    /// Convenience: selection.
    pub fn select(self, c: Condition) -> RaExpr {
        RaExpr::Select(Box::new(self), c)
    }

    /// Convenience: projection.
    pub fn project(self, cols: Vec<usize>) -> RaExpr {
        RaExpr::Project(Box::new(self), cols)
    }

    /// Convenience: product.
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// Convenience: union.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// Convenience: difference.
    pub fn difference(self, other: RaExpr) -> RaExpr {
        RaExpr::Difference(Box::new(self), Box::new(other))
    }

    /// Convenience: equijoin.
    pub fn join(self, other: RaExpr, lcol: usize, rcol: usize) -> RaExpr {
        RaExpr::Join {
            left: Box::new(self),
            right: Box::new(other),
            lcol,
            rcol,
        }
    }

    /// Convenience: duplicate a unary relation into (e, e) pairs.
    pub fn dup(self) -> RaExpr {
        RaExpr::Dup(Box::new(self))
    }

    /// Number of operator nodes (plan size, reported by benches).
    pub fn node_count(&self) -> usize {
        1 + match self {
            RaExpr::Base(_) => 0,
            RaExpr::Select(a, _) | RaExpr::Project(a, _) | RaExpr::Dup(a) => a.node_count(),
            RaExpr::Product(a, b) | RaExpr::Union(a, b) | RaExpr::Difference(a, b) => {
                a.node_count() + b.node_count()
            }
            RaExpr::Join { left, right, .. } => left.node_count() + right.node_count(),
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Base(n) => write!(f, "{n}"),
            RaExpr::Select(a, _) => write!(f, "σ({a})"),
            RaExpr::Project(a, cols) => write!(f, "π{cols:?}({a})"),
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Difference(a, b) => write!(f, "({a} − {b})"),
            RaExpr::Join {
                left,
                right,
                lcol,
                rcol,
            } => {
                write!(f, "({left} ⋈[{lcol}={rcol}] {right})")
            }
            RaExpr::Dup(a) => write!(f, "dup({a})"),
        }
    }
}

/// Evaluates an algebra expression over a relational database.
pub fn eval(
    expr: &RaExpr,
    rdb: &RelationalDb,
    oracle: &dyn ScalarOracle,
) -> Result<Relation, QueryError> {
    Ok(match expr {
        RaExpr::Base(name) => rdb
            .get(name)
            .cloned()
            .ok_or_else(|| QueryError::NoSuchRelation(name.clone()))?,
        RaExpr::Select(a, cond) => {
            let r = eval(a, rdb, oracle)?;
            let mut out = Relation::empty("σ", r.arity);
            for t in &r.tuples {
                if cond.eval(t, oracle)? {
                    out.tuples.insert(t.clone());
                }
            }
            out
        }
        RaExpr::Project(a, cols) => {
            let r = eval(a, rdb, oracle)?;
            for &c in cols {
                if c >= r.arity {
                    return Err(QueryError::BadPlan(format!(
                        "projection column {c} out of range for arity {}",
                        r.arity
                    )));
                }
            }
            let mut out = Relation::empty("π", cols.len());
            for t in &r.tuples {
                out.tuples.insert(cols.iter().map(|&c| t[c]).collect());
            }
            out
        }
        RaExpr::Product(a, b) => {
            let (ra, rb) = (eval(a, rdb, oracle)?, eval(b, rdb, oracle)?);
            let mut out = Relation::empty("×", ra.arity + rb.arity);
            for ta in &ra.tuples {
                for tb in &rb.tuples {
                    let mut t = ta.clone();
                    t.extend_from_slice(tb);
                    out.tuples.insert(t);
                }
            }
            out
        }
        RaExpr::Union(a, b) => {
            let (ra, rb) = (eval(a, rdb, oracle)?, eval(b, rdb, oracle)?);
            if ra.arity != rb.arity {
                return Err(QueryError::BadPlan("union arity mismatch".into()));
            }
            let mut out = ra.clone();
            out.tuples.extend(rb.tuples.iter().cloned());
            out
        }
        RaExpr::Difference(a, b) => {
            let (ra, rb) = (eval(a, rdb, oracle)?, eval(b, rdb, oracle)?);
            if ra.arity != rb.arity {
                return Err(QueryError::BadPlan("difference arity mismatch".into()));
            }
            let mut out = Relation::empty("−", ra.arity);
            for t in &ra.tuples {
                if !rb.tuples.contains(t) {
                    out.tuples.insert(t.clone());
                }
            }
            out
        }
        RaExpr::Join {
            left,
            right,
            lcol,
            rcol,
        } => {
            let (ra, rb) = (eval(left, rdb, oracle)?, eval(right, rdb, oracle)?);
            if *lcol >= ra.arity || *rcol >= rb.arity {
                return Err(QueryError::BadPlan("join column out of range".into()));
            }
            // Hash join on the smaller build side.
            let mut table: HashMap<EntityId, Vec<&Tuple>> = HashMap::new();
            for tb in &rb.tuples {
                table.entry(tb[*rcol]).or_default().push(tb);
            }
            let mut out = Relation::empty("⋈", ra.arity + rb.arity);
            for ta in &ra.tuples {
                if let Some(matches) = table.get(&ta[*lcol]) {
                    for tb in matches {
                        let mut t = ta.clone();
                        t.extend_from_slice(tb);
                        out.tuples.insert(t);
                    }
                }
            }
            out
        }
        RaExpr::Dup(a) => {
            let r = eval(a, rdb, oracle)?;
            if r.arity != 1 {
                return Err(QueryError::BadPlan("dup requires a unary relation".into()));
            }
            let mut out = Relation::empty("dup", 2);
            for t in &r.tuples {
                out.tuples.insert(vec![t[0], t[0]]);
            }
            out
        }
    })
}

/// Evaluates an algebra expression with structural memoisation: identical
/// subplans (common in compiled predicates, where `a ∩ b` expands to
/// `a − (a − b)` and difference operands repeat) are computed once.
///
/// Results are identical to [`eval`]; only repeated work is saved. The
/// `baselines` bench reports both, so the compiled-plan numbers are not
/// penalised by naive re-evaluation.
pub fn eval_cached(
    expr: &RaExpr,
    rdb: &RelationalDb,
    oracle: &dyn ScalarOracle,
) -> Result<Relation, QueryError> {
    fn go(
        expr: &RaExpr,
        rdb: &RelationalDb,
        oracle: &dyn ScalarOracle,
        cache: &mut HashMap<RaExpr, Relation>,
    ) -> Result<Relation, QueryError> {
        if let Some(hit) = cache.get(expr) {
            return Ok(hit.clone());
        }
        // Evaluate children through the cache, then the node itself by
        // substituting pre-computed children into a shallow copy is more
        // code than it saves; instead re-dispatch the operator here.
        let out = match expr {
            RaExpr::Base(_) => eval(expr, rdb, oracle)?,
            RaExpr::Select(a, cond) => {
                let r = go(a, rdb, oracle, cache)?;
                let mut out = Relation::empty("σ", r.arity);
                for t in &r.tuples {
                    if cond.eval(t, oracle)? {
                        out.tuples.insert(t.clone());
                    }
                }
                out
            }
            RaExpr::Project(a, cols) => {
                let r = go(a, rdb, oracle, cache)?;
                for &c in cols {
                    if c >= r.arity {
                        return Err(QueryError::BadPlan(format!(
                            "projection column {c} out of range for arity {}",
                            r.arity
                        )));
                    }
                }
                let mut out = Relation::empty("π", cols.len());
                for t in &r.tuples {
                    out.tuples.insert(cols.iter().map(|&c| t[c]).collect());
                }
                out
            }
            RaExpr::Product(a, b) => {
                let (ra, rb) = (go(a, rdb, oracle, cache)?, go(b, rdb, oracle, cache)?);
                let mut out = Relation::empty("×", ra.arity + rb.arity);
                for ta in &ra.tuples {
                    for tb in &rb.tuples {
                        let mut t = ta.clone();
                        t.extend_from_slice(tb);
                        out.tuples.insert(t);
                    }
                }
                out
            }
            RaExpr::Union(a, b) => {
                let (ra, rb) = (go(a, rdb, oracle, cache)?, go(b, rdb, oracle, cache)?);
                if ra.arity != rb.arity {
                    return Err(QueryError::BadPlan("union arity mismatch".into()));
                }
                let mut out = ra.clone();
                out.tuples.extend(rb.tuples.iter().cloned());
                out
            }
            RaExpr::Difference(a, b) => {
                let (ra, rb) = (go(a, rdb, oracle, cache)?, go(b, rdb, oracle, cache)?);
                if ra.arity != rb.arity {
                    return Err(QueryError::BadPlan("difference arity mismatch".into()));
                }
                let mut out = Relation::empty("−", ra.arity);
                for t in &ra.tuples {
                    if !rb.tuples.contains(t) {
                        out.tuples.insert(t.clone());
                    }
                }
                out
            }
            RaExpr::Join {
                left,
                right,
                lcol,
                rcol,
            } => {
                let (ra, rb) = (
                    go(left, rdb, oracle, cache)?,
                    go(right, rdb, oracle, cache)?,
                );
                if *lcol >= ra.arity || *rcol >= rb.arity {
                    return Err(QueryError::BadPlan("join column out of range".into()));
                }
                let mut table: HashMap<EntityId, Vec<&Tuple>> = HashMap::new();
                for tb in &rb.tuples {
                    table.entry(tb[*rcol]).or_default().push(tb);
                }
                let mut out = Relation::empty("⋈", ra.arity + rb.arity);
                for ta in &ra.tuples {
                    if let Some(matches) = table.get(&ta[*lcol]) {
                        for tb in matches {
                            let mut t = ta.clone();
                            t.extend_from_slice(tb);
                            out.tuples.insert(t);
                        }
                    }
                }
                out
            }
            RaExpr::Dup(a) => {
                let r = go(a, rdb, oracle, cache)?;
                if r.arity != 1 {
                    return Err(QueryError::BadPlan("dup requires a unary relation".into()));
                }
                let mut out = Relation::empty("dup", 2);
                for t in &r.tuples {
                    out.tuples.insert(vec![t[0], t[0]]);
                }
                out
            }
        };
        cache.insert(expr.clone(), out.clone());
        Ok(out)
    }
    let mut cache = HashMap::new();
    go(expr, rdb, oracle, &mut cache)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoOracle;
    impl ScalarOracle for NoOracle {
        fn compare(&self, _: EntityId, _: CompareOp, _: EntityId) -> Result<bool, QueryError> {
            Err(QueryError::BadPlan("no scalars in this test".into()))
        }
    }

    fn e(i: u32) -> EntityId {
        EntityId::from_raw(i)
    }

    fn fixture() -> RelationalDb {
        let mut rdb = RelationalDb::new();
        rdb.insert(Relation::from_tuples(
            "people",
            1,
            [vec![e(1)], vec![e(2)], vec![e(3)]],
        ));
        rdb.insert(Relation::from_tuples(
            "likes",
            2,
            [vec![e(1), e(10)], vec![e(1), e(11)], vec![e(2), e(10)]],
        ));
        rdb
    }

    #[test]
    fn select_project() {
        let rdb = fixture();
        let q = RaExpr::base("likes")
            .select(Condition::Eq(Operand::Col(1), Operand::Const(e(10))))
            .project(vec![0]);
        let r = eval(&q, &rdb, &NoOracle).unwrap();
        assert_eq!(r.unary_entities(), vec![e(1), e(2)]);
    }

    #[test]
    fn product_and_join_agree() {
        let rdb = fixture();
        let via_product = RaExpr::base("people")
            .product(RaExpr::base("likes"))
            .select(Condition::Eq(Operand::Col(0), Operand::Col(1)))
            .project(vec![0, 2]);
        let via_join = RaExpr::base("people")
            .join(RaExpr::base("likes"), 0, 0)
            .project(vec![0, 2]);
        let a = eval(&via_product, &rdb, &NoOracle).unwrap();
        let b = eval(&via_join, &rdb, &NoOracle).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn union_difference() {
        let rdb = fixture();
        let liked = RaExpr::base("likes").project(vec![0]);
        let not_liking = RaExpr::base("people").difference(liked.clone());
        let r = eval(&not_liking, &rdb, &NoOracle).unwrap();
        assert_eq!(r.unary_entities(), vec![e(3)]);
        let all = eval(&liked.union(not_liking), &rdb, &NoOracle).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn dup_pairs() {
        let rdb = fixture();
        let r = eval(&RaExpr::base("people").dup(), &rdb, &NoOracle).unwrap();
        assert!(r.contains(&[e(1), e(1)]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity, 2);
    }

    #[test]
    fn arity_errors() {
        let rdb = fixture();
        assert!(eval(
            &RaExpr::base("people").union(RaExpr::base("likes")),
            &rdb,
            &NoOracle
        )
        .is_err());
        assert!(eval(&RaExpr::base("likes").dup(), &rdb, &NoOracle).is_err());
        assert!(eval(&RaExpr::base("nope"), &rdb, &NoOracle).is_err());
        assert!(eval(&RaExpr::base("people").project(vec![5]), &rdb, &NoOracle).is_err());
    }

    #[test]
    fn condition_connectives() {
        let t = [e(1), e(2)];
        let c = Condition::And(
            Box::new(Condition::Eq(Operand::Col(0), Operand::Const(e(1)))),
            Box::new(Condition::Not(Box::new(Condition::Eq(
                Operand::Col(1),
                Operand::Const(e(1)),
            )))),
        );
        assert!(c.eval(&t, &NoOracle).unwrap());
        let d = Condition::Or(
            Box::new(Condition::Ne(Operand::Col(0), Operand::Const(e(1)))),
            Box::new(Condition::Eq(Operand::Col(1), Operand::Const(e(2)))),
        );
        assert!(d.eval(&t, &NoOracle).unwrap());
    }

    #[test]
    fn node_count_and_display() {
        let q = RaExpr::base("people")
            .dup()
            .join(RaExpr::base("likes"), 1, 0);
        assert_eq!(q.node_count(), 4);
        let s = q.to_string();
        assert!(s.contains("people") && s.contains("likes"));
    }
}

#[cfg(test)]
mod cached_tests {
    use super::*;
    use isis_query_test_helpers::*;

    // Local helpers (fixture duplicated from `tests` above, which is
    // private to its module).
    mod isis_query_test_helpers {
        use super::super::*;

        pub struct NoOracle;
        impl ScalarOracle for NoOracle {
            fn compare(&self, _: EntityId, _: CompareOp, _: EntityId) -> Result<bool, QueryError> {
                Err(QueryError::BadPlan("no scalars in this test".into()))
            }
        }

        pub fn e(i: u32) -> EntityId {
            EntityId::from_raw(i)
        }

        pub fn fixture() -> RelationalDb {
            let mut rdb = RelationalDb::new();
            rdb.insert(Relation::from_tuples(
                "people",
                1,
                [vec![e(1)], vec![e(2)], vec![e(3)]],
            ));
            rdb.insert(Relation::from_tuples(
                "likes",
                2,
                [vec![e(1), e(10)], vec![e(1), e(11)], vec![e(2), e(10)]],
            ));
            rdb
        }
    }

    #[test]
    fn cached_matches_uncached_on_shared_subplans() {
        let rdb = fixture();
        // a ∩ b written as a − (a − b): `liked` appears three times.
        let liked = RaExpr::base("likes").project(vec![0]);
        let expr = liked
            .clone()
            .difference(liked.clone().difference(RaExpr::base("people")))
            .union(liked);
        let a = eval(&expr, &rdb, &NoOracle).unwrap();
        let b = eval_cached(&expr, &rdb, &NoOracle).unwrap();
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn cached_matches_on_real_compiled_predicates() {
        let mut im = isis_sample::instrumental_music().unwrap();
        let pred = isis_sample::quartets_predicate(&mut im);
        let plan =
            crate::compile::compile_subclass_predicate(&im.db, im.music_groups, &pred).unwrap();
        let rdb = crate::relmodel::encode_database(&im.db).unwrap();
        let a = eval(&plan, &rdb, &im.db).unwrap();
        let b = eval_cached(&plan, &rdb, &im.db).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(b.unary_entities(), vec![im.labelle]);
    }

    #[test]
    fn cached_propagates_errors() {
        let rdb = fixture();
        assert!(eval_cached(&RaExpr::base("nope"), &rdb, &NoOracle).is_err());
        assert!(eval_cached(&RaExpr::base("likes").dup(), &rdb, &NoOracle).is_err());
    }
}
