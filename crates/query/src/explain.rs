//! EXPLAIN: the full decision record for one evaluation.
//!
//! [`IndexService::explain`] runs a predicate exactly like
//! [`IndexService::evaluate`] — same counters, same cache traffic, same
//! result bytes — and additionally captures *why* the evaluation went the
//! way it did: the program-cache outcome (hit / re-hoist / recompile /
//! miss), whether the cached access plan was reused and whether the fresh
//! one qualified for pinning, the pruned pool size, the access path chosen
//! for every atom with the optimizer's cost/selectivity estimates in
//! evaluation order, the parallel chunking decision the session-level
//! parallel path would take, and per-phase wall-clock timings.
//!
//! The record renders two ways: [`ExplainRecord::to_text`] is the REPL's
//! plan tree; [`ExplainRecord::to_json`] is the machine-readable form the
//! flight recorder journals and the slow-query log exports. The same
//! record type backs both EXPLAIN and the slow-query log
//! ([`SlowQuery`]), so a slow capture is a full plan, not just a timing.

use isis_core::{Atom, ClassId, Database, NormalForm, OrderedSet, Predicate, Result};
use isis_obs::Json;

use crate::optimizer::estimate_atom;
use crate::service::{AccessPath, EvalCapture, IndexService, MAX_PLAN_CANDIDATES};

/// The planner's decision for one atom, with the optimizer's estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomPlan {
    /// Clause index in the source predicate (0-based).
    pub clause: usize,
    /// Evaluation position within the clause after cost ordering.
    pub order: usize,
    /// The atom, rendered (`plays(e) ~ {e9}`).
    pub atom: String,
    /// The chosen access path (`index probe on plays`, `seq scan`, …).
    pub path: String,
    /// Why that path: the planner's reasoning, human-readable.
    pub why: String,
    /// Estimated per-candidate cost (optimizer units).
    pub cost: f64,
    /// Estimated truth probability for a random candidate.
    pub selectivity: f64,
}

/// Occupancy of one attribute column the evaluation touched (via a
/// single-step atom lhs), as reported by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStat {
    /// Attribute name (or `attr#N` when it no longer resolves).
    pub attr: String,
    /// Allocated dense slots (0 = the column lives in the overflow map).
    pub dense_slots: usize,
    /// Assigned values stored in the dense vector.
    pub dense_len: usize,
    /// Assigned values stored in the overflow map.
    pub overflow_len: usize,
}

/// The full plan record for one evaluation. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRecord {
    /// Parent class name the candidates were drawn from.
    pub parent: String,
    /// The predicate, rendered.
    pub predicate: String,
    /// `"dnf"` or `"cnf"`.
    pub form: &'static str,
    /// Program-cache outcome for this evaluation
    /// (`hit`/`rehoist`/`recompile`/`miss`, or `unknown` when the cache
    /// reported nothing).
    pub cache: &'static str,
    /// The cached access plan was still valid and reused as-is.
    pub plan_reused: bool,
    /// The (re)computed plan qualified for pinning in the cache.
    pub pinned: bool,
    /// Largest candidate list the cache will pin ([`MAX_PLAN_CANDIDATES`]).
    pub pin_limit: usize,
    /// Pruned pool size (`None` = no prunable atom; sequential scan).
    pub pool_len: Option<usize>,
    /// Extent-ordered candidates the program actually ran over.
    pub candidates: usize,
    /// Per-atom access paths and estimates, in evaluation order.
    pub atoms: Vec<AtomPlan>,
    /// Configured parallel-evaluation worker count (1 = serial).
    pub threads: usize,
    /// The chunking decision for this candidate count and thread count:
    /// `Some((chunks, chunk_size))`, or `None` for the serial fallback.
    pub chunks: Option<(usize, usize)>,
    /// Candidates scanned (== `candidates`; kept as the counter the
    /// registry mirrors so the record agrees with `QueryStats`).
    pub scanned: u64,
    /// Members returned.
    pub returned: u64,
    /// Wall-clock planning phase (candidate pool + ordering).
    pub plan_ns: u64,
    /// Wall-clock evaluation phase (program over candidates).
    pub eval_ns: u64,
    /// Wall-clock whole evaluation.
    pub total_ns: u64,
    /// `"batch"` when the compiled program streamed attribute columns,
    /// `"scalar"` when it interpreted per candidate.
    pub eval_mode: &'static str,
    /// Candidates per streamed run ([`crate::program::BATCH_ROWS`]);
    /// meaningful only in batch mode.
    pub batch_rows: usize,
    /// Storage occupancy of each attribute column the predicate's
    /// single-step atoms read, deduplicated, in first-use order.
    pub columns: Vec<ColumnStat>,
}

/// One capture from the slow-query log: a full [`ExplainRecord`] plus the
/// measured total and a monotonic capture sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// Capture sequence number (monotonic per service; survives eviction).
    pub seq: u64,
    /// Measured wall clock for the whole evaluation.
    pub total_ns: u64,
    /// The captured plan record.
    pub record: ExplainRecord,
}

impl SlowQuery {
    /// The capture as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("total_ns", Json::from(self.total_ns)),
            ("record", self.record.to_json()),
        ])
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ExplainRecord {
    /// A degenerate record for the session's unassisted-scan fallback
    /// (Manual refresh policy with pending changes): no service planning
    /// happened, the whole parent extent was scanned serially. The
    /// `cache` field carries the marker `"unassisted"` so both renderings
    /// make the fallback unmistakable.
    pub fn unassisted(
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
        scanned: usize,
        returned: usize,
        total_ns: u64,
    ) -> ExplainRecord {
        ExplainRecord {
            parent: db
                .class(parent)
                .map(|r| r.name.clone())
                .unwrap_or_else(|_| format!("class#{}", parent.raw())),
            predicate: pred.to_string(),
            form: match pred.form {
                NormalForm::Dnf => "dnf",
                NormalForm::Cnf => "cnf",
            },
            cache: "unassisted",
            plan_reused: false,
            pinned: false,
            pin_limit: MAX_PLAN_CANDIDATES,
            pool_len: None,
            candidates: scanned,
            atoms: Vec::new(),
            threads: 1,
            chunks: None,
            scanned: scanned as u64,
            returned: returned as u64,
            plan_ns: 0,
            eval_ns: total_ns,
            total_ns,
            eval_mode: "scalar",
            batch_rows: 0,
            columns: Vec::new(),
        }
    }

    /// The machine-readable form (schema `isis-query/explain/2`; version 2
    /// added `eval_mode`, `batch_rows`, and `columns`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from("isis-query/explain/2")),
            ("parent", Json::from(self.parent.clone())),
            ("predicate", Json::from(self.predicate.clone())),
            ("form", Json::from(self.form)),
            ("cache", Json::from(self.cache)),
            ("plan_reused", Json::from(self.plan_reused)),
            ("pinned", Json::from(self.pinned)),
            ("pin_limit", Json::from(self.pin_limit)),
            (
                "pool_len",
                match self.pool_len {
                    Some(n) => Json::from(n),
                    None => Json::Null,
                },
            ),
            ("candidates", Json::from(self.candidates)),
            (
                "atoms",
                Json::Arr(
                    self.atoms
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("clause", Json::from(a.clause)),
                                ("order", Json::from(a.order)),
                                ("atom", Json::from(a.atom.clone())),
                                ("path", Json::from(a.path.clone())),
                                ("why", Json::from(a.why.clone())),
                                ("cost", Json::from(a.cost)),
                                ("selectivity", Json::from(a.selectivity)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("threads", Json::from(self.threads)),
            (
                "chunks",
                match self.chunks {
                    Some((n, sz)) => {
                        Json::obj([("count", Json::from(n)), ("size", Json::from(sz))])
                    }
                    None => Json::Null,
                },
            ),
            ("scanned", Json::from(self.scanned)),
            ("returned", Json::from(self.returned)),
            ("eval_mode", Json::from(self.eval_mode)),
            ("batch_rows", Json::from(self.batch_rows)),
            (
                "columns",
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("attr", Json::from(c.attr.clone())),
                                ("dense_slots", Json::from(c.dense_slots)),
                                ("dense_len", Json::from(c.dense_len)),
                                ("overflow_len", Json::from(c.overflow_len)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "timings",
                Json::obj([
                    ("plan_ns", Json::from(self.plan_ns)),
                    ("eval_ns", Json::from(self.eval_ns)),
                    ("total_ns", Json::from(self.total_ns)),
                ]),
            ),
        ])
    }

    /// The plan tree — the REPL `explain` output.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "EXPLAIN {} WHERE {} [{}]\n",
            self.parent, self.predicate, self.form
        );
        let plan_note = if self.plan_reused {
            "cached plan reused"
        } else if self.pinned {
            "plan computed and pinned"
        } else {
            "plan computed, not pinned"
        };
        out.push_str(&format!(
            "├─ program cache: {} · {plan_note} (pin limit {})\n",
            self.cache, self.pin_limit
        ));
        match self.pool_len {
            Some(n) => out.push_str(&format!(
                "├─ pool: {n} candidate(s) pruned → {} in extent order\n",
                self.candidates
            )),
            None => out.push_str(&format!(
                "├─ pool: no prunable atom — sequential scan of {} candidate(s)\n",
                self.candidates
            )),
        }
        out.push_str("├─ access paths (evaluation order)\n");
        for (i, a) in self.atoms.iter().enumerate() {
            let tee = if i + 1 == self.atoms.len() {
                "└─"
            } else {
                "├─"
            };
            out.push_str(&format!(
                "│  {tee} clause {}.{}: {} → {} (cost {:.2}, sel {:.2}) — {}\n",
                a.clause, a.order, a.atom, a.path, a.cost, a.selectivity, a.why
            ));
        }
        match self.chunks {
            Some((n, sz)) => out.push_str(&format!(
                "├─ parallel: {n} chunk(s) of ≤{sz} over {} worker(s)\n",
                self.threads
            )),
            None => out.push_str(&format!(
                "├─ parallel: serial ({} worker(s) configured; extent below chunking floor)\n",
                self.threads
            )),
        }
        match self.eval_mode {
            "batch" => out.push_str(&format!(
                "├─ eval: batch (column streaming, {} rows per run)\n",
                self.batch_rows
            )),
            _ => out.push_str("├─ eval: scalar (per-candidate interpreter)\n"),
        }
        for (i, c) in self.columns.iter().enumerate() {
            let tee = if i + 1 == self.columns.len() {
                "└─"
            } else {
                "├─"
            };
            out.push_str(&format!(
                "│  {tee} column {}: {} dense in {} slot(s), {} overflow\n",
                c.attr, c.dense_len, c.dense_slots, c.overflow_len
            ));
        }
        out.push_str(&format!(
            "├─ rows: {} scanned, {} returned\n",
            self.scanned, self.returned
        ));
        out.push_str(&format!(
            "└─ timings: plan {}, eval {}, total {}\n",
            fmt_ns(self.plan_ns),
            fmt_ns(self.eval_ns),
            fmt_ns(self.total_ns)
        ));
        out
    }
}

fn attr_label(db: &Database, attr: isis_core::AttrId) -> String {
    db.attr(attr)
        .map(|r| r.name.clone())
        .unwrap_or_else(|_| format!("attr#{}", attr.raw()))
}

/// The per-clause atom report: source atoms re-ordered by the same
/// stable-sort key [`crate::program`] compiles with (runs of infallible
/// atoms permute; ordering-op atoms are barriers that keep their place).
fn clause_plans(
    svc: &IndexService,
    db: &Database,
    parent: ClassId,
    clause_idx: usize,
    atoms: &[Atom],
    form: NormalForm,
    out: &mut Vec<AtomPlan>,
) {
    struct Row<'a> {
        atom: &'a Atom,
        cost: f64,
        selectivity: f64,
        key: f64,
    }
    let mut ordered: Vec<Row> = Vec::with_capacity(atoms.len());
    let mut run: Vec<Row> = Vec::new();
    fn flush<'a>(run: &mut Vec<Row<'a>>, ordered: &mut Vec<Row<'a>>) {
        run.sort_by(|a, b| {
            a.key
                .partial_cmp(&b.key)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ordered.append(run);
    }
    for atom in atoms {
        let e = estimate_atom(db, parent, atom, Some(svc));
        if atom.op.op.is_ordering() {
            flush(&mut run, &mut ordered);
            ordered.push(Row {
                atom,
                cost: e.cost,
                selectivity: e.selectivity,
                key: 0.0,
            });
        } else {
            let key = match form {
                NormalForm::Dnf => e.selectivity * e.cost + e.cost * 0.01,
                NormalForm::Cnf => (1.0 - e.selectivity) * e.cost + e.cost * 0.01,
            };
            run.push(Row {
                atom,
                cost: e.cost,
                selectivity: e.selectivity,
                key,
            });
        }
    }
    flush(&mut run, &mut ordered);
    for (order, row) in ordered.into_iter().enumerate() {
        let (path, why) = match svc.peek_atom_path(db, row.atom) {
            AccessPath::IndexProbe(a) => (
                format!("index probe on {}", attr_label(db, a)),
                "maintained index on the atom's attribute".to_string(),
            ),
            AccessPath::GroupingRange(g) => (
                format!(
                    "grouping range {}",
                    db.grouping(g)
                        .map(|r| r.name.clone())
                        .unwrap_or_else(|_| format!("grouping#{}", g.raw()))
                ),
                "no index, but a grouping on the attribute covers the owner extent".to_string(),
            ),
            AccessPath::SeqScan => (
                "seq scan".to_string(),
                if IndexService::atom_shape(row.atom) {
                    "indexable shape but no index or covering grouping".to_string()
                } else {
                    "atom shape not indexable (negated, multi-step, or non-constant rhs)"
                        .to_string()
                },
            ),
        };
        out.push(AtomPlan {
            clause: clause_idx,
            order,
            atom: row.atom.to_string(),
            path,
            why,
            cost: row.cost,
            selectivity: row.selectivity,
        });
    }
}

impl IndexService {
    /// Evaluates `pred` over `parent` exactly like
    /// [`IndexService::evaluate`] — identical result bytes, identical
    /// counter traffic — and returns the result together with the full
    /// [`ExplainRecord`] for that one evaluation. Works with observability
    /// disabled (the record is explicitly requested); when the flight
    /// recorder is live the record is journaled as a
    /// `query.service.explain` event.
    pub fn explain(
        &self,
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
    ) -> Result<(OrderedSet, ExplainRecord)> {
        let t = std::time::Instant::now();
        let mut cap = EvalCapture::default();
        let out = self.evaluate_captured(db, parent, pred, Some(&mut cap))?;
        let total_ns = t.elapsed().as_nanos() as u64;
        let record = self.build_explain(db, parent, pred, &cap, total_ns);
        isis_obs::global().flight_event("query.service.explain", || record.to_json());
        Ok((out, record))
    }

    /// Assembles an [`ExplainRecord`] from a finished evaluation's capture.
    /// Read-only on the counters: atom paths are described through
    /// [`IndexService::peek_atom_path`], so building a record never
    /// perturbs the stats it reports on.
    pub(crate) fn build_explain(
        &self,
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
        cap: &EvalCapture,
        total_ns: u64,
    ) -> ExplainRecord {
        let mut atoms = Vec::new();
        for (ci, clause) in pred.clauses.iter().enumerate() {
            clause_plans(self, db, parent, ci, &clause.atoms, pred.form, &mut atoms);
        }
        let threads = self.eval_threads();
        // Column occupancy for every attribute a single-step lhs reads,
        // deduplicated in first-use order.
        let mut columns: Vec<ColumnStat> = Vec::new();
        let mut seen: Vec<isis_core::AttrId> = Vec::new();
        for clause in &pred.clauses {
            for atom in &clause.atoms {
                let steps = atom.lhs.steps();
                if steps.len() != 1 || seen.contains(&steps[0]) {
                    continue;
                }
                seen.push(steps[0]);
                if let Ok(rec) = db.attr(steps[0]) {
                    let s = rec.values.stats();
                    columns.push(ColumnStat {
                        attr: rec.name.clone(),
                        dense_slots: s.dense_slots,
                        dense_len: s.dense_len,
                        overflow_len: s.overflow_len,
                    });
                }
            }
        }
        ExplainRecord {
            parent: db
                .class(parent)
                .map(|r| r.name.clone())
                .unwrap_or_else(|_| format!("class#{}", parent.raw())),
            predicate: pred.to_string(),
            form: match pred.form {
                NormalForm::Dnf => "dnf",
                NormalForm::Cnf => "cnf",
            },
            cache: self
                .program_cache()
                .last_outcome()
                .map_or("unknown", crate::cache::CacheOutcome::label),
            plan_reused: cap.plan_reused,
            pinned: cap.pinned,
            pin_limit: MAX_PLAN_CANDIDATES,
            pool_len: cap.pool_len,
            candidates: cap.candidates,
            atoms,
            threads,
            chunks: crate::parallel::chunk_decision(cap.candidates, threads),
            scanned: cap.scanned,
            returned: cap.returned,
            plan_ns: cap.plan_ns,
            eval_ns: cap.eval_ns,
            total_ns,
            eval_mode: if cap.batch { "batch" } else { "scalar" },
            batch_rows: if cap.batch {
                crate::program::BATCH_ROWS
            } else {
                0
            },
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, CompareOp, Map, Rhs};
    use isis_sample::instrumental_music;

    #[test]
    fn explain_matches_evaluate_and_renders() {
        let mut im = instrumental_music().unwrap();
        let mut svc = IndexService::new(&im.db);
        svc.ensure_index(&im.db, im.plays).unwrap();
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [im.piano]),
        )])]);
        let want = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        let (got, record) = svc.explain(&im.db, im.musicians, &pred).unwrap();
        assert_eq!(got.as_slice(), want.as_slice());
        assert_eq!(record.cache, "hit", "second lookup of the same shape");
        assert!(record.plan_reused, "same epoch/cursor: cached plan reused");
        assert_eq!(record.returned as usize, got.len());
        assert_eq!(record.scanned as usize, record.candidates);
        assert_eq!(record.atoms.len(), 1);
        assert!(record.atoms[0].path.starts_with("index probe"));
        let text = record.to_text();
        assert!(text.contains("EXPLAIN musicians"), "{text}");
        assert!(text.contains("index probe on plays"), "{text}");
        let json = record.to_json();
        let back = Json::parse(&json.pretty()).unwrap();
        assert_eq!(back, json);
        assert_eq!(
            back.get("schema").unwrap().as_str(),
            Some("isis-query/explain/2")
        );
        assert_eq!(record.eval_mode, "batch", "plays ~ const streams");
        assert_eq!(record.batch_rows, crate::program::BATCH_ROWS);
        assert_eq!(record.columns.len(), 1);
        assert_eq!(record.columns[0].attr, "plays");
        assert!(text.contains("column streaming"), "{text}");
        let _ = &mut im;
    }

    #[test]
    fn explain_reports_seq_scan_reasons() {
        let mut im = instrumental_music().unwrap();
        let svc = IndexService::new(&im.db);
        // Negated atom: shape not indexable.
        let yes = im.db.boolean(true);
        let booleans = im.db.predefined(isis_core::BaseKind::Booleans);
        let mut atom = Atom::new(
            Map::single(im.popular),
            CompareOp::Match,
            Rhs::constant(booleans, [yes]),
        );
        atom.op.negated = true;
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let (_, record) = svc.explain(&im.db, im.instruments, &pred).unwrap();
        assert_eq!(record.pool_len, None);
        assert_eq!(record.atoms[0].path, "seq scan");
        assert!(record.atoms[0].why.contains("not indexable"));
        assert!(record.chunks.is_none(), "tiny extent stays serial");
    }
}
