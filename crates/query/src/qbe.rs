//! A Query-by-Example baseline (§1.1).
//!
//! The paper positions ISIS against QBE [Zloof 1975]: "a relational query
//! language that allows a user to fill example values into templates of
//! relations. The system then determines which tuples satisfy this pattern
//! and prints the specified results." This module implements that paradigm
//! over the relational encoding of the ISIS database, so benches can compare
//! the two query styles on identical data.
//!
//! A [`QbeQuery`] is a set of template rows over base relations. Each cell
//! is a constant (an example value that must match), a shared variable
//! (equal cells unify), or blank. One variable is marked `P.` (print); the
//! result is the set of its bindings. Condition-box entries add scalar
//! comparisons on variables.

use std::collections::HashMap;
use std::fmt;

use isis_core::{CompareOp, EntityId};

use crate::algebra::ScalarOracle;
use crate::error::QueryError;
use crate::relmodel::RelationalDb;

/// A variable name in a QBE template (e.g. `_x`).
pub type Var = String;

/// One cell of a template row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cell {
    /// A constant example value that must match exactly.
    Const(EntityId),
    /// A shared example element; equal names unify across rows.
    Var(Var),
    /// An unconstrained cell.
    Blank,
}

/// One template row: a relation name plus one cell per column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateRow {
    /// The base relation this row patterns.
    pub relation: String,
    /// One cell per column of the relation.
    pub cells: Vec<Cell>,
}

/// An entry of the condition box, e.g. `_n > 4`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionEntry {
    /// The constrained variable.
    pub var: Var,
    /// The comparison operator.
    pub op: CompareOp,
    /// The constant compared against.
    pub value: EntityId,
}

/// A complete QBE query.
#[derive(Debug, Clone, PartialEq)]
pub struct QbeQuery {
    /// The template rows (conjunctive pattern).
    pub rows: Vec<TemplateRow>,
    /// Condition-box entries.
    pub conditions: Vec<ConditionEntry>,
    /// The variable whose bindings are printed (`P._x`).
    pub print: Var,
}

impl QbeQuery {
    /// Builds a query, checking that the print variable occurs somewhere.
    pub fn new(
        rows: Vec<TemplateRow>,
        conditions: Vec<ConditionEntry>,
        print: impl Into<Var>,
    ) -> Result<QbeQuery, QueryError> {
        let print = print.into();
        let occurs = rows.iter().any(|r| {
            r.cells
                .iter()
                .any(|c| matches!(c, Cell::Var(v) if *v == print))
        });
        if !occurs {
            return Err(QueryError::BadTemplate(format!(
                "print variable {print:?} does not occur in any row"
            )));
        }
        Ok(QbeQuery {
            rows,
            conditions,
            print,
        })
    }

    /// Evaluates the query: enumerate consistent bindings row by row
    /// (nested-loop unification, the classic naive QBE evaluation) and
    /// collect the print variable's bindings.
    pub fn eval(
        &self,
        rdb: &RelationalDb,
        oracle: &dyn ScalarOracle,
    ) -> Result<Vec<EntityId>, QueryError> {
        let mut bindings: Vec<HashMap<Var, EntityId>> = vec![HashMap::new()];
        for row in &self.rows {
            let rel = rdb
                .get(&row.relation)
                .ok_or_else(|| QueryError::NoSuchRelation(row.relation.clone()))?;
            if rel.arity != row.cells.len() {
                return Err(QueryError::BadTemplate(format!(
                    "row over {} has {} cells, relation has arity {}",
                    row.relation,
                    row.cells.len(),
                    rel.arity
                )));
            }
            let mut next = Vec::new();
            for b in &bindings {
                for tuple in &rel.tuples {
                    if let Some(nb) = Self::unify(b, &row.cells, tuple) {
                        next.push(nb);
                    }
                }
            }
            bindings = next;
            if bindings.is_empty() {
                break;
            }
        }
        // Apply the condition box.
        let mut out = std::collections::BTreeSet::new();
        'outer: for b in &bindings {
            for cond in &self.conditions {
                let v = b.get(&cond.var).ok_or_else(|| {
                    QueryError::BadTemplate(format!("condition on unbound variable {:?}", cond.var))
                })?;
                if !oracle.compare(*v, cond.op, cond.value)? {
                    continue 'outer;
                }
            }
            if let Some(v) = b.get(&self.print) {
                out.insert(*v);
            }
        }
        Ok(out.into_iter().collect())
    }

    /// Compiles the query to a relational algebra plan: each template row
    /// becomes a base relation filtered on its constant cells, rows are
    /// combined with equijoins on shared variables, the condition box
    /// becomes scalar selections, and the plan projects the print variable.
    ///
    /// Evaluating the plan gives exactly [`QbeQuery::eval`]'s answers, but
    /// through hash joins instead of nested-loop unification — the
    /// optimised half of the QBE baseline pair in the benches.
    pub fn compile_to_algebra(&self) -> Result<crate::algebra::RaExpr, QueryError> {
        use crate::algebra::{Condition, Operand, RaExpr};
        // Columns of the accumulated plan: which variable each holds.
        let mut plan: Option<RaExpr> = None;
        let mut columns: Vec<Option<Var>> = Vec::new();
        for row in &self.rows {
            // Base relation with per-row constant and same-row-variable
            // selections.
            let mut expr = RaExpr::base(row.relation.clone());
            let mut row_vars: Vec<Option<Var>> = Vec::with_capacity(row.cells.len());
            let mut seen_in_row: HashMap<&Var, usize> = HashMap::new();
            let mut cond: Option<Condition> = None;
            let push_cond = |c: Condition, cond: &mut Option<Condition>| {
                *cond = Some(match cond.take() {
                    None => c,
                    Some(prev) => Condition::And(Box::new(prev), Box::new(c)),
                });
            };
            for (i, cell) in row.cells.iter().enumerate() {
                match cell {
                    Cell::Blank => row_vars.push(None),
                    Cell::Const(e) => {
                        push_cond(
                            Condition::Eq(Operand::Col(i), Operand::Const(*e)),
                            &mut cond,
                        );
                        row_vars.push(None);
                    }
                    Cell::Var(v) => {
                        if let Some(&j) = seen_in_row.get(v) {
                            push_cond(Condition::Eq(Operand::Col(i), Operand::Col(j)), &mut cond);
                            row_vars.push(None); // one binding column suffices
                        } else {
                            seen_in_row.insert(v, i);
                            row_vars.push(Some(v.clone()));
                        }
                    }
                }
            }
            if let Some(c) = cond {
                expr = expr.select(c);
            }
            plan = Some(match plan.take() {
                None => {
                    columns = row_vars;
                    expr
                }
                Some(acc) => {
                    // Join on the first shared variable; equate the rest.
                    let shared: Vec<(usize, usize)> = row_vars
                        .iter()
                        .enumerate()
                        .filter_map(|(i, v)| {
                            v.as_ref().and_then(|v| {
                                columns
                                    .iter()
                                    .position(|c| c.as_deref() == Some(v.as_str()))
                                    .map(|j| (j, i))
                            })
                        })
                        .collect();
                    let width = columns.len();
                    let mut joined = match shared.first() {
                        Some(&(lcol, rcol)) => acc.join(expr, lcol, rcol),
                        None => acc.product(expr), // cartesian (no shared vars)
                    };
                    let mut extra: Option<Condition> = None;
                    for &(lcol, rcol) in shared.iter().skip(1) {
                        push_cond(
                            Condition::Eq(Operand::Col(lcol), Operand::Col(width + rcol)),
                            &mut extra,
                        );
                    }
                    if let Some(c) = extra {
                        joined = joined.select(c);
                    }
                    for v in row_vars {
                        columns.push(v);
                    }
                    joined
                }
            });
        }
        let plan = plan.ok_or_else(|| QueryError::BadTemplate("no template rows".into()))?;
        // Condition box.
        let mut plan = plan;
        for cond in &self.conditions {
            let col = columns
                .iter()
                .position(|c| c.as_deref() == Some(cond.var.as_str()))
                .ok_or_else(|| {
                    QueryError::BadTemplate(format!("condition on unbound variable {:?}", cond.var))
                })?;
            plan = plan.select(Condition::Cmp(
                Operand::Col(col),
                cond.op,
                Operand::Const(cond.value),
            ));
        }
        // Project the print variable.
        let out = columns
            .iter()
            .position(|c| c.as_deref() == Some(self.print.as_str()))
            .ok_or_else(|| {
                QueryError::BadTemplate(format!("print variable {:?} unbound", self.print))
            })?;
        Ok(plan.project(vec![out]))
    }

    fn unify(
        b: &HashMap<Var, EntityId>,
        cells: &[Cell],
        tuple: &[EntityId],
    ) -> Option<HashMap<Var, EntityId>> {
        let mut nb = b.clone();
        for (cell, &val) in cells.iter().zip(tuple) {
            match cell {
                Cell::Blank => {}
                Cell::Const(c) => {
                    if *c != val {
                        return None;
                    }
                }
                Cell::Var(v) => match nb.get(v) {
                    Some(&bound) if bound != val => return None,
                    Some(_) => {}
                    None => {
                        nb.insert(v.clone(), val);
                    }
                },
            }
        }
        Some(nb)
    }
}

impl fmt::Display for QbeQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            write!(f, "{} |", row.relation)?;
            for c in &row.cells {
                match c {
                    Cell::Const(e) => write!(f, " {e} |")?,
                    Cell::Var(v) => write!(f, " _{v} |")?,
                    Cell::Blank => write!(f, "   |")?,
                }
            }
            writeln!(f)?;
        }
        for c in &self.conditions {
            writeln!(f, "COND: _{} {} {}", c.var, c.op, c.value)?;
        }
        writeln!(f, "P._{}", self.print)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relmodel::encode_database;
    use isis_sample::instrumental_music;

    fn v(s: &str) -> Cell {
        Cell::Var(s.into())
    }

    #[test]
    fn who_plays_piano() {
        let im = instrumental_music().unwrap();
        let rdb = encode_database(&im.db).unwrap();
        // attr_musicians_plays | _m | piano |   with P._m
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "attr_musicians_plays".into(),
                cells: vec![v("m"), Cell::Const(im.piano)],
            }],
            vec![],
            "m",
        )
        .unwrap();
        let got = q.eval(&rdb, &im.db).unwrap();
        let kurt = im.db.entity_by_name(im.musicians, "Kurt").unwrap();
        let fiona = im.db.entity_by_name(im.musicians, "Fiona").unwrap();
        let hana = im.db.entity_by_name(im.musicians, "Hana").unwrap();
        let mut expect = vec![kurt, fiona, hana];
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn quartets_with_pianist_via_qbe() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let rdb = encode_database(&im.db).unwrap();
        // Groups _g whose size is 4 and which have a member _m playing piano.
        let q = QbeQuery::new(
            vec![
                TemplateRow {
                    relation: "attr_music_groups_size".into(),
                    cells: vec![v("g"), Cell::Const(four)],
                },
                TemplateRow {
                    relation: "attr_music_groups_members".into(),
                    cells: vec![v("g"), v("m")],
                },
                TemplateRow {
                    relation: "attr_musicians_plays".into(),
                    cells: vec![v("m"), Cell::Const(im.piano)],
                },
            ],
            vec![],
            "g",
        )
        .unwrap();
        let got = q.eval(&rdb, &im.db).unwrap();
        assert_eq!(got, vec![im.labelle]);
    }

    #[test]
    fn condition_box() {
        let mut im = instrumental_music().unwrap();
        let two = im.db.int(2);
        let rdb = encode_database(&im.db).unwrap();
        // Groups with size > 2 — wait, sizes live as constants; bind _n.
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "attr_music_groups_size".into(),
                cells: vec![v("g"), v("n")],
            }],
            vec![ConditionEntry {
                var: "n".into(),
                op: CompareOp::Gt,
                value: two,
            }],
            "g",
        )
        .unwrap();
        let got = q.eval(&rdb, &im.db).unwrap();
        // Every group except none (all have size ≥ 3)… verify against data.
        let expect: Vec<EntityId> = {
            let mut v: Vec<EntityId> = im
                .all_groups
                .iter()
                .copied()
                .filter(|g| im.db.attr_value_set(*g, im.members).unwrap().len() > 2)
                .collect();
            v.sort();
            v
        };
        assert_eq!(got, expect);
    }

    #[test]
    fn template_errors() {
        let im = instrumental_music().unwrap();
        let rdb = encode_database(&im.db).unwrap();
        // Print variable absent.
        assert!(QbeQuery::new(vec![], vec![], "x").is_err());
        // Arity mismatch.
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "class_musicians".into(),
                cells: vec![v("m"), Cell::Blank],
            }],
            vec![],
            "m",
        )
        .unwrap();
        assert!(q.eval(&rdb, &im.db).is_err());
        // Unknown relation.
        let q2 = QbeQuery::new(
            vec![TemplateRow {
                relation: "nope".into(),
                cells: vec![v("m")],
            }],
            vec![],
            "m",
        )
        .unwrap();
        assert!(q2.eval(&rdb, &im.db).is_err());
        // Condition on unbound variable.
        let q3 = QbeQuery::new(
            vec![TemplateRow {
                relation: "class_musicians".into(),
                cells: vec![v("m")],
            }],
            vec![ConditionEntry {
                var: "zz".into(),
                op: CompareOp::Gt,
                value: EntityId::from_raw(1),
            }],
            "m",
        )
        .unwrap();
        assert!(q3.eval(&rdb, &im.db).is_err());
    }

    #[test]
    fn display_draws_templates() {
        let im = instrumental_music().unwrap();
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "attr_musicians_plays".into(),
                cells: vec![v("m"), Cell::Const(im.piano)],
            }],
            vec![],
            "m",
        )
        .unwrap();
        let s = q.to_string();
        assert!(s.contains("attr_musicians_plays"));
        assert!(s.contains("P._m"));
    }
}
// (tests continued)
#[cfg(test)]
mod compile_tests {
    use super::*;
    use crate::algebra;
    use crate::relmodel::encode_database;
    use isis_sample::instrumental_music;

    fn v(s: &str) -> Cell {
        Cell::Var(s.into())
    }

    fn assert_compiled_agrees(q: &QbeQuery, im: &isis_sample::InstrumentalMusic) {
        let rdb = encode_database(&im.db).unwrap();
        let naive = q.eval(&rdb, &im.db).unwrap();
        let plan = q.compile_to_algebra().unwrap();
        let rel = algebra::eval(&plan, &rdb, &im.db).unwrap();
        assert_eq!(rel.unary_entities(), naive, "query:\n{q}");
    }

    #[test]
    fn compiled_simple_query_agrees() {
        let im = instrumental_music().unwrap();
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "attr_musicians_plays".into(),
                cells: vec![v("m"), Cell::Const(im.piano)],
            }],
            vec![],
            "m",
        )
        .unwrap();
        assert_compiled_agrees(&q, &im);
    }

    #[test]
    fn compiled_three_way_join_agrees() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let q = QbeQuery::new(
            vec![
                TemplateRow {
                    relation: "attr_music_groups_size".into(),
                    cells: vec![v("g"), Cell::Const(four)],
                },
                TemplateRow {
                    relation: "attr_music_groups_members".into(),
                    cells: vec![v("g"), v("m")],
                },
                TemplateRow {
                    relation: "attr_musicians_plays".into(),
                    cells: vec![v("m"), Cell::Const(im.piano)],
                },
            ],
            vec![],
            "g",
        )
        .unwrap();
        assert_compiled_agrees(&q, &im);
        // And the answer is still LaBelle Musique.
        let rdb = encode_database(&im.db).unwrap();
        let plan = q.compile_to_algebra().unwrap();
        let rel = algebra::eval(&plan, &rdb, &im.db).unwrap();
        assert_eq!(rel.unary_entities(), vec![im.labelle]);
    }

    #[test]
    fn compiled_condition_box_agrees() {
        let mut im = instrumental_music().unwrap();
        let two = im.db.int(2);
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "attr_music_groups_size".into(),
                cells: vec![v("g"), v("n")],
            }],
            vec![ConditionEntry {
                var: "n".into(),
                op: CompareOp::Gt,
                value: two,
            }],
            "g",
        )
        .unwrap();
        assert_compiled_agrees(&q, &im);
    }

    #[test]
    fn compiled_repeated_var_within_row_agrees() {
        let im = instrumental_music().unwrap();
        // Musicians who are their own... no self-loops in the schema; use
        // a contrived repeated-variable pattern on the plays relation via
        // two rows sharing both columns instead.
        let q = QbeQuery::new(
            vec![
                TemplateRow {
                    relation: "attr_musicians_plays".into(),
                    cells: vec![v("m"), v("i")],
                },
                TemplateRow {
                    relation: "attr_instruments_family".into(),
                    cells: vec![v("i"), Cell::Const(im.stringed)],
                },
            ],
            vec![],
            "m",
        )
        .unwrap();
        assert_compiled_agrees(&q, &im);
    }

    #[test]
    fn compiled_cartesian_when_no_shared_vars() {
        let im = instrumental_music().unwrap();
        let q = QbeQuery::new(
            vec![
                TemplateRow {
                    relation: "class_families".into(),
                    cells: vec![v("f")],
                },
                TemplateRow {
                    relation: "class_musicians".into(),
                    cells: vec![v("m")],
                },
            ],
            vec![],
            "m",
        )
        .unwrap();
        assert_compiled_agrees(&q, &im);
    }

    #[test]
    fn compile_errors_on_bad_templates() {
        let im = instrumental_music().unwrap();
        let _ = im;
        // Unbound condition variable.
        let q = QbeQuery::new(
            vec![TemplateRow {
                relation: "class_musicians".into(),
                cells: vec![v("m")],
            }],
            vec![ConditionEntry {
                var: "zz".into(),
                op: CompareOp::Gt,
                value: EntityId::from_raw(1),
            }],
            "m",
        )
        .unwrap();
        assert!(q.compile_to_algebra().is_err());
    }
}
