//! The compiled-program cache (DESIGN.md §4e).
//!
//! [`crate::PredicateProgram`] compilation is cheap next to a full extent
//! scan but *not* next to an index-pruned navigation round: validating the
//! predicate, estimating every atom for the short-circuit reorder, and
//! hoisting constant images all walk the schema and the anchor sets, and a
//! stepwise-refinement session re-issues the same handful of predicates
//! dozens of times. [`ProgramCache`] makes the compile once per *predicate
//! shape* instead of once per *query*.
//!
//! ## Keying
//!
//! Entries are keyed by `(parent class, source class, fingerprint)`, where
//! the fingerprint is a structural 64-bit hash of the predicate (form,
//! clause layout, per-atom lhs steps / operator / rhs shape, anchor ids).
//! Fingerprint collisions are tolerated, never trusted: every entry stores
//! a clone of its predicate and a hit requires structural equality, so a
//! colliding predicate simply replaces the entry (a miss), it can never be
//! answered with the wrong program.
//!
//! ## Invalidation contract
//!
//! A cached program is revalidated on every lookup against the database's
//! delta epoch:
//!
//! * **same epoch** — pure hit, the program is served as-is;
//! * **data-only window** — the changes since the entry's epoch contain no
//!   schema edit: the program stays structurally valid (validation and the
//!   infallible-atom reorder depend only on the schema) and only its
//!   hoisted mapped-constant images can be stale, so
//!   [`PredicateProgram::ensure_fresh`] re-hoists them and the entry is
//!   re-stamped — still a hit;
//! * **schema edit, evicted window, or foreign line** — `changes_since`
//!   reports a schema change or cannot address the entry's epoch at all
//!   (the delta window slid past it, or the database was swapped for a
//!   different line whose epochs are incomparable): the entry is recompiled
//!   from scratch, counted as an invalidation.
//!
//! Errors are part of the contract: a predicate that no longer validates
//! (its attribute was deleted, say) fails recompilation with exactly the
//! error a fresh [`PredicateProgram::compile_with`] would raise, and failed
//! compiles are never cached.
//!
//! The cache is bounded ([`ProgramCache::with_capacity`]) with
//! least-recently-used eviction, so a workload generating unbounded
//! predicate shapes degrades to per-query compilation instead of growing
//! without limit.
//!
//! ## Cached access plans
//!
//! An entry can additionally carry a [`CachedPlan`] — the pruned candidate
//! pool and its extent-ordered evaluation list, which for a navigation
//! round are as repetitive as the compile itself. The cache stores the
//! plan opaquely ([`ProgramCache::with_plan`] hands `f` a `&mut
//! Option<CachedPlan>`); *validity is the caller's contract*, which is why
//! the plan records both the delta epoch and the index cursor it was
//! computed at (`IndexService` reuses it only when both still match — the
//! epoch guards the data, the cursor guards index synchronisation).
//! Whenever the entry's program is recompiled the plan is dropped with it.

use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use isis_core::{Atom, ClassId, CoreError, Database, EntityId, Map, Predicate, Rhs};

use crate::program::PredicateProgram;
use crate::service::IndexService;

/// Default entry bound: generous for interactive worksheets (a navigation
/// session touches tens of shapes, not thousands).
pub const DEFAULT_PROGRAM_CACHE_CAPACITY: usize = 128;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    parent: ClassId,
    source: Option<ClassId>,
    fingerprint: u64,
}

#[derive(Debug)]
struct CacheEntry {
    /// The exact predicate this program was compiled from; hits require
    /// structural equality so fingerprint collisions cannot serve a wrong
    /// program.
    pred: Predicate,
    prog: PredicateProgram,
    /// Delta epoch the entry was last validated at.
    epoch: u64,
    /// LRU stamp.
    last_used: u64,
    /// The caller's cached access plan, if any (see the module docs).
    plan: Option<CachedPlan>,
}

/// A cached per-predicate access plan: the pruned candidate pool summary
/// and the extent-ordered evaluation list computed from it. Valid for
/// exactly one `(delta epoch, index cursor)` pair — the owner revalidates
/// both before trusting it (see the module docs).
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Delta epoch of the database the plan was computed against.
    pub epoch: u64,
    /// Cursor of the index structure the pool was read from.
    pub cursor: u64,
    /// Size of the pruned pool (`None` = no prunable atom: the plan
    /// describes a sequential scan).
    pub pool_len: Option<usize>,
    /// Pool ∩ parent extent, in extent (storage) order — exactly the list
    /// the evaluator walks.
    pub candidates: Vec<EntityId>,
    /// Whether the program the plan was computed for streams columns
    /// (every atom batch-compatible) — recorded so EXPLAIN can report the
    /// evaluation mode a plan reuse will take without re-deriving it.
    pub batch: bool,
}

/// What the most recent lookup on a [`ProgramCache`] did — the
/// per-lookup view EXPLAIN needs, where [`ProgramCacheStats`] only
/// accumulates. (`Rehoist` counts as a hit in the stats: the program was
/// served from cache after refreshing its hoisted constant images.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Same-epoch hit: the program was served as-is.
    Hit,
    /// Data-only window: the cached program re-hoisted its constant
    /// images and was served (still a stats hit).
    Rehoist,
    /// Schema edit, evicted window, or foreign line: the entry was
    /// recompiled in place (a stats invalidation).
    Recompile,
    /// No matching entry: compiled fresh (a stats miss).
    Miss,
}

impl CacheOutcome {
    /// Short lowercase label (`hit`/`rehoist`/`recompile`/`miss`).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Rehoist => "rehoist",
            CacheOutcome::Recompile => "recompile",
            CacheOutcome::Miss => "miss",
        }
    }
}

/// Counters describing a cache's behaviour (also mirrored into the
/// process-wide [`isis_obs`] registry as `query.program.cache_*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Lookups answered from a cached program (including data-only
    /// re-hoists).
    pub hits: u64,
    /// Lookups that compiled because no matching entry existed.
    pub misses: u64,
    /// Lookups that recompiled because the entry's epoch could not be
    /// revalidated (schema edit, evicted window, foreign line).
    pub invalidations: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
}

/// A bounded cache of compiled [`PredicateProgram`]s keyed by
/// `(parent, source class, predicate fingerprint)`. See the module docs
/// for the invalidation contract.
#[derive(Debug)]
pub struct ProgramCache {
    entries: RefCell<HashMap<CacheKey, CacheEntry>>,
    capacity: usize,
    tick: Cell<u64>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    invalidations: Cell<u64>,
    evictions: Cell<u64>,
    last_outcome: Cell<Option<CacheOutcome>>,
}

impl Default for ProgramCache {
    fn default() -> ProgramCache {
        ProgramCache::with_capacity(DEFAULT_PROGRAM_CACHE_CAPACITY)
    }
}

impl ProgramCache {
    /// An empty cache with the default entry bound.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// An empty cache retaining at most `capacity` programs (0 disables
    /// caching: every lookup is a miss that compiles and is immediately
    /// dropped).
    pub fn with_capacity(capacity: usize) -> ProgramCache {
        ProgramCache {
            entries: RefCell::new(HashMap::new()),
            capacity,
            tick: Cell::new(0),
            hits: Cell::new(0),
            misses: Cell::new(0),
            invalidations: Cell::new(0),
            evictions: Cell::new(0),
            last_outcome: Cell::new(None),
        }
    }

    /// Number of cached programs.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// `true` when no programs are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// The entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/invalidation counters since construction.
    pub fn stats(&self) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
        }
    }

    /// What the most recent [`ProgramCache::with_plan`] /
    /// [`ProgramCache::with_program`] lookup did, or `None` before the
    /// first lookup. EXPLAIN reads this immediately after an evaluation to
    /// report the cache decision that evaluation actually took.
    pub fn last_outcome(&self) -> Option<CacheOutcome> {
        self.last_outcome.get()
    }

    /// Drops every cached program (the next lookup per shape recompiles).
    /// Benchmarks use this to measure the per-query-recompilation baseline
    /// through the identical code path.
    pub fn clear(&self) {
        self.entries.borrow_mut().clear();
    }

    fn bump(counter: &Cell<u64>, obs_key: &'static str) {
        counter.set(counter.get() + 1);
        isis_obs::global().count(obs_key, 1);
    }

    /// Runs `f` against the compiled program for `(parent, source, pred)`,
    /// compiling (or revalidating) it first as the module-level contract
    /// requires. `indexes` sharpens the optimizer's estimates exactly as in
    /// [`PredicateProgram::compile_with`]. The cache is borrowed for the
    /// duration of `f`, so `f` must not re-enter the same cache.
    pub fn with_program<R, E>(
        &self,
        db: &Database,
        parent: ClassId,
        source: Option<ClassId>,
        pred: &Predicate,
        indexes: Option<&IndexService>,
        f: impl FnOnce(&PredicateProgram) -> Result<R, E>,
    ) -> Result<R, E>
    where
        E: From<CoreError>,
    {
        self.with_plan(db, parent, source, pred, indexes, |prog, _| f(prog))
    }

    /// Like [`ProgramCache::with_program`], but also hands `f` the entry's
    /// cached access plan slot. `f` owns the validity check (see the
    /// module docs); the cache only guarantees the slot is emptied
    /// whenever the program it was computed alongside is recompiled.
    pub fn with_plan<R, E>(
        &self,
        db: &Database,
        parent: ClassId,
        source: Option<ClassId>,
        pred: &Predicate,
        indexes: Option<&IndexService>,
        f: impl FnOnce(&PredicateProgram, &mut Option<CachedPlan>) -> Result<R, E>,
    ) -> Result<R, E>
    where
        E: From<CoreError>,
    {
        let key = CacheKey {
            parent,
            source,
            fingerprint: predicate_fingerprint(pred),
        };
        let tick = self.tick.get() + 1;
        self.tick.set(tick);
        let mut entries = self.entries.borrow_mut();
        let epoch = db.delta_epoch();
        if let Some(entry) = entries.get_mut(&key).filter(|e| e.pred == *pred) {
            if entry.epoch == epoch {
                Self::bump(&self.hits, "query.program.cache_hits");
                self.last_outcome.set(Some(CacheOutcome::Hit));
            } else {
                match db.changes_since(entry.epoch) {
                    Some(cs) if !cs.has_schema_changes() => {
                        // Data-only window: the structure is still valid,
                        // only mapped constant images can be stale.
                        entry.prog.ensure_fresh(db).map_err(E::from)?;
                        entry.epoch = epoch;
                        Self::bump(&self.hits, "query.program.cache_hits");
                        isis_obs::global().count("query.program.cache_rehoists", 1);
                        self.last_outcome.set(Some(CacheOutcome::Rehoist));
                    }
                    _ => {
                        // Schema edit, evicted window, or a foreign
                        // database line: recompile from scratch.
                        entry.prog =
                            PredicateProgram::compile_with(db, parent, source, pred, indexes)
                                .map_err(E::from)?;
                        entry.epoch = epoch;
                        entry.plan = None;
                        Self::bump(&self.invalidations, "query.program.cache_invalidations");
                        self.last_outcome.set(Some(CacheOutcome::Recompile));
                    }
                }
            }
            entry.last_used = tick;
            let CacheEntry { prog, plan, .. } = entry;
            return f(prog, plan);
        }
        // Miss (or fingerprint collision — the colliding occupant is
        // replaced wholesale below, so a collision can only cost a
        // recompile, never a wrong answer). Failed compiles are not cached,
        // so error identity with an uncached compile is exact.
        let prog =
            PredicateProgram::compile_with(db, parent, source, pred, indexes).map_err(E::from)?;
        Self::bump(&self.misses, "query.program.cache_misses");
        self.last_outcome.set(Some(CacheOutcome::Miss));
        if self.capacity == 0 {
            return f(&prog, &mut None);
        }
        if entries.len() >= self.capacity && !entries.contains_key(&key) {
            if let Some((&victim, _)) = entries.iter().min_by_key(|(_, e)| e.last_used) {
                entries.remove(&victim);
                Self::bump(&self.evictions, "query.program.cache_evictions");
            }
        }
        let fresh = CacheEntry {
            pred: pred.clone(),
            prog,
            epoch,
            last_used: tick,
            plan: None,
        };
        let entry = match entries.entry(key) {
            Entry::Occupied(o) => {
                let slot = o.into_mut();
                *slot = fresh;
                slot
            }
            Entry::Vacant(v) => v.insert(fresh),
        };
        let CacheEntry { prog, plan, .. } = entry;
        f(prog, plan)
    }
}

/// FNV-1a over a structural encoding of the predicate: normal form, clause
/// layout, and per atom the lhs steps, operator, and rhs shape (variant
/// tag, class, anchor ids, map steps). Two structurally equal predicates
/// always fingerprint equal; collisions between different predicates are
/// possible and handled by the cache's equality check.
pub fn predicate_fingerprint(pred: &Predicate) -> u64 {
    let mut h = Fnv::new();
    h.u8(match pred.form {
        isis_core::NormalForm::Dnf => 0,
        isis_core::NormalForm::Cnf => 1,
    });
    h.u32(pred.clauses.len() as u32);
    for clause in &pred.clauses {
        h.u32(clause.atoms.len() as u32);
        for atom in &clause.atoms {
            hash_atom(&mut h, atom);
        }
    }
    h.finish()
}

fn hash_map_steps(h: &mut Fnv, map: &Map) {
    h.u32(map.steps().len() as u32);
    for &a in map.steps() {
        h.u32(a.raw());
    }
}

fn hash_atom(h: &mut Fnv, atom: &Atom) {
    hash_map_steps(h, &atom.lhs);
    h.u8(atom.op.op as u8);
    h.u8(atom.op.negated as u8);
    match &atom.rhs {
        Rhs::SelfMap(m) => {
            h.u8(0);
            hash_map_steps(h, m);
        }
        Rhs::Constant {
            class,
            anchors,
            map,
        } => {
            h.u8(1);
            h.u32(class.raw());
            h.u32(anchors.len() as u32);
            for a in anchors.iter() {
                h.u32(a.raw());
            }
            hash_map_steps(h, map);
        }
        Rhs::SourceMap(m) => {
            h.u8(2);
            hash_map_steps(h, m);
        }
    }
}

/// Minimal FNV-1a 64 accumulator (no std Hasher: the encoding must stay
/// stable across Rust versions so fingerprints are comparable over time).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, CompareOp, EntityId, OrderedSet};
    use isis_sample::{instrumental_music, quartets_predicate};

    fn plays_pred(im: &isis_sample::InstrumentalMusic, anchor: EntityId) -> Predicate {
        Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [anchor]),
        )])])
    }

    #[test]
    fn fingerprints_are_structural() {
        let mut im = instrumental_music().unwrap();
        let a = plays_pred(&im, im.piano);
        let b = plays_pred(&im, im.piano);
        assert_eq!(predicate_fingerprint(&a), predicate_fingerprint(&b));
        let violin = im.db.entity_by_name(im.instruments, "violin").unwrap();
        let c = plays_pred(&im, violin);
        assert_ne!(predicate_fingerprint(&a), predicate_fingerprint(&c));
        // Switching the normal form changes the fingerprint too.
        let mut d = a.clone();
        d.switch_and_or();
        assert_ne!(predicate_fingerprint(&a), predicate_fingerprint(&d));
        let q = quartets_predicate(&mut im);
        assert_ne!(predicate_fingerprint(&a), predicate_fingerprint(&q));
    }

    #[test]
    fn repeated_queries_hit() {
        let im = instrumental_music().unwrap();
        let cache = ProgramCache::new();
        let pred = plays_pred(&im, im.piano);
        for _ in 0..3 {
            let got: OrderedSet = cache
                .with_program(&im.db, im.musicians, None, &pred, None, |prog| {
                    prog.evaluate_extent(&im.db, im.musicians)
                })
                .unwrap();
            let want = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
            assert!(got.set_eq(&want));
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn data_commits_revalidate_without_recompiling() {
        let mut im = instrumental_music().unwrap();
        let cache = ProgramCache::new();
        // A mapped constant: instruments in the same family as the flute.
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(im.family),
            CompareOp::SetEq,
            Rhs::Constant {
                class: im.instruments,
                anchors: [im.flute].into_iter().collect(),
                map: Map::single(im.family),
            },
        )])]);
        let before: OrderedSet = cache
            .with_program(&im.db, im.instruments, None, &pred, None, |p| {
                p.evaluate_extent(&im.db, im.instruments)
            })
            .unwrap();
        // Data-only edit that moves the hoisted image.
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        let after: OrderedSet = cache
            .with_program(&im.db, im.instruments, None, &pred, None, |p| {
                p.evaluate_extent(&im.db, im.instruments)
            })
            .unwrap();
        let want = im
            .db
            .evaluate_derived_members(im.instruments, &pred)
            .unwrap();
        assert!(after.set_eq(&want));
        assert_ne!(before.as_slice(), after.as_slice());
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0, "data-only window must re-hoist");
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    #[test]
    fn schema_edits_invalidate() {
        let mut im = instrumental_music().unwrap();
        let cache = ProgramCache::new();
        let pred = plays_pred(&im, im.piano);
        cache
            .with_program(&im.db, im.musicians, None, &pred, None, |p| {
                p.evaluate_extent(&im.db, im.musicians)
            })
            .unwrap();
        im.db.create_baseclass("venues").unwrap();
        cache
            .with_program(&im.db, im.musicians, None, &pred, None, |p| {
                p.evaluate_extent(&im.db, im.musicians)
            })
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1, "schema edit must recompile");
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let im = instrumental_music().unwrap();
        let cache = ProgramCache::with_capacity(2);
        let anchors: Vec<EntityId> = im.db.members(im.instruments).unwrap().iter().collect();
        for &a in anchors.iter().take(4) {
            let pred = plays_pred(&im, a);
            cache
                .with_program(&im.db, im.musicians, None, &pred, None, |p| {
                    p.evaluate_extent(&im.db, im.musicians)
                })
                .unwrap();
        }
        assert!(cache.len() <= 2);
        assert_eq!(cache.stats().evictions, 2);
        // Capacity 0 disables caching entirely.
        let off = ProgramCache::with_capacity(0);
        let pred = plays_pred(&im, anchors[0]);
        for _ in 0..2 {
            off.with_program(&im.db, im.musicians, None, &pred, None, |p| {
                p.evaluate_extent(&im.db, im.musicians)
            })
            .unwrap();
        }
        assert_eq!(off.len(), 0);
        assert_eq!(off.stats().misses, 2);
    }
}
