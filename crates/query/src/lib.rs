//! # isis-query
//!
//! Query processing for the ISIS reproduction, beyond the per-candidate
//! evaluator built into `isis-core`:
//!
//! * [`relmodel`] — a minimal relational model and the standard relational
//!   encoding of an ISIS database;
//! * [`algebra`] — a relationally-complete algebra (σ, π, ×, ∪, −, plus
//!   hash equijoin) with an evaluator;
//! * [`compile`] — compiles ISIS predicates into algebra plans, making the
//!   paper's "full power of relational algebra" claim machine-checkable;
//! * [`qbe`] — a Query-by-Example baseline, the paper's §1.1 comparator;
//! * [`index`] — inverted attribute indexes (groupings made operational)
//!   and an index-pruning predicate evaluator;
//! * [`incremental`] — incremental maintenance of derived subclasses by
//!   inverse map traversal, fed by the core delta log;
//! * [`manager`] — an [`IndexManager`] that keeps a set of attribute
//!   indexes current by consuming [`isis_core::ChangeSet`]s;
//! * [`service`] — the shared [`IndexService`]: one maintained index set
//!   serving the evaluator, the optimizer, and derived-class maintenance,
//!   with an access-path planner and observable [`QueryStats`];
//! * [`optimizer`] — a short-circuit atom/clause reordering optimizer with
//!   index-informed selectivity estimates;
//! * [`program`] — compiled predicate programs: constant hoisting,
//!   shared-map memoization, and barrier-respecting atom reordering, the
//!   artifact every serial/parallel/delta evaluation path shares;
//! * [`parallel`] — parallel predicate evaluation over a lazily-spawned
//!   persistent worker pool with adaptive chunking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod cache;
pub mod compile;
pub mod error;
pub mod explain;
pub mod incremental;
pub mod index;
pub mod manager;
pub mod optimizer;
pub mod parallel;
pub mod program;
pub mod qbe;
pub mod relmodel;
pub mod service;

pub use algebra::{eval_cached, Condition, Operand, RaExpr, ScalarOracle};
pub use cache::{predicate_fingerprint, CacheOutcome, CachedPlan, ProgramCache, ProgramCacheStats};
pub use compile::{
    compile_and_eval, compile_attr_derivation, compile_map, compile_subclass_predicate, eval_plan,
};
pub use error::QueryError;
pub use explain::{AtomPlan, ColumnStat, ExplainRecord, SlowQuery};
pub use incremental::DerivedMaintainer;
pub use index::{AttrIndex, IndexLookup, IndexedEvaluator};
pub use manager::{IndexManager, IndexStats};
pub use optimizer::{estimate_atom, optimize, AtomEstimate, Explain};
pub use parallel::{
    chunk_decision, evaluate_derived_members_parallel, evaluate_derived_members_spawn,
    evaluate_pruned_parallel, EvalPool,
};
pub use program::{MemoTable, PredicateProgram, BATCH_ROWS};
pub use qbe::{Cell, ConditionEntry, QbeQuery, TemplateRow};
pub use relmodel::{encode_database, Relation, RelationalDb};
pub use service::{AccessPath, IndexService, QueryStats};
