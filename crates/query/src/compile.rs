//! Compiling ISIS predicates into relational algebra.
//!
//! This is the executable form of the paper's claim that ISIS predicates
//! "provide the full power of relational algebra" (§2): every derived-
//! subclass predicate compiles to a plan over the relational encoding of
//! the database, and property tests verify that the compiled plan selects
//! exactly the entities the ISIS evaluator selects.
//!
//! Compilation scheme, for a predicate over value class `V` with domain
//! relation `D = class_V`:
//!
//! * a map image becomes `dup(D)` followed by one equijoin per attribute
//!   step, kept as a binary relation `(e, v)`;
//! * a constant right-hand side becomes `D × π_v(map-image of the anchors)`;
//! * set operators become difference/projection combinations, e.g.
//!   `L ⊇ R  ⇔  e ∈ D − π_e(R − L)`;
//! * negation is complement against `D`; clauses are intersections (DNF) or
//!   unions (CNF) of atom results, predicates the dual.
//!
//! Ordering atoms compile to *exists* semantics (some pair of witnesses
//! compares true); this coincides with ISIS semantics exactly when both
//! images are singletons — which ISIS itself enforces by erroring otherwise.

use isis_core::{Atom, ClassId, CompareOp, Database, EntityId, Map, NormalForm, Predicate, Rhs};

use crate::algebra::{Condition, Operand, RaExpr};
use crate::error::QueryError;
use crate::relmodel::{attr_rel_name, class_rel_name, encode_database, RelationalDb};

/// Compiles the image of `map` over the members of `class` into a binary
/// `(start, end)` relation expression.
pub fn compile_map(db: &Database, class: ClassId, map: &Map) -> Result<RaExpr, QueryError> {
    // Type-check first so the plan is guaranteed well-formed.
    db.trace_map(class, map)?;
    let mut expr = RaExpr::base(class_rel_name(db, class)?).dup();
    for &step in map.steps() {
        let attr_rel = RaExpr::base(attr_rel_name(db, step)?);
        // (e, cur) ⋈ (cur, v) → (e, cur, cur, v) → (e, v)
        expr = expr.join(attr_rel, 1, 0).project(vec![0, 3]);
    }
    Ok(expr)
}

/// Compiles a selection of specific entities out of their class relation.
fn compile_anchor_set(
    db: &Database,
    class: ClassId,
    anchors: &isis_core::OrderedSet,
) -> Result<RaExpr, QueryError> {
    let base = RaExpr::base(class_rel_name(db, class)?);
    let mut cond: Option<Condition> = None;
    for a in anchors.iter() {
        let c = Condition::Eq(Operand::Col(0), Operand::Const(a));
        cond = Some(match cond {
            None => c,
            Some(prev) => Condition::Or(Box::new(prev), Box::new(c)),
        });
    }
    match cond {
        // An empty anchor set selects nothing.
        None => Ok(base.clone().difference(base)),
        Some(c) => Ok(base.select(c)),
    }
}

struct Compiler<'a> {
    db: &'a Database,
    parent: ClassId,
}

impl<'a> Compiler<'a> {
    fn domain(&self) -> Result<RaExpr, QueryError> {
        Ok(RaExpr::base(class_rel_name(self.db, self.parent)?))
    }

    /// Intersection of two unary relations: `a ∩ b = a − (a − b)`.
    fn intersect(a: RaExpr, b: RaExpr) -> RaExpr {
        a.clone().difference(a.difference(b))
    }

    fn compile_rhs(&self, rhs: &Rhs) -> Result<RaExpr, QueryError> {
        match rhs {
            Rhs::SelfMap(m) => compile_map(self.db, self.parent, m),
            Rhs::Constant {
                class,
                anchors,
                map,
            } => {
                let anchored = compile_anchor_set(self.db, *class, anchors)?;
                // Map image of the anchors, seeded from the anchored subset.
                let mut img = anchored.dup();
                for &step in map.steps() {
                    let attr_rel = RaExpr::base(attr_rel_name(self.db, step)?);
                    img = img.join(attr_rel, 1, 0).project(vec![0, 3]);
                }
                let values = img.project(vec![1]);
                // Pair every candidate with every constant value.
                Ok(self.domain()?.product(values))
            }
            Rhs::SourceMap(_) => Err(QueryError::Unsupported(
                "source-entity atoms (form c) compile only within derived-attribute plans".into(),
            )),
        }
    }

    fn compile_atom(&self, atom: &Atom) -> Result<RaExpr, QueryError> {
        let d = self.domain()?;
        let l = compile_map(self.db, self.parent, &atom.lhs)?;
        let r = self.compile_rhs(&atom.rhs)?;
        let sup = || -> RaExpr {
            // e such that L(e) ⊇ R(e):  D − π_e(R − L)
            d.clone()
                .difference(r.clone().difference(l.clone()).project(vec![0]))
        };
        let sub = || -> RaExpr {
            d.clone()
                .difference(l.clone().difference(r.clone()).project(vec![0]))
        };
        let base = match atom.op.op {
            CompareOp::Match => l
                .clone()
                .join(r.clone(), 0, 0)
                .select(Condition::Eq(Operand::Col(1), Operand::Col(3)))
                .project(vec![0]),
            CompareOp::Superset => sup(),
            CompareOp::Subset => sub(),
            CompareOp::SetEq => Self::intersect(sub(), sup()),
            CompareOp::ProperSubset => {
                // ⊆ and ∃ witness in R − L.
                Self::intersect(sub(), r.clone().difference(l.clone()).project(vec![0]))
            }
            CompareOp::ProperSuperset => {
                Self::intersect(sup(), l.clone().difference(r.clone()).project(vec![0]))
            }
            op @ (CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge) => l
                .join(r, 0, 0)
                .select(Condition::Cmp(Operand::Col(1), op, Operand::Col(3)))
                .project(vec![0]),
        };
        Ok(if atom.op.negated {
            d.difference(base)
        } else {
            base
        })
    }

    fn compile_clause(&self, atoms: &[Atom], form: NormalForm) -> Result<RaExpr, QueryError> {
        let d = self.domain()?;
        let parts: Vec<RaExpr> = atoms
            .iter()
            .map(|a| self.compile_atom(a))
            .collect::<Result<_, _>>()?;
        Ok(match form {
            // DNF clause: AND of atoms. Empty AND is true → the domain.
            NormalForm::Dnf => parts.into_iter().fold(d, Self::intersect),
            // CNF clause: OR of atoms. Empty OR is false → empty relation.
            NormalForm::Cnf => {
                let empty = d.clone().difference(d);
                parts.into_iter().fold(empty, |acc, p| acc.union(p))
            }
        })
    }

    fn compile_predicate(&self, pred: &Predicate) -> Result<RaExpr, QueryError> {
        let d = self.domain()?;
        let clauses: Vec<RaExpr> = pred
            .clauses
            .iter()
            .map(|c| self.compile_clause(&c.atoms, pred.form))
            .collect::<Result<_, _>>()?;
        Ok(match pred.form {
            // DNF: OR of clauses. Empty OR is false.
            NormalForm::Dnf => {
                let empty = d.clone().difference(d);
                clauses.into_iter().fold(empty, |acc, c| acc.union(c))
            }
            // CNF: AND of clauses. Empty AND is true → the domain.
            NormalForm::Cnf => clauses.into_iter().fold(d, Self::intersect),
        })
    }
}

/// Compiles a derived-subclass predicate over `parent` into a relational
/// algebra plan producing the unary relation of selected entities.
///
/// ```
/// use isis_core::{Atom, Clause, CompareOp, Database, Map, Multiplicity, Predicate, Rhs};
/// use isis_query::{compile_and_eval, compile_subclass_predicate};
///
/// let mut db = Database::new("demo");
/// let people = db.create_baseclass("people").unwrap();
/// let pets = db.create_baseclass("pets").unwrap();
/// let owns = db.create_attribute(people, "owns", pets, Multiplicity::Multi).unwrap();
/// let rex = db.insert_entity(pets, "Rex").unwrap();
/// let ada = db.insert_entity(people, "Ada").unwrap();
/// db.assign_multi(ada, owns, [rex]).unwrap();
///
/// let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
///     Map::single(owns),
///     CompareOp::Match,
///     Rhs::constant(pets, [rex]),
/// )])]);
/// // The compiled plan and the ISIS evaluator agree.
/// let plan = compile_subclass_predicate(&db, people, &pred).unwrap();
/// assert!(plan.node_count() > 1);
/// assert_eq!(compile_and_eval(&db, people, &pred).unwrap(), vec![ada]);
/// ```
pub fn compile_subclass_predicate(
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
) -> Result<RaExpr, QueryError> {
    db.validate_predicate(parent, None, pred)?;
    Compiler { db, parent }.compile_predicate(pred)
}

/// Compiles a derived-*attribute* definition into a plan producing the
/// binary relation `(x, value)` — the attribute's full extension.
///
/// * A hand-operator derivation `A(x) = map(x)` is exactly the map image
///   over the owner class.
/// * A predicate derivation `A(x) = { e ∈ V | P_x(e) }` works over the
///   pair domain `class_C × class_V`; form-(c) atoms (`map(x)`) join the
///   source map's image against the candidate map's image.
///
/// Together with [`compile_subclass_predicate`] this covers every predicate
/// shape §2 defines, extending the machine-checked relational-completeness
/// claim to derived attributes (see `attr_derivation_compiles` tests).
pub fn compile_attr_derivation(
    db: &Database,
    attr: isis_core::AttrId,
) -> Result<RaExpr, QueryError> {
    let rec = db.attr(attr)?;
    let owner = rec.owner;
    let value_class = match rec.value_class {
        isis_core::ValueClass::Class(c) => c,
        isis_core::ValueClass::Grouping(_) => {
            return Err(QueryError::Unsupported(
                "derivations onto grouping-ranged attributes".into(),
            ))
        }
    };
    let derivation = rec
        .derivation
        .clone()
        .ok_or_else(|| QueryError::Unsupported("attribute has no derivation to compile".into()))?;
    match derivation {
        isis_core::AttrDerivation::Assign(map) => compile_map(db, owner, &map),
        isis_core::AttrDerivation::Predicate(pred) => {
            db.validate_predicate(value_class, Some(owner), &pred)?;
            PairCompiler {
                db,
                owner,
                value_class,
            }
            .compile_predicate(&pred)
        }
    }
}

/// Compiles derived-attribute predicates over the pair domain
/// `(x ∈ owner, e ∈ value_class)`. All intermediate relations are binary
/// `(x, e)`.
struct PairCompiler<'a> {
    db: &'a Database,
    owner: ClassId,
    value_class: ClassId,
}

impl PairCompiler<'_> {
    fn domain(&self) -> Result<RaExpr, QueryError> {
        Ok(RaExpr::base(class_rel_name(self.db, self.owner)?)
            .product(RaExpr::base(class_rel_name(self.db, self.value_class)?)))
    }

    fn intersect(a: RaExpr, b: RaExpr) -> RaExpr {
        a.clone().difference(a.difference(b))
    }

    /// The ternary relation `(x, e, v)` of right-hand-side witnesses for
    /// each pair, plus the matching `(x, e, v)` for the left-hand side.
    fn lhs_triples(&self, atom: &Atom) -> Result<RaExpr, QueryError> {
        // L(e, v) × class_C(x) → (e, v, x) → (x, e, v)
        Ok(compile_map(self.db, self.value_class, &atom.lhs)?
            .product(RaExpr::base(class_rel_name(self.db, self.owner)?))
            .project(vec![2, 0, 1]))
    }

    fn rhs_triples(&self, rhs: &Rhs) -> Result<RaExpr, QueryError> {
        Ok(match rhs {
            // R(e, v) × class_C(x) → (x, e, v)
            Rhs::SelfMap(m) => compile_map(self.db, self.value_class, m)?
                .product(RaExpr::base(class_rel_name(self.db, self.owner)?))
                .project(vec![2, 0, 1]),
            // Constant values × domain pairs → (x, e, v)
            Rhs::Constant {
                class,
                anchors,
                map,
            } => {
                let anchored = compile_anchor_set(self.db, *class, anchors)?;
                let mut img = anchored.dup();
                for &step in map.steps() {
                    let attr_rel = RaExpr::base(attr_rel_name(self.db, step)?);
                    img = img.join(attr_rel, 1, 0).project(vec![0, 3]);
                }
                let values = img.project(vec![1]);
                self.domain()?.product(values)
            }
            // S(x, v) × class_V(e) → (x, v, e) → (x, e, v)
            Rhs::SourceMap(m) => compile_map(self.db, self.owner, m)?
                .product(RaExpr::base(class_rel_name(self.db, self.value_class)?))
                .project(vec![0, 2, 1]),
        })
    }

    fn compile_atom(&self, atom: &Atom) -> Result<RaExpr, QueryError> {
        let d = self.domain()?;
        let l = self.lhs_triples(atom)?;
        let r = self.rhs_triples(&atom.rhs)?;
        // Pairs (x, e) with some rhs witness missing from lhs / vice versa.
        let sup = || -> RaExpr {
            d.clone()
                .difference(r.clone().difference(l.clone()).project(vec![0, 1]))
        };
        let sub = || -> RaExpr {
            d.clone()
                .difference(l.clone().difference(r.clone()).project(vec![0, 1]))
        };
        let base = match atom.op.op {
            CompareOp::Match => l
                .clone()
                .join(r.clone(), 2, 2)
                // (x, e, v, x', e', v): same pair on both sides.
                .select(Condition::And(
                    Box::new(Condition::Eq(Operand::Col(0), Operand::Col(3))),
                    Box::new(Condition::Eq(Operand::Col(1), Operand::Col(4))),
                ))
                .project(vec![0, 1]),
            CompareOp::Superset => sup(),
            CompareOp::Subset => sub(),
            CompareOp::SetEq => Self::intersect(sub(), sup()),
            CompareOp::ProperSubset => {
                Self::intersect(sub(), r.clone().difference(l.clone()).project(vec![0, 1]))
            }
            CompareOp::ProperSuperset => {
                Self::intersect(sup(), l.clone().difference(r.clone()).project(vec![0, 1]))
            }
            // Ordering: a witness pair (va, vb) for the *same* (x, e) —
            // join on x, require e = e', compare the two value columns.
            op @ (CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge) => l
                .join(r, 0, 0)
                // (x, e, va, x, e', vb)
                .select(Condition::And(
                    Box::new(Condition::Eq(Operand::Col(1), Operand::Col(4))),
                    Box::new(Condition::Cmp(Operand::Col(2), op, Operand::Col(5))),
                ))
                .project(vec![0, 1]),
        };
        Ok(if atom.op.negated {
            d.difference(base)
        } else {
            base
        })
    }

    fn compile_predicate(&self, pred: &Predicate) -> Result<RaExpr, QueryError> {
        let d = self.domain()?;
        let clauses: Vec<RaExpr> = pred
            .clauses
            .iter()
            .map(|clause| {
                let parts: Vec<RaExpr> = clause
                    .atoms
                    .iter()
                    .map(|a| self.compile_atom(a))
                    .collect::<Result<_, _>>()?;
                Ok::<RaExpr, QueryError>(match pred.form {
                    NormalForm::Dnf => parts.into_iter().fold(d.clone(), Self::intersect),
                    NormalForm::Cnf => {
                        let empty = d.clone().difference(d.clone());
                        parts.into_iter().fold(empty, |acc, p| acc.union(p))
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        Ok(match pred.form {
            NormalForm::Dnf => {
                let empty = d.clone().difference(d);
                clauses.into_iter().fold(empty, |acc, c| acc.union(c))
            }
            NormalForm::Cnf => clauses.into_iter().fold(d, Self::intersect),
        })
    }
}

/// Convenience: encode the database, compile the predicate, and evaluate
/// the plan, returning the selected entities in sorted order.
pub fn compile_and_eval(
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
) -> Result<Vec<EntityId>, QueryError> {
    let plan = compile_subclass_predicate(db, parent, pred)?;
    let rdb = encode_database(db)?;
    eval_plan(&plan, &rdb, db)
}

/// Evaluates a compiled unary plan against a pre-encoded relational image.
pub fn eval_plan(
    plan: &RaExpr,
    rdb: &RelationalDb,
    db: &Database,
) -> Result<Vec<EntityId>, QueryError> {
    let rel = crate::algebra::eval(plan, rdb, db)?;
    Ok(rel.unary_entities())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, Map, Operator, Rhs};
    use isis_sample::{instrumental_music, quartets_predicate};

    fn sorted(mut v: Vec<EntityId>) -> Vec<EntityId> {
        v.sort();
        v
    }

    /// Both evaluators must select the same entities.
    fn assert_equivalent(db: &Database, parent: ClassId, pred: &Predicate) {
        let isis: Vec<EntityId> = db
            .evaluate_derived_members(parent, pred)
            .unwrap()
            .iter()
            .collect();
        let ra = compile_and_eval(db, parent, pred).unwrap();
        assert_eq!(sorted(isis), sorted(ra), "predicate: {pred}");
    }

    #[test]
    fn quartets_predicate_equivalent() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        assert_equivalent(&im.db, im.music_groups, &pred);
        // And it selects exactly LaBelle Musique.
        let ra = compile_and_eval(&im.db, im.music_groups, &pred).unwrap();
        assert_eq!(ra, vec![im.labelle]);
    }

    #[test]
    fn every_operator_equivalent() {
        let im = instrumental_music().unwrap();
        let db = &im.db;
        // plays <op> {viola, violin} over musicians, for every operator and
        // its negation.
        for op in CompareOp::ALL {
            if op.is_ordering() {
                continue; // covered separately on singleton maps
            }
            for negated in [false, true] {
                let atom = Atom::new(
                    Map::single(im.plays),
                    Operator { op, negated },
                    Rhs::constant(im.instruments, [im.viola, im.violin]),
                );
                let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
                assert_equivalent(db, im.musicians, &pred);
            }
        }
    }

    #[test]
    fn ordering_operators_equivalent_on_singlevalued_maps() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let ints = im.db.predefined(isis_core::BaseKind::Integers);
        for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge] {
            let atom = Atom::new(Map::single(im.size), op, Rhs::constant(ints, [four]));
            let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
            assert_equivalent(&im.db, im.music_groups, &pred);
        }
    }

    #[test]
    fn self_map_rhs_equivalent() {
        let im = instrumental_music().unwrap();
        // Instruments whose family equals the family of viola — via a
        // mapped constant; and the trivial self-map equality.
        let atom = Atom::new(
            Map::single(im.family),
            CompareOp::SetEq,
            Rhs::Constant {
                class: im.instruments,
                anchors: [im.viola].into_iter().collect(),
                map: Map::single(im.family),
            },
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        assert_equivalent(&im.db, im.instruments, &pred);
        let triv = Atom::new(
            Map::identity(),
            CompareOp::SetEq,
            Rhs::SelfMap(Map::identity()),
        );
        assert_equivalent(
            &im.db,
            im.instruments,
            &Predicate::dnf(vec![Clause::new(vec![triv])]),
        );
    }

    #[test]
    fn dnf_cnf_duals_equivalent() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let two = im.db.int(2);
        let ints = im.db.predefined(isis_core::BaseKind::Integers);
        let a4 = Atom::new(
            Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let a2 = Atom::new(
            Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [two]),
        );
        for pred in [
            Predicate::dnf(vec![
                Clause::new(vec![a4.clone()]),
                Clause::new(vec![a2.clone()]),
            ]),
            Predicate::cnf(vec![
                Clause::new(vec![a4.clone()]),
                Clause::new(vec![a2.clone()]),
            ]),
            Predicate::dnf(vec![Clause::new(vec![a4.clone(), a2.clone()])]),
            Predicate::cnf(vec![Clause::new(vec![a4, a2])]),
            Predicate::always_true(),
            Predicate::always_false(),
            Predicate::cnf(vec![]),
            Predicate::dnf(vec![Clause::empty()]),
            Predicate::cnf(vec![Clause::empty()]),
        ] {
            assert_equivalent(&im.db, im.music_groups, &pred);
        }
    }

    #[test]
    fn empty_constant_set_equivalent() {
        let im = instrumental_music().unwrap();
        // plays ⊇ ∅ is true of everyone; plays ~ ∅ of no one.
        for (op, _expect_all) in [(CompareOp::Superset, true), (CompareOp::Match, false)] {
            let atom = Atom::new(
                Map::single(im.plays),
                op,
                Rhs::constant(im.instruments, std::iter::empty::<EntityId>()),
            );
            let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
            assert_equivalent(&im.db, im.musicians, &pred);
        }
    }

    #[test]
    fn multi_hop_map_equivalent() {
        let im = instrumental_music().unwrap();
        // musicians whose played instruments' families include stringed.
        let atom = Atom::new(
            Map::new(vec![im.plays, im.family]),
            CompareOp::Match,
            Rhs::constant(im.families, [im.stringed]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        assert_equivalent(&im.db, im.musicians, &pred);
    }

    #[test]
    fn source_map_rejected() {
        let im = instrumental_music().unwrap();
        let atom = Atom::new(
            Map::identity(),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(im.plays)),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        assert!(compile_subclass_predicate(&im.db, im.musicians, &pred).is_err());
    }

    #[test]
    fn plan_display_mentions_relations() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let plan = compile_subclass_predicate(&im.db, im.music_groups, &pred).unwrap();
        let s = plan.to_string();
        assert!(s.contains("class_music_groups"));
        assert!(s.contains("attr_music_groups_members"));
        assert!(plan.node_count() > 5);
    }
}

#[cfg(test)]
mod attr_derivation_tests {
    use super::*;
    use isis_core::{AttrDerivation, Clause, Multiplicity, Operator};
    use isis_sample::instrumental_music;

    /// Materialises `attr` via the engine and compares the (owner, value)
    /// pairs with the compiled plan's relation.
    fn assert_matches_engine(db: &Database, attr: isis_core::AttrId) {
        let rec = db.attr(attr).unwrap();
        let owner = rec.owner;
        let mut engine_pairs: Vec<(EntityId, EntityId)> = Vec::new();
        for x in db.members(owner).unwrap().iter() {
            for v in db.attr_value_set(x, attr).unwrap().iter() {
                engine_pairs.push((x, v));
            }
        }
        engine_pairs.sort();
        let plan = compile_attr_derivation(db, attr).unwrap();
        let rdb = encode_database(db).unwrap();
        let rel = crate::algebra::eval(&plan, &rdb, db).unwrap();
        let mut plan_pairs: Vec<(EntityId, EntityId)> =
            rel.tuples.iter().map(|t| (t[0], t[1])).collect();
        plan_pairs.sort();
        assert_eq!(plan_pairs, engine_pairs);
    }

    #[test]
    fn hand_assign_derivation_compiles() {
        let mut im = instrumental_music().unwrap();
        let all_inst = im
            .db
            .create_attribute(
                im.music_groups,
                "all_inst",
                im.instruments,
                Multiplicity::Multi,
            )
            .unwrap();
        im.db
            .commit_derivation(all_inst, isis_sample::all_inst_derivation(&im))
            .unwrap();
        assert_matches_engine(&im.db, all_inst);
    }

    #[test]
    fn source_map_match_derivation_compiles() {
        let mut im = instrumental_music().unwrap();
        // e is "similar" to x iff they share an instrument (form (c)).
        let similar = im
            .db
            .create_attribute(im.musicians, "similar", im.musicians, Multiplicity::Multi)
            .unwrap();
        let atom = Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(im.plays)),
        );
        im.db
            .commit_derivation(
                similar,
                AttrDerivation::Predicate(Predicate::dnf(vec![Clause::new(vec![atom])])),
            )
            .unwrap();
        assert_matches_engine(&im.db, similar);
    }

    #[test]
    fn constant_and_negated_derivation_compiles() {
        let mut im = instrumental_music().unwrap();
        // string_options: for every group, the stringed instruments NOT
        // already played by its members — a constant atom and a negated
        // source-map atom conjoined.
        let opts = im
            .db
            .create_attribute(
                im.music_groups,
                "string_options",
                im.instruments,
                Multiplicity::Multi,
            )
            .unwrap();
        let is_stringed = Atom::new(
            Map::single(im.family),
            CompareOp::Match,
            Rhs::constant(im.families, [im.stringed]),
        );
        let not_played = Atom::new(
            Map::identity(),
            Operator::negated(CompareOp::Match),
            Rhs::SourceMap(Map::new(vec![im.members, im.plays])),
        );
        im.db
            .commit_derivation(
                opts,
                AttrDerivation::Predicate(Predicate::dnf(vec![Clause::new(vec![
                    is_stringed,
                    not_played,
                ])])),
            )
            .unwrap();
        assert_matches_engine(&im.db, opts);
        // Sanity: LaBelle plays viola/violin/cello, so guitar and harp
        // remain options.
        let guitar = im.db.entity_by_name(im.instruments, "guitar").unwrap();
        let set = im.db.attr_value_set(im.labelle, opts).unwrap();
        assert!(set.contains(guitar));
        assert!(!set.contains(im.viola));
    }

    #[test]
    fn ordering_derivation_compiles() {
        let mut im = instrumental_music().unwrap();
        // bigger_than: groups ↔ groups with strictly larger size.
        let bigger = im
            .db
            .create_attribute(
                im.music_groups,
                "smaller_than",
                im.music_groups,
                Multiplicity::Multi,
            )
            .unwrap();
        let atom = Atom::new(
            Map::single(im.size),
            CompareOp::Gt,
            Rhs::SourceMap(Map::single(im.size)),
        );
        im.db
            .commit_derivation(
                bigger,
                AttrDerivation::Predicate(Predicate::dnf(vec![Clause::new(vec![atom])])),
            )
            .unwrap();
        assert_matches_engine(&im.db, bigger);
    }

    #[test]
    fn cnf_derivation_compiles() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let ints = im.db.predefined(isis_core::BaseKind::Integers);
        // CNF over two clauses, mixing self and source atoms.
        let a = im
            .db
            .create_attribute(
                im.musicians,
                "quartet_peers",
                im.musicians,
                Multiplicity::Multi,
            )
            .unwrap();
        let shares = Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::SourceMap(Map::single(im.plays)),
        );
        let in_union = Atom::new(
            Map::single(im.union_attr),
            CompareOp::Match,
            Rhs::constant(im.db.predefined(isis_core::BaseKind::Booleans), {
                let yes = im.db.boolean(true);
                [yes]
            }),
        );
        let _ = (four, ints);
        im.db
            .commit_derivation(
                a,
                AttrDerivation::Predicate(Predicate::cnf(vec![
                    Clause::new(vec![shares]),
                    Clause::new(vec![in_union]),
                ])),
            )
            .unwrap();
        assert_matches_engine(&im.db, a);
    }

    #[test]
    fn uncompilable_cases_error_cleanly() {
        let im = instrumental_music().unwrap();
        // No derivation.
        assert!(compile_attr_derivation(&im.db, im.plays).is_err());
    }
}
