//! The shared index service behind the query path.
//!
//! The paper's predicate worksheet makes queries first-class derived
//! subclasses, so query answering and derived-class maintenance are two
//! consumers of the same attribute structure. [`IndexService`] is that
//! structure made shared: one [`IndexManager`]-maintained set of inverted
//! attribute indexes, kept current from the core delta log, read by
//!
//! * the predicate evaluator ([`IndexService::evaluate`], which the
//!   [`crate::IndexedEvaluator`] facade delegates to),
//! * the short-circuit optimizer ([`crate::optimize`] consults the service
//!   for selectivity statistics), and
//! * [`crate::DerivedMaintainer`]s, which walk the same indexes backwards
//!   to find the candidates a change can affect.
//!
//! The service also hosts the *access-path planner*: for each atom it
//! chooses between an index probe (posting-list lookup), a grouping-range
//! scan (reading the sets of a §2 grouping defined on the atom's
//! attribute), and a sequential scan, and counts each decision in
//! [`QueryStats`] so planner behaviour is observable (the REPL `stats`
//! command prints these counters).
//!
//! Every planner decision is also mirrored into the process-wide
//! [`isis_obs`] registry under `query.service.*` / `query.index.*`
//! (DESIGN.md §5c), and [`IndexService::evaluate`] runs under a
//! `query.service.evaluate` span, so the REPL `metrics` and `trace dump`
//! commands see the query path without any extra plumbing.
//!
//! **Snapshot consistency under MVCC (DESIGN.md §6).** A service indexes
//! exactly one database *line*: its delta cursor is an epoch on the
//! database it was built from, and epochs are line-local. Under a
//! `SharedDatabase` every session's pinned snapshot is its own line, so a
//! service built over a pinned snapshot keeps answering from that snapshot
//! no matter what other sessions commit to the shared head — queries are
//! repeatable for as long as the pin is held. When a session moves lines
//! (a pull, or a commit that was rebased onto concurrent commits), the
//! old cursor is meaningless on the new line; `Session` handles this by
//! discarding the service and rebuilding it against the fresh pin, exactly
//! as it does for a database swap via load/undo.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use isis_obs::Counter;

use crate::explain::SlowQuery;

use isis_core::{
    Atom, AttrId, ChangeSet, ClassId, CompareOp, Database, EntityId, GroupingId, NormalForm,
    OrderedSet, Predicate, Result, Rhs,
};

use crate::cache::{CachedPlan, ProgramCache};
use crate::index::{AttrIndex, IndexLookup};
use crate::manager::{IndexManager, IndexStats};
use crate::parallel::EvalPool;

/// Counters describing the access-path decisions a service has made.
///
/// Maintenance-side counters (posting patches, rebuilds) live in
/// [`IndexStats`]; these are the read side.
///
/// **Deprecated accessor path**: this struct survives as a per-service
/// compat shim for `Session::query` / the REPL `stats` command. New code
/// should read the process-wide [`isis_obs`] registry instead
/// (`query.service.queries`, `query.service.index_probes`, …), which
/// aggregates every service in the process and adds rows-scanned/returned
/// and timing histograms the shim never had.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Predicates evaluated through [`IndexService::evaluate`].
    pub queries: u64,
    /// Atoms answered from a maintained index posting list.
    pub index_probes: u64,
    /// Atoms answered by reading a grouping's sets instead of an index.
    pub grouping_scans: u64,
    /// Predicates that fell back to scanning the whole parent extent.
    pub seq_scans: u64,
    /// Atoms of indexable shape that found no maintained index (planner
    /// misses; a persistent count here suggests an index worth adding).
    pub index_misses: u64,
}

/// The physical access path the planner picks for one atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Probe the maintained index on this attribute.
    IndexProbe(AttrId),
    /// Read the sets of this grouping (defined on the atom's attribute).
    GroupingRange(GroupingId),
    /// No physical structure applies; evaluate against the parent extent.
    SeqScan,
}

/// Cached handles into the global [`isis_obs`] registry, resolved once per
/// service so the enabled path pays one atomic add per bump, never a
/// registry lookup.
#[derive(Debug)]
struct ServiceObs {
    queries: Arc<Counter>,
    index_probes: Arc<Counter>,
    grouping_scans: Arc<Counter>,
    seq_scans: Arc<Counter>,
    index_misses: Arc<Counter>,
    rows_scanned: Arc<Counter>,
    rows_returned: Arc<Counter>,
}

impl Default for ServiceObs {
    fn default() -> ServiceObs {
        let r = isis_obs::global().registry();
        ServiceObs {
            queries: r.counter("query.service.queries"),
            index_probes: r.counter("query.service.index_probes"),
            grouping_scans: r.counter("query.service.grouping_scans"),
            seq_scans: r.counter("query.service.seq_scans"),
            index_misses: r.counter("query.service.index_misses"),
            rows_scanned: r.counter("query.service.rows_scanned"),
            rows_returned: r.counter("query.service.rows_returned"),
        }
    }
}

/// One maintained set of attribute indexes shared by every query-path
/// consumer. See the module docs for the ownership model; DESIGN.md
/// documents the staleness contract.
#[derive(Debug, Default)]
pub struct IndexService {
    manager: IndexManager,
    obs: ServiceObs,
    queries: Cell<u64>,
    index_probes: Cell<u64>,
    grouping_scans: Cell<u64>,
    seq_scans: Cell<u64>,
    index_misses: Cell<u64>,
    /// Worker count for parallel evaluation through this service (0/1 =
    /// serial). Plumbed from `SessionBuilder::eval_threads`.
    eval_threads: Cell<usize>,
    /// Lazily-spawned persistent worker pool, reused across queries by
    /// [`crate::evaluate_pruned_parallel`] and across refresh rounds by
    /// [`crate::DerivedMaintainer::settle_with`]; resized only when a
    /// caller asks for a different width.
    eval_pool: EvalPool,
    /// Compiled programs keyed by (parent, source, predicate fingerprint),
    /// revalidated against the delta epoch on every lookup — repeat
    /// queries skip validation/reordering/hoisting entirely. Dies with the
    /// service, which dies on every line switch, so entries can never leak
    /// across database lines through this path.
    programs: ProgramCache,
    /// Per-class extent position maps (entity → storage-order index),
    /// revalidated against the delta epoch. They let a pruned pool much
    /// smaller than its extent be put back into extent order in
    /// O(|pool| log |pool|) instead of the O(|extent|) scan-and-filter the
    /// 1e6-entity scaling harness exposed as the dominant per-query cost.
    extent_order: RefCell<HashMap<ClassId, ExtentOrder>>,
    /// The slow-query log: evaluations over the threshold are captured as
    /// full explain records (observability enabled only). Bounded;
    /// drained via the REPL `slowlog` command.
    slow: RefCell<SlowRing>,
    /// Wall-clock threshold for slow-query capture; 0 disables the log.
    slow_threshold_ns: Cell<u64>,
}

/// One cached extent position map (see [`IndexService::ordered_candidates`]).
#[derive(Debug, Default)]
struct ExtentOrder {
    epoch: u64,
    pos: HashMap<EntityId, u32>,
}

/// How much smaller than its extent a pruned pool must be before the
/// position-map path beats the straight extent scan. Below this ratio the
/// scan's cache-friendly linear pass wins.
const ORDER_MAP_FACTOR: usize = 8;

/// Largest candidate list worth pinning in a [`CachedPlan`]. Bigger lists
/// are recomputed per query: per-candidate evaluation dominates at that
/// size anyway, and pinning them would let a handful of broad predicates
/// hold megabytes in the program cache.
pub(crate) const MAX_PLAN_CANDIDATES: usize = 4096;

/// Default slow-query threshold: evaluations longer than this (wall
/// clock, observability enabled) are captured into the slow-query log.
pub const DEFAULT_SLOW_THRESHOLD_NS: u64 = 10_000_000;

/// Slow-query ring capacity (captures, oldest evicted).
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 64;

/// The bounded slow-query ring behind [`IndexService::slow_queries`].
#[derive(Debug)]
struct SlowRing {
    buf: VecDeque<SlowQuery>,
    cap: usize,
    dropped: u64,
    next_seq: u64,
}

impl Default for SlowRing {
    fn default() -> SlowRing {
        SlowRing {
            buf: VecDeque::new(),
            cap: DEFAULT_SLOWLOG_CAPACITY,
            dropped: 0,
            next_seq: 1,
        }
    }
}

/// What one evaluation through [`IndexService::evaluate`] decided and
/// cost — the raw capture EXPLAIN and the slow-query log are built from.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EvalCapture {
    /// The cached access plan was still valid and reused as-is.
    pub(crate) plan_reused: bool,
    /// The (re)computed plan qualified for pinning in the cache.
    pub(crate) pinned: bool,
    /// Pruned pool size (`None` = no prunable atom; sequential scan).
    pub(crate) pool_len: Option<usize>,
    /// Extent-ordered candidates actually evaluated.
    pub(crate) candidates: usize,
    pub(crate) scanned: u64,
    pub(crate) returned: u64,
    pub(crate) plan_ns: u64,
    pub(crate) eval_ns: u64,
    /// The program was batch-compatible: evaluation streamed attribute
    /// columns in [`crate::program::BATCH_ROWS`]-candidate runs.
    pub(crate) batch: bool,
}

impl IndexService {
    /// An empty service synchronised to the database's current delta epoch.
    pub fn new(db: &Database) -> IndexService {
        let svc = IndexService {
            manager: IndexManager::new(db),
            ..IndexService::default()
        };
        svc.slow_threshold_ns.set(DEFAULT_SLOW_THRESHOLD_NS);
        svc
    }

    /// Builds and registers an index for `attr` unless one already exists.
    /// Returns `true` if an index was built.
    pub fn ensure_index(&mut self, db: &Database, attr: AttrId) -> Result<bool> {
        if self.manager.index(attr).is_some() {
            return Ok(false);
        }
        self.manager.add_index(db, attr)?;
        Ok(true)
    }

    /// Access a registered index.
    pub fn index(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.manager.index(attr)
    }

    /// The attributes currently indexed.
    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.manager.indexed_attrs()
    }

    /// The delta epoch the indexes are synchronised to.
    pub fn cursor(&self) -> u64 {
        self.manager.cursor()
    }

    /// Configures how many workers parallel evaluation through this
    /// service may use (`<= 1` keeps every query serial). The persistent
    /// pool itself is spawned lazily, on the first query large enough to
    /// parallelise.
    pub fn set_eval_threads(&self, threads: usize) {
        self.eval_threads.set(threads);
    }

    /// The configured parallel-evaluation worker count (at least 1).
    pub fn eval_threads(&self) -> usize {
        self.eval_threads.get().max(1)
    }

    /// The size of the spawned persistent pool, or `None` while no
    /// parallel query has needed one yet.
    pub fn eval_pool_threads(&self) -> Option<usize> {
        self.eval_pool.spawned_threads()
    }

    /// The service's persistent worker pool, shared by pruned parallel
    /// queries and large-affected-set settles.
    pub fn eval_pool(&self) -> &EvalPool {
        &self.eval_pool
    }

    /// The service's compiled-program cache (see [`ProgramCache`] for the
    /// lifetime/invalidation contract).
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// Filters `pool` down to members of `parent` **in extent (storage)
    /// order** — exactly the order `Database::evaluate_derived_members`
    /// produces. With no pool the whole extent is returned. A pool much
    /// smaller than its extent is ordered through a cached position map
    /// (rebuilt whenever the delta epoch has moved) rather than by
    /// scanning the extent, so a repeat navigation query over a 1e6-entity
    /// class pays for its handful of candidates, not for the extent.
    pub fn ordered_candidates(
        &self,
        db: &Database,
        parent: ClassId,
        pool: Option<&OrderedSet>,
    ) -> Result<Vec<EntityId>> {
        let members = db.members(parent)?;
        let Some(pool) = pool else {
            return Ok(members.iter().collect());
        };
        if pool.len().saturating_mul(ORDER_MAP_FACTOR) >= members.len() {
            return Ok(members.iter().filter(|e| pool.contains(*e)).collect());
        }
        let mut cache = self.extent_order.borrow_mut();
        let entry = cache.entry(parent).or_default();
        let epoch = db.delta_epoch();
        if entry.epoch != epoch || entry.pos.len() != members.len() {
            entry.pos = members.iter().zip(0u32..).collect();
            entry.epoch = epoch;
            if isis_obs::global().enabled() {
                isis_obs::global().count("query.service.order_rebuilds", 1);
            }
        }
        let mut picked: Vec<(u32, EntityId)> = pool
            .iter()
            .filter_map(|e| entry.pos.get(&e).map(|&i| (i, e)))
            .collect();
        picked.sort_unstable_by_key(|&(i, _)| i);
        Ok(picked.into_iter().map(|(_, e)| e).collect())
    }

    /// Produces (pool size, extent-ordered candidate list) for `pred` over
    /// `parent`, reusing the [`CachedPlan`] in `plan` when it is still
    /// valid — the delta epoch guards the data and the index cursor guards
    /// index synchronisation, so a repeat navigation query re-pays neither
    /// the posting-list intersections nor the ordering. Oversized lists
    /// (and unprunable predicates) are never pinned; they are recomputed
    /// and returned owned.
    pub(crate) fn plan_candidates<'a>(
        &self,
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
        plan: &'a mut Option<CachedPlan>,
        batch: bool,
    ) -> Result<(Option<usize>, std::borrow::Cow<'a, [EntityId]>)> {
        let epoch = db.delta_epoch();
        let cursor = self.manager.cursor();
        if !matches!(plan, Some(p) if p.epoch == epoch && p.cursor == cursor) {
            let pool = self.candidate_pool(db, pred)?;
            let pool_len = pool.as_ref().map(OrderedSet::len);
            let candidates = self.ordered_candidates(db, parent, pool.as_ref())?;
            if pool_len.is_none() || candidates.len() > MAX_PLAN_CANDIDATES {
                // An unprunable predicate has no plan worth pinning; an
                // oversized pool is an explicit pin rejection — a cost
                // cliff worth counting (the plan is recomputed per query).
                if pool_len.is_some() && isis_obs::global().enabled() {
                    isis_obs::global().count("query.service.plan_pin_rejections", 1);
                }
                *plan = None;
                return Ok((pool_len, std::borrow::Cow::Owned(candidates)));
            }
            *plan = Some(CachedPlan {
                epoch,
                cursor,
                pool_len,
                candidates,
                batch,
            });
        }
        let p = plan.as_ref().expect("plan was just installed or validated");
        Ok((
            p.pool_len,
            std::borrow::Cow::Borrowed(p.candidates.as_slice()),
        ))
    }

    /// Bumps a per-service counter and, when observability is live, its
    /// process-wide mirror. Disabled cost: one relaxed atomic load.
    #[inline]
    fn bump(&self, cell: &Cell<u64>, mirror: &Counter) {
        cell.set(cell.get() + 1);
        if isis_obs::global().enabled() {
            mirror.inc();
        }
    }

    /// Mirrors the maintenance counters the manager accumulated during one
    /// refresh/apply into the registry (as deltas, so the global counters
    /// aggregate correctly across services).
    fn mirror_maintenance(&self, before: IndexStats) {
        let obs = isis_obs::global();
        if !obs.enabled() {
            return;
        }
        let after = self.manager.stats();
        obs.count(
            "query.index.patches",
            after
                .incremental_updates
                .saturating_sub(before.incremental_updates) as u64,
        );
        obs.count(
            "query.index.rebuilds",
            after.rebuilds.saturating_sub(before.rebuilds) as u64,
        );
    }

    /// Brings every index up to date with `db` by consuming the delta log
    /// from the service's cursor (rebuilding when the window is gone).
    pub fn refresh(&mut self, db: &Database) -> Result<()> {
        let _span = isis_obs::global().span("query.index.refresh");
        let before = self.manager.stats();
        let out = self.manager.refresh(db);
        self.mirror_maintenance(before);
        out
    }

    /// Applies one explicit [`ChangeSet`] window. The set must describe the
    /// transition from the indexes' current state to `db`'s, as when a
    /// coordinator drains `db.changes_since(..)` once and feeds every
    /// consumer the same window.
    pub fn apply(&mut self, db: &Database, changes: &ChangeSet) -> Result<()> {
        let _span = isis_obs::global().span("query.index.apply");
        let before = self.manager.stats();
        let out = self.manager.apply(db, changes);
        self.mirror_maintenance(before);
        out
    }

    /// Re-anchors the cursor to the database's current epoch (after the
    /// coordinator has fed the service every outstanding window).
    pub fn set_cursor(&mut self, db: &Database) {
        self.manager.set_cursor(db.delta_epoch());
    }

    /// Maintenance counters (posting patches, rebuilds).
    pub fn index_stats(&self) -> IndexStats {
        self.manager.stats()
    }

    /// Planner counters (probes, grouping scans, seq scans, misses).
    ///
    /// Compat shim: prefer the process-wide [`isis_obs`] registry
    /// (`query.service.*`), which this service mirrors every bump into
    /// whenever observability is enabled. The shim stays because its
    /// counters are per-service (tests and the bench report rely on that
    /// isolation) while the registry aggregates the whole process.
    pub fn query_stats(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.get(),
            index_probes: self.index_probes.get(),
            grouping_scans: self.grouping_scans.get(),
            seq_scans: self.seq_scans.get(),
            index_misses: self.index_misses.get(),
        }
    }

    /// Zeroes the planner counters (maintenance counters are cumulative).
    pub fn reset_query_stats(&self) {
        self.queries.set(0);
        self.index_probes.set(0);
        self.grouping_scans.set(0);
        self.seq_scans.set(0);
        self.index_misses.set(0);
    }

    /// `true` when the atom has indexable shape — single-step, non-negated
    /// `~` / `⊇` / `=` against a plain constant set.
    pub(crate) fn atom_shape(atom: &Atom) -> bool {
        !atom.op.negated
            && atom.lhs.len() == 1
            && matches!(
                atom.op.op,
                CompareOp::Match | CompareOp::Superset | CompareOp::SetEq
            )
            && matches!(&atom.rhs, Rhs::Constant { map, .. } if map.is_identity())
    }

    /// `true` if the atom can be answered from a registered index.
    pub fn indexable(&self, atom: &Atom) -> bool {
        Self::atom_shape(atom) && self.manager.index(atom.lhs.steps()[0]).is_some()
    }

    /// Chooses the access path for one atom: a maintained index wins; a
    /// grouping defined on the attribute (covering the attribute's whole
    /// owner extent) is the fallback; otherwise sequential scan. Counts a
    /// planner miss when the shape was indexable but no index exists.
    pub fn plan_atom(&self, db: &Database, atom: &Atom) -> AccessPath {
        self.plan_atom_inner(db, atom, true)
    }

    /// [`IndexService::plan_atom`] without the planner-miss counting —
    /// EXPLAIN and the slow-query log describe atoms through this so a
    /// description never perturbs the counters the record reports on.
    pub(crate) fn peek_atom_path(&self, db: &Database, atom: &Atom) -> AccessPath {
        self.plan_atom_inner(db, atom, false)
    }

    fn plan_atom_inner(&self, db: &Database, atom: &Atom, count: bool) -> AccessPath {
        if !Self::atom_shape(atom) {
            return AccessPath::SeqScan;
        }
        let attr = atom.lhs.steps()[0];
        if self.manager.index(attr).is_some() {
            return AccessPath::IndexProbe(attr);
        }
        if count {
            self.bump(&self.index_misses, &self.obs.index_misses);
        }
        if let Ok(rec) = db.attr(attr) {
            // Only a grouping of the attribute's own owner class covers
            // every candidate that can carry the attribute.
            if let Some((g, _)) = db
                .groupings()
                .find(|(_, gr)| gr.on_attr == attr && gr.parent == rec.owner)
            {
                return AccessPath::GroupingRange(g);
            }
        }
        AccessPath::SeqScan
    }

    /// The candidate set an atom admits under its chosen access path (a
    /// superset of the exact answer for `=`; exact for `~` and `⊇`).
    /// `None` means no pruning is possible for this atom.
    fn atom_candidates(&self, db: &Database, atom: &Atom) -> Result<Option<OrderedSet>> {
        let anchors = match &atom.rhs {
            Rhs::Constant { anchors, .. } => anchors,
            _ => return Ok(None),
        };
        match self.plan_atom(db, atom) {
            AccessPath::IndexProbe(attr) => {
                let idx = match self.manager.index(attr) {
                    Some(i) => i,
                    None => return Ok(None),
                };
                let out = Self::combine(atom.op.op, anchors, |a| idx.owners_of(a));
                if out.is_some() {
                    self.bump(&self.index_probes, &self.obs.index_probes);
                }
                Ok(out)
            }
            AccessPath::GroupingRange(g) => {
                let sets = db.grouping_sets(g)?;
                let out = Self::combine(atom.op.op, anchors, |a| {
                    sets.iter().find(|s| s.index == a).map(|s| &s.members)
                });
                if out.is_some() {
                    self.bump(&self.grouping_scans, &self.obs.grouping_scans);
                }
                Ok(out)
            }
            AccessPath::SeqScan => Ok(None),
        }
    }

    /// Combines per-anchor owner lists under the atom's operator: union for
    /// `~` (some anchor present), rarest-first intersection for `⊇`/`=`
    /// (every anchor present). An absent list means no owner carries the
    /// anchor.
    fn combine<'a>(
        op: CompareOp,
        anchors: &OrderedSet,
        owners_of: impl Fn(EntityId) -> Option<&'a OrderedSet>,
    ) -> Option<OrderedSet> {
        match op {
            CompareOp::Match => {
                let mut out = OrderedSet::new();
                for a in anchors.iter() {
                    if let Some(s) = owners_of(a) {
                        out.extend_from(s);
                    }
                }
                Some(out)
            }
            CompareOp::Superset | CompareOp::SetEq => {
                if anchors.is_empty() {
                    return None; // everything qualifies; no pruning to gain
                }
                let mut lists: Vec<&OrderedSet> = Vec::new();
                for a in anchors.iter() {
                    match owners_of(a) {
                        Some(s) => lists.push(s),
                        None => return Some(OrderedSet::new()),
                    }
                }
                lists.sort_by_key(|s| s.len());
                let mut out = lists[0].clone();
                for s in &lists[1..] {
                    let keep: Vec<EntityId> = out.iter().filter(|e| s.contains(*e)).collect();
                    out = keep.into_iter().collect();
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// Estimated truth probability of a shape-indexable atom, derived from
    /// grouping-set sizes when no index exists. Feeds the optimizer's
    /// selectivity model for attributes that are grouped but not indexed.
    pub fn grouping_selectivity(&self, db: &Database, atom: &Atom) -> Option<f64> {
        if !Self::atom_shape(atom) {
            return None;
        }
        // Estimation is advisory: describe the path without touching the
        // planner-miss counters, so cost estimation (and EXPLAIN, which
        // re-estimates every atom) stays stats-neutral. Misses are counted
        // where the plan is *acted on*, in candidate pruning.
        let g = match self.peek_atom_path(db, atom) {
            AccessPath::GroupingRange(g) => g,
            _ => return None,
        };
        let anchors = match &atom.rhs {
            Rhs::Constant { anchors, .. } => anchors,
            _ => return None,
        };
        let parent = db.grouping(g).ok()?.parent;
        let total = db.members(parent).ok()?.len();
        if total == 0 {
            return None;
        }
        let sets = db.grouping_sets(g).ok()?;
        let frac = |a: EntityId| {
            sets.iter()
                .find(|s| s.index == a)
                .map_or(0.0, |s| s.members.len() as f64)
                / total as f64
        };
        match atom.op.op {
            CompareOp::Match => Some(anchors.iter().map(frac).sum::<f64>().min(1.0)),
            CompareOp::Superset | CompareOp::SetEq => Some(anchors.iter().map(frac).product()),
            _ => None,
        }
    }

    /// The pruned candidate pool for a whole predicate, or `None` when no
    /// clause structure admits pruning. A CNF clause of exactly one
    /// prunable atom intersects the pool; a DNF where *every* clause has a
    /// prunable atom unions per-clause pools.
    pub fn candidate_pool(&self, db: &Database, pred: &Predicate) -> Result<Option<OrderedSet>> {
        let mut pool: Option<OrderedSet> = None;
        match pred.form {
            NormalForm::Cnf => {
                for clause in &pred.clauses {
                    if clause.atoms.len() == 1 {
                        if let Some(c) = self.atom_candidates(db, &clause.atoms[0])? {
                            pool = Some(match pool {
                                None => c,
                                Some(p) => p.iter().filter(|e| c.contains(*e)).collect(),
                            });
                        }
                    }
                }
            }
            NormalForm::Dnf => {
                let mut union = OrderedSet::new();
                let mut all_prunable = !pred.clauses.is_empty();
                'clauses: for clause in &pred.clauses {
                    for atom in &clause.atoms {
                        if let Some(c) = self.atom_candidates(db, atom)? {
                            union.extend_from(&c);
                            continue 'clauses;
                        }
                    }
                    all_prunable = false;
                    break;
                }
                if all_prunable {
                    pool = Some(union);
                }
            }
        }
        Ok(pool)
    }

    /// Evaluates a whole DNF/CNF predicate over `parent`, pruning the
    /// candidate pool through the planned access paths. Semantically
    /// identical to [`Database::evaluate_derived_members`].
    ///
    /// When observability is enabled and the evaluation runs longer than
    /// [`IndexService::slow_threshold_ns`], its explain record is captured
    /// into the slow-query log. With observability off the extra cost is
    /// one atomic load — no clock is read and nothing is captured, and the
    /// result is byte-identical either way.
    pub fn evaluate(&self, db: &Database, parent: ClassId, pred: &Predicate) -> Result<OrderedSet> {
        let obs = isis_obs::global();
        if !obs.enabled() || self.slow_threshold_ns.get() == 0 {
            return self.evaluate_captured(db, parent, pred, None);
        }
        let t = Instant::now();
        let mut cap = EvalCapture::default();
        let out = self.evaluate_captured(db, parent, pred, Some(&mut cap))?;
        let total_ns = t.elapsed().as_nanos() as u64;
        if total_ns >= self.slow_threshold_ns.get() {
            self.record_slow(db, parent, pred, &cap, total_ns);
        }
        Ok(out)
    }

    /// The evaluation body shared by [`IndexService::evaluate`] and
    /// [`IndexService::explain`]. With `cap` set, plan/eval phases are
    /// timed and the planner's decisions written into the capture; with
    /// `cap` unset no clock is read beyond the usual span.
    pub(crate) fn evaluate_captured(
        &self,
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
        cap: Option<&mut EvalCapture>,
    ) -> Result<OrderedSet> {
        let obs = isis_obs::global();
        let _span = obs.span("query.service.evaluate");
        // The cache validates/reorders/hoists once per predicate shape
        // (revalidating against the delta epoch), and carries the access
        // plan alongside; a repeat query pays only the residual filter
        // below, running the compiled program over the cached candidate
        // list instead of re-planning and re-interpreting per candidate.
        self.programs
            .with_plan(db, parent, None, pred, Some(self), |prog, plan| {
                self.bump(&self.queries, &self.obs.queries);
                let timed = cap.is_some();
                let plan_reused = matches!(
                    plan,
                    Some(p) if p.epoch == db.delta_epoch() && p.cursor == self.manager.cursor()
                );
                let batch = prog.batch_compatible();
                let t_plan = if timed { Some(Instant::now()) } else { None };
                let (pool_len, candidates) = self.plan_candidates(db, parent, pred, plan, batch)?;
                let plan_ns = t_plan.map_or(0, |t| t.elapsed().as_nanos() as u64);
                if pool_len.is_none() {
                    self.bump(&self.seq_scans, &self.obs.seq_scans);
                }
                obs.event("query.service.plan", || match pool_len {
                    Some(n) => format!("pruned pool of {n} candidate(s)"),
                    None => "no prunable atom; sequential scan".to_string(),
                });
                let mut out = OrderedSet::new();
                let scanned = candidates.len() as u64;
                let t_eval = if timed { Some(Instant::now()) } else { None };
                let mut memo = crate::program::MemoTable::new(prog);
                for e in prog.eval_batch(db, &candidates, None, &mut memo)? {
                    out.insert(e);
                }
                memo.flush_obs();
                let eval_ns = t_eval.map_or(0, |t| t.elapsed().as_nanos() as u64);
                if obs.enabled() {
                    self.obs.rows_scanned.add(scanned);
                    self.obs.rows_returned.add(out.len() as u64);
                }
                obs.event("query.service.rows", || {
                    format!("{scanned} scanned, {} returned", out.len())
                });
                if let Some(c) = cap {
                    *c = EvalCapture {
                        plan_reused,
                        // Mirrors the install condition in plan_candidates
                        // (the plan slot itself is borrowed by the
                        // candidate list here).
                        pinned: pool_len.is_some() && candidates.len() <= MAX_PLAN_CANDIDATES,
                        pool_len,
                        candidates: candidates.len(),
                        scanned,
                        returned: out.len() as u64,
                        plan_ns,
                        eval_ns,
                        batch,
                    };
                }
                Ok(out)
            })
    }

    /// The slow-query threshold in nanoseconds (0 = capture disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.get()
    }

    /// Sets the slow-query threshold; evaluations at or over it (wall
    /// clock, observability enabled) are captured. 0 disables capture.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.set(ns);
    }

    /// The captured slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.borrow().buf.iter().cloned().collect()
    }

    /// Captures evicted from the slow-query ring since the last clear.
    pub fn slowlog_dropped(&self) -> u64 {
        self.slow.borrow().dropped
    }

    /// Empties the slow-query ring (threshold and capacity are kept).
    pub fn clear_slowlog(&self) {
        let mut ring = self.slow.borrow_mut();
        ring.buf.clear();
        ring.dropped = 0;
    }

    /// Builds the explain record for an over-threshold evaluation, pushes
    /// it into the ring, and mirrors it to the flight recorder.
    fn record_slow(
        &self,
        db: &Database,
        parent: ClassId,
        pred: &Predicate,
        cap: &EvalCapture,
        total_ns: u64,
    ) {
        let record = self.build_explain(db, parent, pred, cap, total_ns);
        let obs = isis_obs::global();
        obs.count("query.service.slow_queries", 1);
        obs.flight_event("query.service.slow", || record.to_json());
        let mut ring = self.slow.borrow_mut();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(SlowQuery {
            seq,
            total_ns,
            record,
        });
    }

    /// Records a query that was answered *outside* the service — the
    /// session's Manual-policy fallback scans the extent directly when the
    /// indexes are behind the database. Counting it here (one query, one
    /// sequential scan) keeps `stats` honest instead of silently dropping
    /// the most expensive path.
    pub fn note_unassisted_scan(&self) {
        self.bump(&self.queries, &self.obs.queries);
        self.bump(&self.seq_scans, &self.obs.seq_scans);
    }
}

impl IndexLookup for IndexService {
    fn index_for(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.manager.index(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, Map};
    use isis_sample::{instrumental_music, quartets_predicate};

    fn match_atom(attr: AttrId, class: ClassId, anchor: EntityId) -> Atom {
        Atom::new(
            Map::single(attr),
            CompareOp::Match,
            Rhs::constant(class, [anchor]),
        )
    }

    #[test]
    fn planner_probes_available_index() {
        let mut im = instrumental_music().unwrap();
        let mut svc = IndexService::new(&im.db);
        svc.ensure_index(&im.db, im.plays).unwrap();
        let atom = match_atom(im.plays, im.instruments, im.piano);
        assert_eq!(
            svc.plan_atom(&im.db, &atom),
            AccessPath::IndexProbe(im.plays)
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let got = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        let want = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(got.set_eq(&want));
        let stats = svc.query_stats();
        assert_eq!(stats.queries, 1);
        assert!(stats.index_probes >= 1, "index available → must probe");
        assert_eq!(stats.seq_scans, 0, "pruned query must not seq-scan");
        let _ = quartets_predicate(&mut im);
    }

    #[test]
    fn planner_falls_back_to_grouping_range_then_scan() {
        let mut im = instrumental_music().unwrap();
        let svc = IndexService::new(&im.db);
        // No index on family, but by_family is a grouping on it.
        let atom = match_atom(im.family, im.families, im.stringed);
        assert_eq!(
            svc.plan_atom(&im.db, &atom),
            AccessPath::GroupingRange(im.by_family)
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let got = svc.evaluate(&im.db, im.instruments, &pred).unwrap();
        let want = im
            .db
            .evaluate_derived_members(im.instruments, &pred)
            .unwrap();
        assert!(got.set_eq(&want));
        let stats = svc.query_stats();
        assert!(stats.grouping_scans >= 1);
        assert!(stats.index_misses >= 1, "shape was indexable, no index");
        assert_eq!(stats.index_probes, 0);

        // No index and no grouping on popular → sequential scan.
        svc.reset_query_stats();
        let yes = im.db.boolean(true);
        let booleans = im.db.predefined(isis_core::BaseKind::Booleans);
        let atom = match_atom(im.popular, booleans, yes);
        assert_eq!(svc.plan_atom(&im.db, &atom), AccessPath::SeqScan);
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let got = svc.evaluate(&im.db, im.instruments, &pred).unwrap();
        let want = im
            .db
            .evaluate_derived_members(im.instruments, &pred)
            .unwrap();
        assert!(got.set_eq(&want));
        let stats = svc.query_stats();
        assert!(stats.seq_scans >= 1);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn grouping_range_scan_agrees_on_superset() {
        let mut im = instrumental_music().unwrap();
        let svc = IndexService::new(&im.db);
        // work_status groups musicians on union: probe YES via the grouping.
        let yes = im.db.boolean(true);
        let booleans = im.db.predefined(isis_core::BaseKind::Booleans);
        let atom = Atom::new(
            Map::single(im.union_attr),
            CompareOp::Superset,
            Rhs::constant(booleans, [yes]),
        );
        assert_eq!(
            svc.plan_atom(&im.db, &atom),
            AccessPath::GroupingRange(im.work_status)
        );
        let pred = Predicate::cnf(vec![Clause::new(vec![atom])]);
        let got = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        let want = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(got.set_eq(&want));
        assert!(!got.is_empty());
    }

    #[test]
    fn shared_drain_keeps_queries_fresh() {
        let mut im = instrumental_music().unwrap();
        let mut svc = IndexService::new(&im.db);
        svc.ensure_index(&im.db, im.plays).unwrap();
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        svc.refresh(&im.db).unwrap();
        let atom = match_atom(im.plays, im.instruments, im.piano);
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let got = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        assert!(got.contains(gil));
        let want = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(got.set_eq(&want));
        assert_eq!(svc.index_stats().rebuilds, 0, "point update must patch");
    }

    #[test]
    fn grouping_selectivity_matches_set_sizes() {
        let im = instrumental_music().unwrap();
        let svc = IndexService::new(&im.db);
        let atom = match_atom(im.family, im.families, im.stringed);
        // 5 of 12 instruments are stringed at seed state.
        let sel = svc.grouping_selectivity(&im.db, &atom).unwrap();
        assert!((sel - 5.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn pinned_service_is_repeatable_under_shared_commits() {
        let im = instrumental_music().unwrap();
        let shared = isis_core::SharedDatabase::new(im.db);
        let pinned = shared.pin();
        let mut svc = IndexService::new(&pinned);
        svc.ensure_index(&pinned, im.plays).unwrap();
        let atom = match_atom(im.plays, im.instruments, im.piano);
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let before = svc.evaluate(&pinned, im.musicians, &pred).unwrap();

        // A concurrent session commits a new piano player to the head.
        let mut w = shared.pin();
        let base = w.delta_epoch();
        let zed = w.insert_entity(im.musicians, "Zed").unwrap();
        w.add_value(zed, im.plays, im.piano).unwrap();
        shared.commit(base, &w).unwrap();

        // The pinned line is untouched: refresh is a no-op and the answer
        // is bit-identical — repeatable reads for as long as the pin lives.
        svc.refresh(&pinned).unwrap();
        let after = svc.evaluate(&pinned, im.musicians, &pred).unwrap();
        assert_eq!(before, after, "pinned service must not see the commit");

        // A service built over a *fresh* pin sees the committed state.
        let fresh = shared.pin();
        let mut svc2 = IndexService::new(&fresh);
        svc2.ensure_index(&fresh, im.plays).unwrap();
        let head = svc2.evaluate(&fresh, im.musicians, &pred).unwrap();
        assert_eq!(head.len(), before.len() + 1);
        assert!(head.contains(fresh.entity_by_name(im.musicians, "Zed").unwrap()));
    }

    #[test]
    fn repeat_queries_reuse_cached_plan() {
        let mut im = instrumental_music().unwrap();
        let mut svc = IndexService::new(&im.db);
        svc.ensure_index(&im.db, im.plays).unwrap();
        let atom = match_atom(im.plays, im.instruments, im.piano);
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let first = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        let probes = svc.query_stats().index_probes;
        let second = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        assert_eq!(first.as_slice(), second.as_slice());
        assert_eq!(
            svc.query_stats().index_probes,
            probes,
            "a repeat query at the same epoch/cursor must reuse the cached plan"
        );
        // A data edit moves the epoch; after a refresh the plan is
        // recomputed and the answer reflects the new pianist.
        let zed = im.db.insert_entity(im.musicians, "PlanProbe").unwrap();
        im.db.add_value(zed, im.plays, im.piano).unwrap();
        svc.refresh(&im.db).unwrap();
        let third = svc.evaluate(&im.db, im.musicians, &pred).unwrap();
        assert!(
            svc.query_stats().index_probes > probes,
            "a moved epoch must force a re-plan"
        );
        assert!(third.contains(zed));
        assert_eq!(third.len(), first.len() + 1);
    }

    #[test]
    fn ordered_candidates_matches_extent_scan_on_every_path() {
        let mut s = isis_sample::synthetic_music(isis_sample::Scale::of(400), 7).unwrap();
        let svc = IndexService::new(&s.db);
        let extent = s.db.members(s.musicians).unwrap().clone();

        // No pool: the whole extent, in order.
        let all = svc.ordered_candidates(&s.db, s.musicians, None).unwrap();
        assert_eq!(all, extent.iter().collect::<Vec<_>>());

        // A pool small enough for the position-map path (every 13th
        // member, deliberately inserted in reverse) must come back in
        // extent order, identical to the linear scan-and-filter.
        let small: OrderedSet = extent
            .as_slice()
            .iter()
            .copied()
            .step_by(13)
            .rev()
            .collect();
        assert!(small.len() * ORDER_MAP_FACTOR < extent.len());
        let want: Vec<EntityId> = extent.iter().filter(|e| small.contains(*e)).collect();
        let got = svc
            .ordered_candidates(&s.db, s.musicians, Some(&small))
            .unwrap();
        assert_eq!(got, want, "position-map path must preserve extent order");

        // A large pool takes the scan path; same contract.
        let large: OrderedSet = extent.as_slice().iter().copied().step_by(2).rev().collect();
        assert!(large.len() * ORDER_MAP_FACTOR >= extent.len());
        let want: Vec<EntityId> = extent.iter().filter(|e| large.contains(*e)).collect();
        let got = svc
            .ordered_candidates(&s.db, s.musicians, Some(&large))
            .unwrap();
        assert_eq!(got, want);

        // Pool members outside the extent are dropped, not returned.
        let foreign: OrderedSet = [s.instrument_ids[0], extent.iter().next().unwrap()]
            .into_iter()
            .collect();
        let got = svc
            .ordered_candidates(&s.db, s.musicians, Some(&foreign))
            .unwrap();
        assert_eq!(got, vec![extent.iter().next().unwrap()]);

        // After a mutation moves the epoch, the cached map is rebuilt and
        // reflects the new extent.
        let newcomer = s.db.insert_entity(s.musicians, "order_probe").unwrap();
        let mut probe = small.clone();
        probe.insert(newcomer);
        let got = svc
            .ordered_candidates(&s.db, s.musicians, Some(&probe))
            .unwrap();
        assert_eq!(
            got.last().copied(),
            Some(newcomer),
            "rebuilt map must place the new entity last in extent order"
        );
    }
}
