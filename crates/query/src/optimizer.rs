//! A short-circuit predicate optimizer.
//!
//! ISIS evaluates predicates per candidate entity with short-circuiting
//! (AND stops at the first false atom, OR at the first true one). Atom
//! order inside a clause therefore matters: cheap, selective atoms should
//! run first. This optimizer estimates per-atom cost and selectivity —
//! from attribute indexes when available, falling back to static defaults —
//! and reorders atoms and clauses accordingly. Reordering within clauses
//! and of clauses is semantics-preserving (AND/OR are commutative).

use isis_core::{Atom, ClassId, CompareOp, Database, Map, NormalForm, Predicate, Result, Rhs};

use crate::service::IndexService;

/// Cost/selectivity estimate for one atom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomEstimate {
    /// Estimated per-candidate evaluation cost (arbitrary units; map steps
    /// weighted by expected fan-out).
    pub cost: f64,
    /// Estimated probability the atom is true for a random candidate.
    pub selectivity: f64,
}

/// Static fan-out assumed for a multivalued map step with no index stats.
const DEFAULT_FANOUT: f64 = 4.0;

fn map_cost(db: &Database, start: ClassId, map: &Map) -> f64 {
    let mut cost = 1.0;
    let mut width = 1.0;
    if let Ok(trace) = db.trace_map(start, map) {
        let multi = trace.multivalued;
        for _ in map.steps() {
            width *= if multi { DEFAULT_FANOUT } else { 1.0 };
            cost += width;
        }
    } else {
        cost += map.len() as f64;
    }
    cost
}

/// Estimates one atom for candidates drawn from `parent`.
pub fn estimate_atom(
    db: &Database,
    parent: ClassId,
    atom: &Atom,
    indexes: Option<&IndexService>,
) -> AtomEstimate {
    let mut cost = map_cost(db, parent, &atom.lhs);
    cost += match &atom.rhs {
        Rhs::SelfMap(m) => map_cost(db, parent, m),
        Rhs::Constant { class, map, .. } => map_cost(db, *class, map),
        Rhs::SourceMap(m) => 1.0 + m.len() as f64,
    };
    // Selectivity: prefer real index statistics for single-step constant
    // atoms; otherwise fall back to operator-shaped defaults.
    let mut selectivity = match atom.op.op {
        CompareOp::SetEq => 0.1,
        CompareOp::Match => 0.3,
        CompareOp::Subset | CompareOp::Superset => 0.25,
        CompareOp::ProperSubset | CompareOp::ProperSuperset => 0.15,
        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge => 0.5,
    };
    if let (Some(sv), 1, Rhs::Constant { anchors, map, .. }) = (indexes, atom.lhs.len(), &atom.rhs)
    {
        if map.is_identity() {
            if let Some(idx) = sv.index(atom.lhs.steps()[0]) {
                let s: f64 = match atom.op.op {
                    // P(some anchor present) ≈ capped sum.
                    CompareOp::Match => anchors
                        .iter()
                        .map(|a| idx.selectivity(a))
                        .sum::<f64>()
                        .min(1.0),
                    // P(all anchors present) ≈ product.
                    CompareOp::Superset | CompareOp::SetEq => {
                        anchors.iter().map(|a| idx.selectivity(a)).product()
                    }
                    _ => selectivity,
                };
                selectivity = s;
            } else if let Some(s) = sv.grouping_selectivity(db, atom) {
                // No index, but a grouping on the attribute still yields
                // real set-size statistics.
                selectivity = s;
            }
        }
    }
    if atom.op.negated {
        selectivity = 1.0 - selectivity;
    }
    AtomEstimate { cost, selectivity }
}

/// The per-clause estimates produced alongside an optimized predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// `(cost, selectivity)` per atom, post-reordering, per clause.
    pub clauses: Vec<Vec<AtomEstimate>>,
    /// Estimated truth probability per clause, post-reordering.
    pub clause_probability: Vec<f64>,
}

/// Reorders atoms within clauses and clauses within the predicate so that
/// short-circuit evaluation does the least expected work. Returns the new
/// predicate and the estimates used.
pub fn optimize(
    db: &Database,
    parent: ClassId,
    pred: &Predicate,
    indexes: Option<&IndexService>,
) -> Result<(Predicate, Explain)> {
    let obs = isis_obs::global();
    let _span = obs.span("query.optimizer.optimize");
    obs.count("query.optimizer.predicates", 1);
    let mut clauses: Vec<(isis_core::Clause, Vec<AtomEstimate>, f64)> = Vec::new();
    for clause in &pred.clauses {
        let mut scored: Vec<(Atom, AtomEstimate)> = clause
            .atoms
            .iter()
            .map(|a| (a.clone(), estimate_atom(db, parent, a, indexes)))
            .collect();
        match pred.form {
            // AND clause: fail fast — most-selective (lowest probability
            // of truth) per unit cost first.
            NormalForm::Dnf => scored.sort_by(|a, b| {
                let ka = a.1.selectivity * a.1.cost + a.1.cost * 0.01;
                let kb = b.1.selectivity * b.1.cost + b.1.cost * 0.01;
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            }),
            // OR clause: succeed fast — highest probability per unit cost
            // first.
            NormalForm::Cnf => scored.sort_by(|a, b| {
                let ka = (1.0 - a.1.selectivity) * a.1.cost + a.1.cost * 0.01;
                let kb = (1.0 - b.1.selectivity) * b.1.cost + b.1.cost * 0.01;
                ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
            }),
        }
        let prob: f64 = match pred.form {
            NormalForm::Dnf => scored.iter().map(|(_, e)| e.selectivity).product(),
            NormalForm::Cnf => {
                1.0 - scored
                    .iter()
                    .map(|(_, e)| 1.0 - e.selectivity)
                    .product::<f64>()
            }
        };
        let (atoms, ests): (Vec<Atom>, Vec<AtomEstimate>) = scored.into_iter().unzip();
        clauses.push((isis_core::Clause::new(atoms), ests, prob));
    }
    match pred.form {
        // OR of clauses: most-probable clause first.
        NormalForm::Dnf => {
            clauses.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
        }
        // AND of clauses: least-probable clause first.
        NormalForm::Cnf => {
            clauses.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        }
    }
    let explain = Explain {
        clauses: clauses.iter().map(|(_, e, _)| e.clone()).collect(),
        clause_probability: clauses.iter().map(|(_, _, p)| *p).collect(),
    };
    let optimized = Predicate {
        form: pred.form,
        clauses: clauses.into_iter().map(|(c, _, _)| c).collect(),
    };
    Ok((optimized, explain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, Operator};
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn optimization_preserves_semantics() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let (opt, _) = optimize(&im.db, im.music_groups, &pred, None).unwrap();
        let a = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap();
        let b = im
            .db
            .evaluate_derived_members(im.music_groups, &opt)
            .unwrap();
        assert!(a.set_eq(&b));
        assert_eq!(opt.atom_count(), pred.atom_count());
        assert_eq!(opt.form, pred.form);
    }

    #[test]
    fn cheap_selective_atom_moves_first_in_and_clause() {
        let mut im = instrumental_music().unwrap();
        let four = im.db.int(4);
        let ints = im.db.predefined(isis_core::BaseKind::Integers);
        // Expensive 2-hop atom first, cheap 1-hop equality second.
        let expensive = Atom::new(
            Map::new(vec![im.members, im.plays]),
            CompareOp::Superset,
            Rhs::constant(im.instruments, [im.piano]),
        );
        let cheap = Atom::new(
            Map::single(im.size),
            CompareOp::SetEq,
            Rhs::constant(ints, [four]),
        );
        let pred = Predicate::dnf(vec![Clause::new(vec![expensive.clone(), cheap.clone()])]);
        let (opt, explain) = optimize(&im.db, im.music_groups, &pred, None).unwrap();
        assert_eq!(opt.clauses[0].atoms[0], cheap);
        assert_eq!(opt.clauses[0].atoms[1], expensive);
        assert_eq!(explain.clauses[0].len(), 2);
        assert!(explain.clauses[0][0].cost <= explain.clauses[0][1].cost);
    }

    #[test]
    fn index_statistics_sharpen_selectivity() {
        let im = instrumental_music().unwrap();
        let mut sv = IndexService::new(&im.db);
        sv.ensure_index(&im.db, im.plays).unwrap();
        let atom = Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [im.piano]),
        );
        let with_idx = estimate_atom(&im.db, im.musicians, &atom, Some(&sv));
        let without = estimate_atom(&im.db, im.musicians, &atom, None);
        // 3 of 12 musicians play piano → 0.25, not the 0.3 default.
        assert!((with_idx.selectivity - 0.25).abs() < 1e-9);
        assert!((without.selectivity - 0.3).abs() < 1e-9);
    }

    #[test]
    fn grouping_statistics_sharpen_selectivity_without_an_index() {
        let im = instrumental_music().unwrap();
        let sv = IndexService::new(&im.db);
        // No index anywhere, but by_instrument groups musicians on plays.
        let atom = Atom::new(
            Map::single(im.plays),
            CompareOp::Match,
            Rhs::constant(im.instruments, [im.piano]),
        );
        let est = estimate_atom(&im.db, im.musicians, &atom, Some(&sv));
        assert!((est.selectivity - 0.25).abs() < 1e-9);
    }

    #[test]
    fn negation_flips_selectivity() {
        let im = instrumental_music().unwrap();
        let atom = Atom::new(
            Map::single(im.plays),
            Operator::negated(CompareOp::Match),
            Rhs::constant(im.instruments, [im.piano]),
        );
        let est = estimate_atom(&im.db, im.musicians, &atom, None);
        assert!((est.selectivity - 0.7).abs() < 1e-9);
    }

    #[test]
    fn clause_probabilities_reported() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let (_, explain) = optimize(&im.db, im.music_groups, &pred, None).unwrap();
        assert_eq!(explain.clause_probability.len(), 2);
        for p in &explain.clause_probability {
            assert!(*p >= 0.0 && *p <= 1.0);
        }
        // CNF: least-probable clause sorted first.
        assert!(explain.clause_probability[0] <= explain.clause_probability[1]);
    }
}
