//! Incremental maintenance of derived subclasses.
//!
//! The paper leaves derived classes stale under data modification ("the
//! predicates of derived subclasses … do not (at present) form part of the
//! consistency requirements", §2) and the session refreshes them only on
//! commit. This module implements the natural extension: after a change to
//! attribute `A` of some entities, recompute the predicate *only for the
//! candidates the change can affect* — found by locating `A` inside the
//! predicate's maps and walking the prefix steps backwards through inverted
//! indexes.

use std::cell::RefCell;
use std::collections::HashMap;

use isis_core::{
    AttrId, Change, ChangeSet, ClassId, Database, EntityId, Map, OrderedSet, Predicate, Result,
    Rhs, ValueClass,
};

use crate::error::QueryError;
use crate::index::IndexLookup;
use crate::manager::IndexManager;
use crate::parallel::EvalPool;
use crate::program::{MemoTable, PredicateProgram};

/// Maintains one derived subclass incrementally.
///
/// Two modes of operation:
///
/// * **standalone** — the maintainer owns a private [`IndexManager`] over
///   the attributes its predicate uses, and [`apply_changes`] /
///   [`apply_attr_change`] both maintain those indexes and settle
///   membership;
/// * **shared** — a coordinator (the session) owns one
///   [`crate::IndexService`] for every consumer, drains the delta log once
///   per round, and drives each maintainer through
///   [`collect_affected`](DerivedMaintainer::collect_affected) (before and
///   after the shared drain) and [`settle`](DerivedMaintainer::settle).
///
/// [`apply_changes`]: DerivedMaintainer::apply_changes
/// [`apply_attr_change`]: DerivedMaintainer::apply_attr_change
#[derive(Debug)]
pub struct DerivedMaintainer {
    class: ClassId,
    parent: ClassId,
    pred: Predicate,
    /// Every attribute any map of the predicate uses.
    used: Vec<AttrId>,
    /// base attribute → grouping-ranged used attributes keyed by it. A
    /// transition of the base re-partitions the grouping and silently
    /// changes the expansion of every stored value of the dependents.
    grouping_bases: HashMap<AttrId, Vec<AttrId>>,
    /// Private inverted indexes for standalone operation.
    indexes: IndexManager,
    /// The predicate compiled once per (re)build and shared by every
    /// re-evaluation ([`settle`], [`apply_membership_change`]); mapped
    /// constant images are re-hoisted lazily when the delta epoch moves
    /// (`RefCell`: settle takes `&self`).
    ///
    /// [`settle`]: DerivedMaintainer::settle
    /// [`apply_membership_change`]: DerivedMaintainer::apply_membership_change
    program: RefCell<PredicateProgram>,
}

impl DerivedMaintainer {
    /// Creates a maintainer for a committed derived subclass, building the
    /// inverted indexes its maps require.
    pub fn new(db: &Database, class: ClassId) -> Result<Self> {
        let rec = db.class(class)?;
        let parent = rec
            .parent
            .ok_or(isis_core::CoreError::DerivedClass(class))?;
        let pred = rec
            .kind
            .predicate()
            .cloned()
            .ok_or(isis_core::CoreError::DerivedClass(class))?;
        let used = Self::attrs_used(&pred);
        let grouping_bases = Self::find_grouping_bases(db, &used)?;
        let mut indexes = IndexManager::new(db);
        for &attr in &used {
            indexes.add_index(db, attr)?;
        }
        let program = RefCell::new(PredicateProgram::compile(db, parent, &pred)?);
        Ok(DerivedMaintainer {
            class,
            parent,
            pred,
            used,
            grouping_bases,
            indexes,
            program,
        })
    }

    /// The derived class being maintained.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The attributes the predicate's maps traverse — the indexes a shared
    /// service must hold for this maintainer.
    pub fn used_attrs(&self) -> &[AttrId] {
        &self.used
    }

    fn find_grouping_bases(db: &Database, used: &[AttrId]) -> Result<HashMap<AttrId, Vec<AttrId>>> {
        let mut out: HashMap<AttrId, Vec<AttrId>> = HashMap::new();
        for &a in used {
            if let ValueClass::Grouping(g) = db.attr(a)?.value_class {
                out.entry(db.grouping(g)?.on_attr).or_default().push(a);
            }
        }
        Ok(out)
    }

    fn attrs_used(pred: &Predicate) -> Vec<AttrId> {
        let mut out = Vec::new();
        let mut push_map = |m: &Map| {
            for &a in m.steps() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        };
        for atom in pred.atoms() {
            push_map(&atom.lhs);
            match &atom.rhs {
                Rhs::SelfMap(m) | Rhs::SourceMap(m) => push_map(m),
                Rhs::Constant { map, .. } => push_map(map),
            }
        }
        out
    }

    /// `true` if the predicate mentions `attr` in any map.
    pub fn depends_on(&self, attr: AttrId) -> bool {
        self.used.contains(&attr)
    }

    /// Candidates (members of the parent class) whose predicate result may
    /// change after attribute `attr` of the `owners` entities was modified,
    /// walked through the maintainer's private indexes.
    pub fn affected_candidates(
        &self,
        db: &Database,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<OrderedSet> {
        self.affected_candidates_in(db, &self.indexes, attr, owners)
    }

    /// Candidates whose predicate result may change after attribute `attr`
    /// of the `owners` entities was modified, walked through `indexes`
    /// (private or shared).
    ///
    /// For every occurrence of `attr` at position *i* of a predicate map,
    /// the owners are walked backwards through the *i* prefix steps via the
    /// inverted indexes; survivors that are parent members are affected.
    pub fn affected_candidates_in(
        &self,
        db: &Database,
        indexes: &dyn IndexLookup,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<OrderedSet> {
        let parent_members = db.members(self.parent)?;
        let mut affected = OrderedSet::new();
        if !self.depends_on(attr) {
            return Ok(affected);
        }
        for atom in self.pred.atoms() {
            self.walk_back(
                &atom.lhs,
                indexes,
                attr,
                owners,
                parent_members,
                &mut affected,
            );
            if let Rhs::SelfMap(m) = &atom.rhs {
                self.walk_back(m, indexes, attr, owners, parent_members, &mut affected);
            }
        }
        Ok(affected)
    }

    fn walk_back(
        &self,
        map: &Map,
        indexes: &dyn IndexLookup,
        attr: AttrId,
        owners: &OrderedSet,
        parent_members: &OrderedSet,
        affected: &mut OrderedSet,
    ) {
        let steps = map.steps();
        for (i, &step) in steps.iter().enumerate() {
            if step != attr {
                continue;
            }
            // Invert the prefix steps[0..i] starting from the changed owners.
            let mut frontier = owners.clone();
            for &prev_attr in steps[..i].iter().rev() {
                let mut prev = OrderedSet::new();
                if let Some(idx) = indexes.index_for(prev_attr) {
                    for v in frontier.iter() {
                        if let Some(os) = idx.owners_of(v) {
                            prev.extend_from(os);
                        }
                    }
                }
                frontier = prev;
                if frontier.is_empty() {
                    break;
                }
            }
            for e in frontier.iter() {
                if parent_members.contains(e) {
                    affected.insert(e);
                }
            }
        }
    }

    /// Candidates affected by a transition of `base`, the attribute some
    /// used grouping-ranged attribute is keyed by: the re-partition can
    /// change the expansion of *any* stored value of the dependents, so
    /// every owner currently holding a value is walked back. Empty when
    /// `base` keys no used grouping.
    fn base_shift_affected(
        &self,
        db: &Database,
        indexes: &dyn IndexLookup,
        base: AttrId,
    ) -> Result<OrderedSet> {
        let mut affected = OrderedSet::new();
        let Some(dependents) = self.grouping_bases.get(&base) else {
            return Ok(affected);
        };
        for &x in dependents {
            match indexes.index_for(x) {
                Some(idx) => {
                    let owners = idx.all_owners();
                    affected.extend_from(&self.affected_candidates_in(db, indexes, x, &owners)?);
                }
                // No index to bound the blast radius: conservatively
                // re-evaluate the whole parent extent.
                None => affected.extend_from(db.members(self.parent)?),
            }
        }
        Ok(affected)
    }

    /// Notifies the maintainer that attribute `attr` of the `owners`
    /// entities changed: refreshes the affected inverted index postings,
    /// re-evaluates the predicate for affected candidates only, and adds /
    /// removes membership as needed. Returns `(added, removed)` counts.
    pub fn apply_attr_change(
        &mut self,
        db: &mut Database,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<(usize, usize)> {
        // Affected candidates are computed against the *old* index state
        // first, then again against the new one: an owner that left a
        // posting list must still trigger re-evaluation of the candidates
        // that used to reach it. A change to a grouping's base attribute
        // additionally touches every owner of the dependent ranged indexes.
        let mut affected = self.affected_candidates(db, attr, owners)?;
        affected.extend_from(&self.base_shift_affected(db, &self.indexes, attr)?);
        self.indexes.refresh_owners(db, attr, owners)?;
        affected.extend_from(&self.affected_candidates(db, attr, owners)?);
        affected.extend_from(&self.base_shift_affected(db, &self.indexes, attr)?);
        self.settle(db, &affected)
    }

    /// Collects every candidate a change window can affect, walking the
    /// given `indexes` (which must still describe the *start* of the
    /// window; call again after the index drain for the end state).
    /// Read-only: does not touch indexes or membership.
    pub fn collect_affected(
        &self,
        db: &Database,
        indexes: &dyn IndexLookup,
        changes: &ChangeSet,
    ) -> Result<OrderedSet> {
        let _span = isis_obs::global().span("query.incremental.collect");
        let mut affected = OrderedSet::new();
        for change in changes.iter() {
            match change {
                Change::AttrAssigned { entity, attr, .. } => {
                    if self.depends_on(*attr) {
                        let owners: OrderedSet = [*entity].into_iter().collect();
                        affected.extend_from(
                            &self.affected_candidates_in(db, indexes, *attr, &owners)?,
                        );
                    }
                    affected.extend_from(&self.base_shift_affected(db, indexes, *attr)?);
                }
                Change::MembershipAdded { entity, class }
                | Change::MembershipRemoved { entity, class } => {
                    // Echoes of our own membership writes land here too;
                    // they re-evaluate to a no-op.
                    if *class == self.parent {
                        affected.insert(*entity);
                    }
                }
                Change::EntityInserted { .. }
                | Change::EntityDeleted { .. }
                | Change::EntityRenamed { .. }
                | Change::Schema(_) => {}
            }
        }
        Ok(affected)
    }

    /// Re-evaluates the predicate for the `affected` candidates and adds /
    /// removes membership as needed. Returns `(added, removed)` counts.
    ///
    /// Serial convenience wrapper over
    /// [`settle_with`](DerivedMaintainer::settle_with) for standalone
    /// callers; the session passes the shared service's pool instead.
    pub fn settle(&self, db: &mut Database, affected: &OrderedSet) -> Result<(usize, usize)> {
        self.settle_with(db, affected, None).map_err(|e| match e {
            QueryError::Core(c) => c,
            // The serial path never crosses a worker, so a panic error is
            // unreachable; fold any other variant into a core report
            // rather than dropping it.
            other => isis_core::CoreError::Inconsistent(other.to_string()),
        })
    }

    /// Re-evaluates the predicate for the `affected` candidates and adds /
    /// removes membership as needed, evaluating over `pool`'s workers when
    /// one is given and the affected set is large enough to chunk (the
    /// session hands in the [`crate::IndexService`]'s pool so refresh
    /// rounds and queries share workers). Returns `(added, removed)`.
    ///
    /// Two phases: every live affected candidate is evaluated first (no
    /// writes), then membership writes run serially in affected order, so
    /// the serial and pooled paths produce identical memberships, identical
    /// write order, and identical no-writes-on-error behaviour. Membership
    /// writes can't change attribute values or parent extents, so the
    /// phase-1 results stay valid through phase 2. Worker panics surface as
    /// [`QueryError::WorkerPanic`].
    pub fn settle_with(
        &self,
        db: &mut Database,
        affected: &OrderedSet,
        pool: Option<&EvalPool>,
    ) -> Result<(usize, usize), QueryError> {
        let obs = isis_obs::global();
        let _span = obs.span("query.incremental.settle");
        obs.count("query.incremental.candidates", affected.len() as u64);
        // One compiled program serves every candidate; mapped constant
        // images are re-hoisted once here if data changed since the last
        // settle (membership writes can't invalidate them).
        let mut prog = self.program.borrow_mut();
        prog.ensure_fresh(db)?;
        // Phase 1: evaluate. Deleted-later-in-the-window entities are
        // skipped (extents already scrubbed); candidates outside the parent
        // evaluate to "should not be a member" without running the program.
        let candidates: Vec<EntityId> = affected.iter().filter(|&e| db.entity(e).is_ok()).collect();
        let parent_members = db.members(self.parent)?;
        let eval_list: Vec<EntityId> = candidates
            .iter()
            .copied()
            .filter(|&e| parent_members.contains(e))
            .collect();
        let survivors = match pool {
            Some(p) => p.evaluate(db, &prog, &eval_list, None)?,
            None => {
                let mut memo = MemoTable::new(&prog);
                let mut out = OrderedSet::new();
                for e in prog.eval_batch(db, &eval_list, None, &mut memo)? {
                    out.insert(e);
                }
                memo.flush_obs();
                out
            }
        };
        // Phase 2: write, serially, in affected order.
        let mut added = 0;
        let mut removed = 0;
        for &e in &candidates {
            let should = survivors.contains(e);
            let is = db.members(self.class)?.contains(e);
            if should && !is {
                db.force_membership(e, self.class)?;
                added += 1;
            } else if !should && is {
                db.remove_from_class(e, self.class)?;
                removed += 1;
            }
        }
        obs.count("query.incremental.added", added as u64);
        obs.count("query.incremental.removed", removed as u64);
        if added + removed > 0 {
            obs.flight_event("query.incremental.settle", || {
                isis_obs::Json::obj([
                    ("class", isis_obs::Json::from(self.class.raw() as u64)),
                    ("affected", isis_obs::Json::from(affected.len())),
                    ("added", isis_obs::Json::from(added)),
                    ("removed", isis_obs::Json::from(removed)),
                ])
            });
        }
        Ok((added, removed))
    }

    /// Consumes a [`ChangeSet`] from the core delta log, re-evaluating the
    /// predicate only for candidates the recorded changes can affect.
    /// Returns `(added, removed)` membership counts. Falls back to
    /// [`DerivedMaintainer::rebuild`] when the set contains schema edits.
    ///
    /// The set must describe the transition from the state the maintainer
    /// last saw to `db`'s current state (e.g. `db.changes_since(epoch)`).
    pub fn apply_changes(
        &mut self,
        db: &mut Database,
        changes: &ChangeSet,
    ) -> Result<(usize, usize)> {
        if changes.has_schema_changes() {
            return self.rebuild(db);
        }
        // Candidates reached through the *old* postings (an owner leaving a
        // posting list must still re-evaluate whoever used to reach it) …
        let mut affected = self.collect_affected(db, &self.indexes, changes)?;
        // … then drain the window into the private indexes …
        self.indexes.apply(db, changes)?;
        // … and collect again through the new postings.
        affected.extend_from(&self.collect_affected(db, &self.indexes, changes)?);
        self.settle(db, &affected)
    }

    /// Full fallback: re-reads the stored predicate (a schema edit may have
    /// replaced it), rebuilds every inverted index, and re-evaluates the
    /// whole parent extent via [`Database::refresh_derived_class`].
    pub fn rebuild(&mut self, db: &mut Database) -> Result<(usize, usize)> {
        let obs = isis_obs::global();
        let _span = obs.span("query.incremental.rebuild");
        obs.count("query.incremental.rebuilds", 1);
        let rec = db.class(self.class)?;
        self.parent = rec
            .parent
            .ok_or(isis_core::CoreError::DerivedClass(self.class))?;
        self.pred = rec
            .kind
            .predicate()
            .cloned()
            .ok_or(isis_core::CoreError::DerivedClass(self.class))?;
        let before = db.members(self.class)?.clone();
        db.refresh_derived_class(self.class)?;
        let after = db.members(self.class)?;
        let added = after.iter().filter(|e| !before.contains(*e)).count();
        let removed = before.iter().filter(|e| !after.contains(*e)).count();
        self.used = Self::attrs_used(&self.pred);
        self.grouping_bases = Self::find_grouping_bases(db, &self.used)?;
        self.indexes = IndexManager::new(db);
        for &attr in &self.used {
            self.indexes.add_index(db, attr)?;
        }
        // A schema edit may have replaced the predicate: recompile.
        *self.program.borrow_mut() = PredicateProgram::compile(db, self.parent, &self.pred)?;
        Ok((added, removed))
    }

    /// Handles an entity joining or leaving the *parent* class: the entity
    /// itself is (re)evaluated.
    pub fn apply_membership_change(
        &mut self,
        db: &mut Database,
        entity: EntityId,
    ) -> Result<(usize, usize)> {
        let mut added = 0;
        let mut removed = 0;
        let in_parent = db.members(self.parent)?.contains(entity);
        let is = db.members(self.class)?.contains(entity);
        let mut prog = self.program.borrow_mut();
        prog.ensure_fresh(db)?;
        let mut memo = MemoTable::new(&prog);
        let should = in_parent && prog.eval_for(db, entity, None, &mut memo)?;
        if should && !is {
            db.force_membership(entity, self.class)?;
            added += 1;
        } else if !should && is {
            db.remove_from_class(entity, self.class)?;
            removed += 1;
        }
        Ok((added, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn maintainer_tracks_membership_changes() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        assert!(maint.depends_on(im.size));
        assert!(maint.depends_on(im.members));
        assert!(maint.depends_on(im.plays));
        assert!(!maint.depends_on(im.family));

        // Give String Fling a pianist: Gil learns piano.
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        let owners: OrderedSet = [gil].into_iter().collect();
        let (added, removed) = maint
            .apply_attr_change(&mut im.db, im.plays, &owners)
            .unwrap();
        assert_eq!((added, removed), (1, 0));
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        assert!(im.db.members(quartets).unwrap().contains(fling));

        // Shrink LaBelle Musique: it must leave.
        let edith = im.edith;
        let labelle = im.labelle;
        let cur = im.db.attr_value_set(labelle, im.members).unwrap();
        let without: Vec<_> = cur.iter().filter(|e| *e != edith).collect();
        im.db.assign_multi(labelle, im.members, without).unwrap();
        let three = im.db.int(3);
        im.db.assign_single(labelle, im.size, three).unwrap();
        let owners: OrderedSet = [labelle].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.members, &owners)
            .unwrap();
        let (_, removed) = maint
            .apply_attr_change(&mut im.db, im.size, &owners)
            .unwrap();
        assert!(!im.db.members(quartets).unwrap().contains(labelle));
        // Removal happened in one of the two notifications.
        let _ = removed;
    }

    #[test]
    fn incremental_agrees_with_full_recompute() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let hana = im.db.entity_by_name(im.musicians, "Hana").unwrap();
        let trio = im
            .db
            .entity_by_name(im.music_groups, "Trio Grande")
            .unwrap();
        let dave = im.db.entity_by_name(im.musicians, "Dave").unwrap();
        let four = im.db.int(4);
        // 1. Trio Grande grows to four members (already has pianists).
        let mut members = im.db.attr_value_set(trio, im.members).unwrap();
        members.insert(dave);
        im.db
            .assign_multi(trio, im.members, members.iter())
            .unwrap();
        im.db.assign_single(trio, im.size, four).unwrap();
        let owners: OrderedSet = [trio].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.members, &owners)
            .unwrap();
        maint
            .apply_attr_change(&mut im.db, im.size, &owners)
            .unwrap();
        // 2. Hana stops playing piano (affects Trio via members plays map).
        let guitar = im.db.entity_by_name(im.instruments, "guitar").unwrap();
        im.db.assign_multi(hana, im.plays, [guitar]).unwrap();
        let owners: OrderedSet = [hana].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.plays, &owners)
            .unwrap();
        let mut a: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        a.sort();
        let mut b: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        b.sort();
        assert_eq!(a, b);
        // Trio Grande still qualifies through Fiona's piano.
        assert!(im.db.members(quartets).unwrap().contains(trio));
    }

    #[test]
    fn unrelated_attr_changes_touch_nothing() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // A family reassignment is invisible to the quartets predicate.
        let owners: OrderedSet = [im.flute].into_iter().collect();
        let affected = maint
            .affected_candidates(&im.db, im.family, &owners)
            .unwrap();
        assert!(affected.is_empty());
        // And a popular-flag change likewise.
        let affected = maint
            .affected_candidates(&im.db, im.popular, &owners)
            .unwrap();
        assert!(affected.is_empty());
    }

    #[test]
    fn plays_change_affects_only_groups_reaching_the_musician() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // Dave is in String Fling only.
        let dave = im.db.entity_by_name(im.musicians, "Dave").unwrap();
        let owners: OrderedSet = [dave].into_iter().collect();
        let affected = maint
            .affected_candidates(&im.db, im.plays, &owners)
            .unwrap();
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        assert_eq!(affected.as_slice(), &[fling]);
    }

    #[test]
    fn apply_changes_consumes_the_delta_log() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();

        // Gil learns piano → String Fling becomes a quartet.
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        // A brand-new qualifying group appears, member by member.
        let g = im.db.insert_entity(im.music_groups, "New Four").unwrap();
        let four = im.db.int(4);
        im.db.assign_single(g, im.size, four).unwrap();
        let kurt = im.db.entity_by_name(im.musicians, "Kurt").unwrap();
        let amy = im.db.entity_by_name(im.musicians, "Amy").unwrap();
        let bob = im.db.entity_by_name(im.musicians, "Bob").unwrap();
        let carol = im.db.entity_by_name(im.musicians, "Carol").unwrap();
        im.db
            .assign_multi(g, im.members, [kurt, amy, bob, carol])
            .unwrap();
        // And LaBelle Musique shrinks to a trio.
        let cur = im.db.attr_value_set(im.labelle, im.members).unwrap();
        let without: Vec<_> = cur.iter().filter(|e| *e != im.edith).collect();
        im.db.assign_multi(im.labelle, im.members, without).unwrap();
        let three = im.db.int(3);
        im.db.assign_single(im.labelle, im.size, three).unwrap();

        let changes = im.db.changes_since(mark).unwrap();
        let (added, removed) = maint.apply_changes(&mut im.db, &changes).unwrap();
        assert!(added >= 2, "String Fling and New Four must join");
        assert!(removed >= 1, "LaBelle must leave");
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn apply_changes_handles_entity_deletion() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();
        // Deleting a quartet member's pianist can disqualify the group.
        let member_of_quartet = im
            .db
            .members(quartets)
            .unwrap()
            .iter()
            .next()
            .expect("seed data has a quartet");
        im.db.delete_entity(member_of_quartet).unwrap();
        let changes = im.db.changes_since(mark).unwrap();
        maint.apply_changes(&mut im.db, &changes).unwrap();
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn apply_changes_rebuilds_on_schema_edit() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();
        im.db.create_baseclass("venues").unwrap();
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        let changes = im.db.changes_since(mark).unwrap();
        assert!(changes.has_schema_changes());
        maint.apply_changes(&mut im.db, &changes).unwrap();
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn grouping_rekey_mid_drain_updates_derived_membership() {
        use isis_core::{Atom, Clause, CompareOp, Multiplicity};
        let mut im = instrumental_music().unwrap();
        // sections: music_groups → by_family sets. The predicate asks which
        // groups' sections *expand* to a set containing the flute.
        let sections = im
            .db
            .create_attribute(
                im.music_groups,
                "sections",
                im.by_family,
                Multiplicity::Multi,
            )
            .unwrap();
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        im.db.assign_multi(fling, sections, [im.brass]).unwrap();
        im.db
            .assign_multi(im.labelle, sections, [im.woodwind])
            .unwrap();
        let pred = Predicate::dnf(vec![Clause::new(vec![Atom::new(
            Map::single(sections),
            CompareOp::Match,
            Rhs::constant(im.instruments, [im.flute]),
        )])]);
        let flute_groups = im
            .db
            .create_derived_subclass(im.music_groups, "flute_groups")
            .unwrap();
        im.db.commit_membership(flute_groups, pred.clone()).unwrap();
        // flute starts mis-filed under brass → String Fling qualifies.
        assert!(im.db.members(flute_groups).unwrap().contains(fling));
        assert!(!im.db.members(flute_groups).unwrap().contains(im.labelle));
        let mut maint = DerivedMaintainer::new(&im.db, flute_groups).unwrap();
        let mark = im.db.delta_epoch();
        // Mid-drain re-key: the §4.2 correction moves flute to woodwind,
        // re-partitioning by_family and silently re-aiming every stored
        // sections value — without any transition of `sections` itself.
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap(); // unrelated noise
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        let changes = im.db.changes_since(mark).unwrap();
        let (added, removed) = maint.apply_changes(&mut im.db, &changes).unwrap();
        assert_eq!((added, removed), (1, 1), "re-key must swap the member");
        let got = im.db.members(flute_groups).unwrap();
        assert!(got.contains(im.labelle), "woodwind sections now hold flute");
        assert!(!got.contains(fling), "brass sections lost the flute");
        let want = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap();
        assert!(got.set_eq(&want));
    }

    #[test]
    fn membership_change_reevaluates_entity() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // A brand-new qualifying group appears.
        let g = im.db.insert_entity(im.music_groups, "New Four").unwrap();
        let four = im.db.int(4);
        im.db.assign_single(g, im.size, four).unwrap();
        let kurt = im.db.entity_by_name(im.musicians, "Kurt").unwrap();
        let amy = im.db.entity_by_name(im.musicians, "Amy").unwrap();
        let bob = im.db.entity_by_name(im.musicians, "Bob").unwrap();
        let carol = im.db.entity_by_name(im.musicians, "Carol").unwrap();
        im.db
            .assign_multi(g, im.members, [kurt, amy, bob, carol])
            .unwrap();
        let (added, _) = maint.apply_membership_change(&mut im.db, g).unwrap();
        assert_eq!(added, 1);
        assert!(im.db.members(quartets).unwrap().contains(g));
    }
}
