//! Incremental maintenance of derived subclasses.
//!
//! The paper leaves derived classes stale under data modification ("the
//! predicates of derived subclasses … do not (at present) form part of the
//! consistency requirements", §2) and the session refreshes them only on
//! commit. This module implements the natural extension: after a change to
//! attribute `A` of some entities, recompute the predicate *only for the
//! candidates the change can affect* — found by locating `A` inside the
//! predicate's maps and walking the prefix steps backwards through inverted
//! indexes.

use std::collections::HashMap;

use isis_core::{
    AttrId, Change, ChangeSet, ClassId, Database, EntityId, Map, OrderedSet, Predicate, Result,
    Rhs, ValueClass,
};

use crate::index::AttrIndex;

/// Maintains one derived subclass incrementally.
#[derive(Debug)]
pub struct DerivedMaintainer {
    class: ClassId,
    parent: ClassId,
    pred: Predicate,
    /// Inverted indexes for every attribute any map of the predicate uses.
    inverses: HashMap<AttrId, AttrIndex>,
}

impl DerivedMaintainer {
    /// Creates a maintainer for a committed derived subclass, building the
    /// inverted indexes its maps require.
    pub fn new(db: &Database, class: ClassId) -> Result<Self> {
        let rec = db.class(class)?;
        let parent = rec
            .parent
            .ok_or(isis_core::CoreError::DerivedClass(class))?;
        let pred = rec
            .kind
            .predicate()
            .cloned()
            .ok_or(isis_core::CoreError::DerivedClass(class))?;
        let mut inverses = HashMap::new();
        for attr in Self::attrs_used(&pred) {
            inverses.insert(attr, AttrIndex::build(db, attr)?);
        }
        Ok(DerivedMaintainer {
            class,
            parent,
            pred,
            inverses,
        })
    }

    /// The derived class being maintained.
    pub fn class(&self) -> ClassId {
        self.class
    }

    fn attrs_used(pred: &Predicate) -> Vec<AttrId> {
        let mut out = Vec::new();
        let mut push_map = |m: &Map| {
            for &a in m.steps() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        };
        for atom in pred.atoms() {
            push_map(&atom.lhs);
            match &atom.rhs {
                Rhs::SelfMap(m) | Rhs::SourceMap(m) => push_map(m),
                Rhs::Constant { map, .. } => push_map(map),
            }
        }
        out
    }

    /// `true` if the predicate mentions `attr` in any map.
    pub fn depends_on(&self, attr: AttrId) -> bool {
        self.inverses.contains_key(&attr)
    }

    /// Candidates (members of the parent class) whose predicate result may
    /// change after attribute `attr` of the `owners` entities was modified.
    ///
    /// For every occurrence of `attr` at position *i* of a predicate map,
    /// the owners are walked backwards through the *i* prefix steps via the
    /// inverted indexes; survivors that are parent members are affected.
    pub fn affected_candidates(
        &self,
        db: &Database,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<OrderedSet> {
        let parent_members = db.members(self.parent)?;
        let mut affected = OrderedSet::new();
        if !self.depends_on(attr) {
            return Ok(affected);
        }
        for atom in self.pred.atoms() {
            self.walk_back(&atom.lhs, attr, owners, parent_members, &mut affected);
            if let Rhs::SelfMap(m) = &atom.rhs {
                self.walk_back(m, attr, owners, parent_members, &mut affected);
            }
        }
        Ok(affected)
    }

    fn walk_back(
        &self,
        map: &Map,
        attr: AttrId,
        owners: &OrderedSet,
        parent_members: &OrderedSet,
        affected: &mut OrderedSet,
    ) {
        let steps = map.steps();
        for (i, &step) in steps.iter().enumerate() {
            if step != attr {
                continue;
            }
            // Invert the prefix steps[0..i] starting from the changed owners.
            let mut frontier = owners.clone();
            for &prev_attr in steps[..i].iter().rev() {
                let mut prev = OrderedSet::new();
                if let Some(idx) = self.inverses.get(&prev_attr) {
                    for v in frontier.iter() {
                        if let Some(os) = idx.owners_of(v) {
                            prev.extend_from(os);
                        }
                    }
                }
                frontier = prev;
                if frontier.is_empty() {
                    break;
                }
            }
            for e in frontier.iter() {
                if parent_members.contains(e) {
                    affected.insert(e);
                }
            }
        }
    }

    /// Notifies the maintainer that attribute `attr` of the `owners`
    /// entities changed: refreshes the affected inverted index postings,
    /// re-evaluates the predicate for affected candidates only, and adds /
    /// removes membership as needed. Returns `(added, removed)` counts.
    pub fn apply_attr_change(
        &mut self,
        db: &mut Database,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<(usize, usize)> {
        // Affected candidates are computed against the *old* index state
        // first, then again against the new one: an owner that left a
        // posting list must still trigger re-evaluation of the candidates
        // that used to reach it.
        let mut affected = self.affected_candidates(db, attr, owners)?;
        if let Some(idx) = self.inverses.get_mut(&attr) {
            for e in owners.iter() {
                let old = idx.owned_values(e);
                let new = db.attr_value_set(e, attr)?;
                idx.update(e, &old, &new);
            }
        }
        affected.extend_from(&self.affected_candidates(db, attr, owners)?);
        let mut added = 0;
        let mut removed = 0;
        for e in affected.iter() {
            let should = db.eval_predicate_for(e, &self.pred, None)?;
            let is = db.members(self.class)?.contains(e);
            if should && !is {
                db.force_membership(e, self.class)?;
                added += 1;
            } else if !should && is {
                db.remove_from_class(e, self.class)?;
                removed += 1;
            }
        }
        Ok((added, removed))
    }

    /// Consumes a [`ChangeSet`] from the core delta log, re-evaluating the
    /// predicate only for candidates the recorded changes can affect.
    /// Returns `(added, removed)` membership counts. Falls back to
    /// [`DerivedMaintainer::rebuild`] when the set contains schema edits.
    ///
    /// The set must describe the transition from the state the maintainer
    /// last saw to `db`'s current state (e.g. `db.changes_since(epoch)`).
    pub fn apply_changes(
        &mut self,
        db: &mut Database,
        changes: &ChangeSet,
    ) -> Result<(usize, usize)> {
        if changes.has_schema_changes() {
            return self.rebuild(db);
        }
        let mut affected = OrderedSet::new();
        for change in changes.iter() {
            match change {
                Change::AttrAssigned {
                    entity,
                    attr,
                    old,
                    new,
                } => {
                    if !self.depends_on(*attr) {
                        continue;
                    }
                    let owners: OrderedSet = [*entity].into_iter().collect();
                    // Candidates reached through the *old* postings (an owner
                    // leaving a posting list must still re-evaluate whoever
                    // used to reach it), then through the new ones.
                    affected.extend_from(&self.affected_candidates(db, *attr, &owners)?);
                    let grouping_ranged = db
                        .attr(*attr)
                        .map(|r| matches!(r.value_class, ValueClass::Grouping(_)))
                        .unwrap_or(false);
                    if let Some(idx) = self.inverses.get_mut(attr) {
                        if grouping_ranged {
                            // The recorded transition is in grouping-index
                            // entities; postings hold expanded members.
                            *idx = AttrIndex::build(db, *attr)?;
                        } else {
                            idx.update(*entity, &old.as_set(), &new.as_set());
                        }
                    }
                    affected.extend_from(&self.affected_candidates(db, *attr, &owners)?);
                }
                Change::MembershipAdded { entity, class }
                | Change::MembershipRemoved { entity, class } => {
                    if *class == self.parent {
                        affected.insert(*entity);
                    }
                    // Echoes of our own membership writes land here too;
                    // they re-evaluate to a no-op.
                    self.refresh_owner_postings(db, *entity, *class)?;
                }
                Change::EntityInserted { .. }
                | Change::EntityDeleted { .. }
                | Change::EntityRenamed { .. }
                | Change::Schema(_) => {}
            }
        }
        let mut added = 0;
        let mut removed = 0;
        for e in affected.iter() {
            if db.entity(e).is_err() {
                continue; // deleted later in the window; extents already scrubbed
            }
            let in_parent = db.members(self.parent)?.contains(e);
            let should = in_parent && db.eval_predicate_for(e, &self.pred, None)?;
            let is = db.members(self.class)?.contains(e);
            if should && !is {
                db.force_membership(e, self.class)?;
                added += 1;
            } else if !should && is {
                db.remove_from_class(e, self.class)?;
                removed += 1;
            }
        }
        Ok((added, removed))
    }

    /// Full fallback: re-reads the stored predicate (a schema edit may have
    /// replaced it), rebuilds every inverted index, and re-evaluates the
    /// whole parent extent via [`Database::refresh_derived_class`].
    pub fn rebuild(&mut self, db: &mut Database) -> Result<(usize, usize)> {
        let rec = db.class(self.class)?;
        self.parent = rec
            .parent
            .ok_or(isis_core::CoreError::DerivedClass(self.class))?;
        self.pred = rec
            .kind
            .predicate()
            .cloned()
            .ok_or(isis_core::CoreError::DerivedClass(self.class))?;
        let before = db.members(self.class)?.clone();
        db.refresh_derived_class(self.class)?;
        let after = db.members(self.class)?;
        let added = after.iter().filter(|e| !before.contains(*e)).count();
        let removed = before.iter().filter(|e| !after.contains(*e)).count();
        self.inverses.clear();
        for attr in Self::attrs_used(&self.pred) {
            self.inverses.insert(attr, AttrIndex::build(db, attr)?);
        }
        Ok((added, removed))
    }

    /// An entity entered or left `class`: indexes over attributes *owned by*
    /// `class` gain or lose that owner's postings (index content follows the
    /// owner extent, exactly like [`AttrIndex::build`]).
    fn refresh_owner_postings(
        &mut self,
        db: &Database,
        entity: EntityId,
        class: ClassId,
    ) -> Result<()> {
        let owned: Vec<AttrId> = self
            .inverses
            .keys()
            .copied()
            .filter(|a| db.attr(*a).map(|r| r.owner == class).unwrap_or(false))
            .collect();
        for attr in owned {
            let in_extent = db.entity(entity).is_ok() && db.members(class)?.contains(entity);
            let new = if in_extent {
                db.attr_value_set(entity, attr)?
            } else {
                OrderedSet::new()
            };
            if let Some(idx) = self.inverses.get_mut(&attr) {
                let old = idx.owned_values(entity);
                idx.update(entity, &old, &new);
            }
        }
        Ok(())
    }

    /// Handles an entity joining or leaving the *parent* class: the entity
    /// itself is (re)evaluated.
    pub fn apply_membership_change(
        &mut self,
        db: &mut Database,
        entity: EntityId,
    ) -> Result<(usize, usize)> {
        let mut added = 0;
        let mut removed = 0;
        let in_parent = db.members(self.parent)?.contains(entity);
        let is = db.members(self.class)?.contains(entity);
        let should = in_parent && db.eval_predicate_for(entity, &self.pred, None)?;
        if should && !is {
            db.force_membership(entity, self.class)?;
            added += 1;
        } else if !should && is {
            db.remove_from_class(entity, self.class)?;
            removed += 1;
        }
        Ok((added, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn maintainer_tracks_membership_changes() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        assert!(maint.depends_on(im.size));
        assert!(maint.depends_on(im.members));
        assert!(maint.depends_on(im.plays));
        assert!(!maint.depends_on(im.family));

        // Give String Fling a pianist: Gil learns piano.
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        let owners: OrderedSet = [gil].into_iter().collect();
        let (added, removed) = maint
            .apply_attr_change(&mut im.db, im.plays, &owners)
            .unwrap();
        assert_eq!((added, removed), (1, 0));
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        assert!(im.db.members(quartets).unwrap().contains(fling));

        // Shrink LaBelle Musique: it must leave.
        let edith = im.edith;
        let labelle = im.labelle;
        let cur = im.db.attr_value_set(labelle, im.members).unwrap();
        let without: Vec<_> = cur.iter().filter(|e| *e != edith).collect();
        im.db.assign_multi(labelle, im.members, without).unwrap();
        let three = im.db.int(3);
        im.db.assign_single(labelle, im.size, three).unwrap();
        let owners: OrderedSet = [labelle].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.members, &owners)
            .unwrap();
        let (_, removed) = maint
            .apply_attr_change(&mut im.db, im.size, &owners)
            .unwrap();
        assert!(!im.db.members(quartets).unwrap().contains(labelle));
        // Removal happened in one of the two notifications.
        let _ = removed;
    }

    #[test]
    fn incremental_agrees_with_full_recompute() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let hana = im.db.entity_by_name(im.musicians, "Hana").unwrap();
        let trio = im
            .db
            .entity_by_name(im.music_groups, "Trio Grande")
            .unwrap();
        let dave = im.db.entity_by_name(im.musicians, "Dave").unwrap();
        let four = im.db.int(4);
        // 1. Trio Grande grows to four members (already has pianists).
        let mut members = im.db.attr_value_set(trio, im.members).unwrap();
        members.insert(dave);
        im.db
            .assign_multi(trio, im.members, members.iter())
            .unwrap();
        im.db.assign_single(trio, im.size, four).unwrap();
        let owners: OrderedSet = [trio].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.members, &owners)
            .unwrap();
        maint
            .apply_attr_change(&mut im.db, im.size, &owners)
            .unwrap();
        // 2. Hana stops playing piano (affects Trio via members plays map).
        let guitar = im.db.entity_by_name(im.instruments, "guitar").unwrap();
        im.db.assign_multi(hana, im.plays, [guitar]).unwrap();
        let owners: OrderedSet = [hana].into_iter().collect();
        maint
            .apply_attr_change(&mut im.db, im.plays, &owners)
            .unwrap();
        let mut a: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        a.sort();
        let mut b: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        b.sort();
        assert_eq!(a, b);
        // Trio Grande still qualifies through Fiona's piano.
        assert!(im.db.members(quartets).unwrap().contains(trio));
    }

    #[test]
    fn unrelated_attr_changes_touch_nothing() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // A family reassignment is invisible to the quartets predicate.
        let owners: OrderedSet = [im.flute].into_iter().collect();
        let affected = maint
            .affected_candidates(&im.db, im.family, &owners)
            .unwrap();
        assert!(affected.is_empty());
        // And a popular-flag change likewise.
        let affected = maint
            .affected_candidates(&im.db, im.popular, &owners)
            .unwrap();
        assert!(affected.is_empty());
    }

    #[test]
    fn plays_change_affects_only_groups_reaching_the_musician() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // Dave is in String Fling only.
        let dave = im.db.entity_by_name(im.musicians, "Dave").unwrap();
        let owners: OrderedSet = [dave].into_iter().collect();
        let affected = maint
            .affected_candidates(&im.db, im.plays, &owners)
            .unwrap();
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        assert_eq!(affected.as_slice(), &[fling]);
    }

    #[test]
    fn apply_changes_consumes_the_delta_log() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();

        // Gil learns piano → String Fling becomes a quartet.
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        // A brand-new qualifying group appears, member by member.
        let g = im.db.insert_entity(im.music_groups, "New Four").unwrap();
        let four = im.db.int(4);
        im.db.assign_single(g, im.size, four).unwrap();
        let kurt = im.db.entity_by_name(im.musicians, "Kurt").unwrap();
        let amy = im.db.entity_by_name(im.musicians, "Amy").unwrap();
        let bob = im.db.entity_by_name(im.musicians, "Bob").unwrap();
        let carol = im.db.entity_by_name(im.musicians, "Carol").unwrap();
        im.db
            .assign_multi(g, im.members, [kurt, amy, bob, carol])
            .unwrap();
        // And LaBelle Musique shrinks to a trio.
        let cur = im.db.attr_value_set(im.labelle, im.members).unwrap();
        let without: Vec<_> = cur.iter().filter(|e| *e != im.edith).collect();
        im.db.assign_multi(im.labelle, im.members, without).unwrap();
        let three = im.db.int(3);
        im.db.assign_single(im.labelle, im.size, three).unwrap();

        let changes = im.db.changes_since(mark).unwrap();
        let (added, removed) = maint.apply_changes(&mut im.db, &changes).unwrap();
        assert!(added >= 2, "String Fling and New Four must join");
        assert!(removed >= 1, "LaBelle must leave");
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn apply_changes_handles_entity_deletion() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();
        // Deleting a quartet member's pianist can disqualify the group.
        let member_of_quartet = im
            .db
            .members(quartets)
            .unwrap()
            .iter()
            .next()
            .expect("seed data has a quartet");
        im.db.delete_entity(member_of_quartet).unwrap();
        let changes = im.db.changes_since(mark).unwrap();
        maint.apply_changes(&mut im.db, &changes).unwrap();
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn apply_changes_rebuilds_on_schema_edit() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred.clone()).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        let mark = im.db.delta_epoch();
        im.db.create_baseclass("venues").unwrap();
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        let changes = im.db.changes_since(mark).unwrap();
        assert!(changes.has_schema_changes());
        maint.apply_changes(&mut im.db, &changes).unwrap();
        let mut got: Vec<EntityId> = im.db.members(quartets).unwrap().iter().collect();
        got.sort();
        let mut want: Vec<EntityId> = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap()
            .iter()
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn membership_change_reevaluates_entity() {
        let mut im = instrumental_music().unwrap();
        let pred = quartets_predicate(&mut im);
        let quartets = im
            .db
            .create_derived_subclass(im.music_groups, "quartets")
            .unwrap();
        im.db.commit_membership(quartets, pred).unwrap();
        let mut maint = DerivedMaintainer::new(&im.db, quartets).unwrap();
        // A brand-new qualifying group appears.
        let g = im.db.insert_entity(im.music_groups, "New Four").unwrap();
        let four = im.db.int(4);
        im.db.assign_single(g, im.size, four).unwrap();
        let kurt = im.db.entity_by_name(im.musicians, "Kurt").unwrap();
        let amy = im.db.entity_by_name(im.musicians, "Amy").unwrap();
        let bob = im.db.entity_by_name(im.musicians, "Bob").unwrap();
        let carol = im.db.entity_by_name(im.musicians, "Carol").unwrap();
        im.db
            .assign_multi(g, im.members, [kurt, amy, bob, carol])
            .unwrap();
        let (added, _) = maint.apply_membership_change(&mut im.db, g).unwrap();
        assert_eq!(added, 1);
        assert!(im.db.members(quartets).unwrap().contains(g));
    }
}
