//! A minimal relational model, plus the standard relational encoding of an
//! ISIS database.
//!
//! The paper claims its predicates "provide the full power of relational
//! algebra" (§2). To make that claim checkable we implement a relational
//! engine and compile ISIS predicates into it ([`crate::compile`]); property
//! tests then verify that both evaluators agree.
//!
//! The encoding is the classic one:
//!
//! * each class `C` becomes a unary relation `class_C(e)`;
//! * each attribute `A` becomes a binary relation `attr_A(e, v)` holding the
//!   *expanded* value pairs (grouping-ranged attributes are expanded into
//!   the members of the named sets, matching map semantics).

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use isis_core::{AttrId, ClassId, Database, EntityId, Result};

/// A tuple of entity ids.
pub type Tuple = Vec<EntityId>;

/// A relation: a named set of fixed-arity tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// The relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// The tuples, deduplicated, in sorted order.
    pub tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn empty(name: impl Into<String>, arity: usize) -> Relation {
        Relation {
            name: name.into(),
            arity,
            tuples: BTreeSet::new(),
        }
    }

    /// Builds a relation from tuples, checking arity.
    pub fn from_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Relation {
        let mut r = Relation::empty(name, arity);
        for t in tuples {
            debug_assert_eq!(t.len(), arity);
            r.tuples.insert(t);
        }
        r
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples of a unary relation as a sorted vector of entities.
    pub fn unary_entities(&self) -> Vec<EntityId> {
        debug_assert_eq!(self.arity, 1);
        self.tuples.iter().map(|t| t[0]).collect()
    }

    /// Membership test.
    pub fn contains(&self, t: &[EntityId]) -> bool {
        self.tuples.contains(t)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}/{} ({} tuples)", self.name, self.arity, self.len())
    }
}

/// A named collection of relations — the relational image of an ISIS
/// database.
#[derive(Debug, Clone, Default)]
pub struct RelationalDb {
    relations: HashMap<String, Relation>,
}

impl RelationalDb {
    /// An empty relational database.
    pub fn new() -> RelationalDb {
        RelationalDb::default()
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, r: Relation) {
        self.relations.insert(r.name.clone(), r);
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Iterates relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Relation> {
        let mut v: Vec<&Relation> = self.relations.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v.into_iter()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` when no relations are present.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

/// The relation name used for a class.
pub fn class_rel_name(db: &Database, c: ClassId) -> Result<String> {
    Ok(format!("class_{}", db.class(c)?.name))
}

/// The relation name used for an attribute (qualified by owner to stay
/// unique across the schema).
pub fn attr_rel_name(db: &Database, a: AttrId) -> Result<String> {
    let rec = db.attr(a)?;
    Ok(format!("attr_{}_{}", db.class(rec.owner)?.name, rec.name))
}

/// Encodes an ISIS database into its relational image.
pub fn encode_database(db: &Database) -> Result<RelationalDb> {
    let mut out = RelationalDb::new();
    for (cid, rec) in db.classes() {
        let r = Relation::from_tuples(
            class_rel_name(db, cid)?,
            1,
            rec.members.iter().map(|e| vec![e]),
        );
        out.insert(r);
    }
    for (aid, rec) in db.attrs() {
        let mut tuples = Vec::new();
        for e in db.class(rec.owner)?.members.iter() {
            for v in db.attr_value_set(e, aid)?.iter() {
                tuples.push(vec![e, v]);
            }
        }
        out.insert(Relation::from_tuples(attr_rel_name(db, aid)?, 2, tuples));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::instrumental_music;

    #[test]
    fn relation_basics() {
        let e = |i| EntityId::from_raw(i);
        let r = Relation::from_tuples(
            "t",
            2,
            [vec![e(1), e(2)], vec![e(1), e(2)], vec![e(3), e(4)]],
        );
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[e(1), e(2)]));
        assert!(!r.contains(&[e(2), e(1)]));
        assert!(!r.is_empty());
        assert!(Relation::empty("x", 1).is_empty());
    }

    #[test]
    fn encode_covers_classes_and_attrs() {
        let im = instrumental_music().unwrap();
        let rdb = encode_database(&im.db).unwrap();
        let musicians = rdb.get("class_musicians").unwrap();
        assert_eq!(musicians.arity, 1);
        assert_eq!(musicians.len(), im.all_musicians.len());
        let plays = rdb.get("attr_musicians_plays").unwrap();
        assert_eq!(plays.arity, 2);
        // Edith plays viola and violin.
        assert!(plays.contains(&[im.edith, im.viola]));
        assert!(plays.contains(&[im.edith, im.violin]));
        // Derived subclass extents are encoded too.
        let ps = rdb.get("class_play_strings").unwrap();
        assert_eq!(ps.len(), im.db.members(im.play_strings).unwrap().len());
    }

    #[test]
    fn encode_expands_counts() {
        let im = instrumental_music().unwrap();
        let rdb = encode_database(&im.db).unwrap();
        let plays = rdb.get("attr_musicians_plays").unwrap();
        let expected: usize = im
            .all_musicians
            .iter()
            .map(|m| im.db.attr_value_set(*m, im.plays).unwrap().len())
            .sum();
        assert_eq!(plays.len(), expected);
    }
}
