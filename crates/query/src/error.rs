//! Error type for query processing.

use std::fmt;

use isis_core::CoreError;

/// Errors raised by the relational engine, compiler and baselines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// A base relation name did not resolve.
    NoSuchRelation(String),
    /// A structurally invalid plan (arity mismatch, bad column, …).
    BadPlan(String),
    /// A QBE template was malformed.
    BadTemplate(String),
    /// An error bubbled up from the data-model engine.
    Core(CoreError),
    /// A predicate shape the compiler does not support.
    Unsupported(String),
    /// A parallel evaluation worker panicked; the panic was contained and
    /// surfaced instead of aborting the session.
    WorkerPanic(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NoSuchRelation(n) => write!(f, "no such relation: {n:?}"),
            QueryError::BadPlan(m) => write!(f, "bad plan: {m}"),
            QueryError::BadTemplate(m) => write!(f, "bad QBE template: {m}"),
            QueryError::Core(e) => write!(f, "core error: {e}"),
            QueryError::Unsupported(m) => write!(f, "unsupported: {m}"),
            QueryError::WorkerPanic(m) => write!(f, "evaluation worker panicked: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> Self {
        QueryError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = QueryError::from(CoreError::Predefined);
        assert!(e.to_string().contains("core error"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(QueryError::BadPlan("x".into()).source().is_none());
    }
}
