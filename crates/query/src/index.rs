//! Inverted attribute indexes.
//!
//! The groupings of §2 are, operationally, inverted indexes on an attribute
//! ("grouping G of C on A … Sₑ = { x | e ∈ A(x) }"). This module makes that
//! explicit: an [`AttrIndex`] maps each value entity to the set of owners
//! carrying it, and [`IndexedEvaluator`] uses such indexes to answer
//! single-step constant atoms without scanning the class extent — the
//! speed-up the grouping/index benches measure.

use std::collections::HashMap;

use isis_core::{Atom, AttrId, ClassId, Database, EntityId, OrderedSet, Predicate, Result};

use crate::service::IndexService;

/// An inverted index over one attribute: value → owners.
#[derive(Debug, Clone)]
pub struct AttrIndex {
    attr: AttrId,
    postings: HashMap<EntityId, OrderedSet>,
    indexed_owner_count: usize,
}

impl AttrIndex {
    /// Builds the index for `attr` over the current members of its owner
    /// class (expanded values, like map evaluation).
    pub fn build(db: &Database, attr: AttrId) -> Result<AttrIndex> {
        let owner = db.attr(attr)?.owner;
        let mut postings: HashMap<EntityId, OrderedSet> = HashMap::new();
        let members: Vec<EntityId> = db.members(owner)?.iter().collect();
        for x in &members {
            for v in db.attr_value_set(*x, attr)?.iter() {
                postings.entry(v).or_default().insert(*x);
            }
        }
        Ok(AttrIndex {
            attr,
            postings,
            indexed_owner_count: members.len(),
        })
    }

    /// The attribute this index covers.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Owners whose value set contains `value`.
    pub fn owners_of(&self, value: EntityId) -> Option<&OrderedSet> {
        self.postings.get(&value)
    }

    /// Number of distinct values in the index.
    pub fn distinct_values(&self) -> usize {
        self.postings.len()
    }

    /// Iterates the distinct values currently present in the index.
    pub fn values(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.postings.keys().copied()
    }

    /// How many owner entities were indexed when the index was built.
    pub fn indexed_owner_count(&self) -> usize {
        self.indexed_owner_count
    }

    /// Estimated selectivity of `value`: fraction of owners carrying it.
    pub fn selectivity(&self, value: EntityId) -> f64 {
        if self.indexed_owner_count == 0 {
            return 0.0;
        }
        self.owners_of(value).map_or(0.0, |s| s.len() as f64) / self.indexed_owner_count as f64
    }

    /// The values `owner` currently carries according to the index, by
    /// reverse scan of the posting lists. O(distinct values); used when the
    /// true old value set is unavailable (e.g. owner-extent changes).
    pub fn owned_values(&self, owner: EntityId) -> OrderedSet {
        let mut out = OrderedSet::new();
        for (v, owners) in &self.postings {
            if owners.contains(owner) {
                out.insert(*v);
            }
        }
        out
    }

    /// Every owner currently present in some posting list (owners with an
    /// empty value set do not appear). Used by maintenance to bound the
    /// blast radius of a change that can move *any* stored value, e.g. a
    /// grouping re-keyed by its base attribute.
    pub fn all_owners(&self) -> OrderedSet {
        let mut out = OrderedSet::new();
        for owners in self.postings.values() {
            out.extend_from(owners);
        }
        out
    }

    /// Incrementally reflects a change of `owner`'s value set from `old` to
    /// `new` (used by the incremental maintenance machinery).
    pub fn update(&mut self, owner: EntityId, old: &OrderedSet, new: &OrderedSet) {
        for v in old.iter() {
            if !new.contains(v) {
                if let Some(s) = self.postings.get_mut(&v) {
                    s.remove(owner);
                    if s.is_empty() {
                        self.postings.remove(&v);
                    }
                }
            }
        }
        for v in new.iter() {
            if !old.contains(v) {
                self.postings.entry(v).or_default().insert(owner);
            }
        }
    }
}

/// Read access to a keyed collection of inverted attribute indexes.
///
/// Implemented by the raw `HashMap` store, by [`crate::IndexManager`], and
/// by [`crate::IndexService`], so maintenance code that *walks* indexes
/// (e.g. [`crate::DerivedMaintainer`]) can run against private or shared
/// index sets interchangeably.
pub trait IndexLookup {
    /// The index registered for `attr`, if any.
    fn index_for(&self, attr: AttrId) -> Option<&AttrIndex>;
}

impl IndexLookup for HashMap<AttrId, AttrIndex> {
    fn index_for(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.get(&attr)
    }
}

/// A predicate evaluator that exploits attribute indexes for *indexable*
/// atoms — single-step, non-negated `~` / `⊇` / `=` comparisons against a
/// plain constant set — and falls back to per-entity evaluation otherwise.
///
/// Since the shared-index refactor this is a thin facade over an owned
/// [`IndexService`]: callers that want planner statistics, explicit access
/// paths, or delta-driven maintenance should use the service directly.
#[derive(Debug, Default)]
pub struct IndexedEvaluator {
    service: IndexService,
}

impl IndexedEvaluator {
    /// An evaluator with no indexes (pure fallback).
    pub fn new() -> IndexedEvaluator {
        IndexedEvaluator::default()
    }

    /// Builds and registers an index for `attr`.
    pub fn add_index(&mut self, db: &Database, attr: AttrId) -> Result<()> {
        self.service.ensure_index(db, attr).map(|_| ())
    }

    /// Access a registered index.
    pub fn index(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.service.index(attr)
    }

    /// `true` if the atom can be answered from a registered index.
    pub fn indexable(&self, atom: &Atom) -> bool {
        self.service.indexable(atom)
    }

    /// The shared index service backing this evaluator.
    pub fn service(&self) -> &IndexService {
        &self.service
    }

    /// Mutable access to the backing service (refresh, more indexes).
    pub fn service_mut(&mut self) -> &mut IndexService {
        &mut self.service
    }

    /// Unwraps the backing service.
    pub fn into_service(self) -> IndexService {
        self.service
    }

    /// Evaluates a whole DNF/CNF predicate over `parent`, using indexes to
    /// prune candidates where possible. Semantically identical to
    /// [`Database::evaluate_derived_members`].
    pub fn evaluate(&self, db: &Database, parent: ClassId, pred: &Predicate) -> Result<OrderedSet> {
        self.service.evaluate(db, parent, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_core::{Clause, CompareOp, Map, Operator, Rhs};
    use isis_sample::{instrumental_music, quartets_predicate};

    #[test]
    fn index_matches_grouping_sets() {
        let im = instrumental_music().unwrap();
        let idx = AttrIndex::build(&im.db, im.family).unwrap();
        for set in im.db.grouping_sets(im.by_family).unwrap() {
            match idx.owners_of(set.index) {
                Some(owners) => assert!(owners.set_eq(&set.members)),
                None => assert!(set.members.is_empty()),
            }
        }
        assert_eq!(idx.attr(), im.family);
        assert!(idx.selectivity(im.stringed) > 0.0);
        assert_eq!(idx.selectivity(im.woodwind), 0.0);
    }

    #[test]
    fn incremental_update_tracks_rebuild() {
        let mut im = instrumental_music().unwrap();
        let mut idx = AttrIndex::build(&im.db, im.family).unwrap();
        let old = im.db.attr_value_set(im.flute, im.family).unwrap();
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        let new = im.db.attr_value_set(im.flute, im.family).unwrap();
        idx.update(im.flute, &old, &new);
        let rebuilt = AttrIndex::build(&im.db, im.family).unwrap();
        assert_eq!(
            idx.owners_of(im.woodwind).map(|s| s.len()),
            rebuilt.owners_of(im.woodwind).map(|s| s.len())
        );
        assert!(idx.owners_of(im.woodwind).unwrap().contains(im.flute));
        assert!(!idx.owners_of(im.brass).unwrap().contains(im.flute));
    }

    #[test]
    fn indexed_evaluation_agrees_with_scan() {
        let mut im = instrumental_music().unwrap();
        let mut ev = IndexedEvaluator::new();
        ev.add_index(&im.db, im.size).unwrap();
        ev.add_index(&im.db, im.plays).unwrap();
        let pred = quartets_predicate(&mut im);
        // Note: the quartets predicate's first clause uses a 2-step map, so
        // only the size clause is indexable — still prunes the pool.
        let via_index = ev.evaluate(&im.db, im.music_groups, &pred).unwrap();
        let via_scan = im
            .db
            .evaluate_derived_members(im.music_groups, &pred)
            .unwrap();
        assert!(via_index.set_eq(&via_scan));
    }

    #[test]
    fn dnf_union_pruning_agrees() {
        let im = instrumental_music().unwrap();
        let mut ev = IndexedEvaluator::new();
        ev.add_index(&im.db, im.plays).unwrap();
        let mk = |inst| {
            Clause::new(vec![Atom::new(
                Map::single(im.plays),
                CompareOp::Match,
                Rhs::constant(im.instruments, [inst]),
            )])
        };
        let pred = Predicate::dnf(vec![mk(im.piano), mk(im.viola)]);
        let a = ev.evaluate(&im.db, im.musicians, &pred).unwrap();
        let b = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(a.set_eq(&b));
        assert!(!a.is_empty());
    }

    #[test]
    fn non_indexable_atoms_fall_back() {
        let im = instrumental_music().unwrap();
        let mut ev = IndexedEvaluator::new();
        ev.add_index(&im.db, im.plays).unwrap();
        // Negated atom: not indexable, still correct.
        let atom = Atom::new(
            Map::single(im.plays),
            Operator::negated(CompareOp::Match),
            Rhs::constant(im.instruments, [im.piano]),
        );
        assert!(!ev.indexable(&atom));
        let pred = Predicate::dnf(vec![Clause::new(vec![atom])]);
        let a = ev.evaluate(&im.db, im.musicians, &pred).unwrap();
        let b = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn superset_intersects_posting_lists() {
        let im = instrumental_music().unwrap();
        let mut ev = IndexedEvaluator::new();
        ev.add_index(&im.db, im.plays).unwrap();
        let atom = Atom::new(
            Map::single(im.plays),
            CompareOp::Superset,
            Rhs::constant(im.instruments, [im.viola, im.violin]),
        );
        let pred = Predicate::cnf(vec![Clause::new(vec![atom])]);
        let a = ev.evaluate(&im.db, im.musicians, &pred).unwrap();
        let b = im.db.evaluate_derived_members(im.musicians, &pred).unwrap();
        assert!(a.set_eq(&b));
        // Edith and Gil play both.
        assert_eq!(a.len(), 2);
    }
}
