//! Index lifecycle management driven by the core delta log.
//!
//! [`IndexManager`] owns a set of [`AttrIndex`]es and keeps them current by
//! consuming [`ChangeSet`]s instead of rebuilding from scratch: it remembers
//! the database's delta epoch, and on [`IndexManager::refresh`] asks for
//! `changes_since(cursor)` and applies each `(entity, attr, old, new)`
//! transition to the affected posting lists. Full rebuilds happen only when
//! the log window has been evicted (or the database was swapped under us,
//! e.g. by undo), when a schema edit arrives, or for grouping-ranged
//! attributes whose expansion cannot be patched from a raw transition.

use std::collections::HashMap;

use isis_core::{
    AttrId, AttrValue, Change, ChangeSet, ClassId, Database, EntityId, OrderedSet, Result,
    SchemaEdit, ValueClass,
};

use crate::index::{AttrIndex, IndexLookup};

/// Counters describing how an [`IndexManager`] kept its indexes current.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Individual posting-list patches applied from deltas.
    pub incremental_updates: usize,
    /// Full single-index rebuilds (schema edits, grouping expansion,
    /// evicted log windows).
    pub rebuilds: usize,
}

/// Owns inverted attribute indexes and applies [`ChangeSet`]s to them
/// incrementally.
#[derive(Debug, Default)]
pub struct IndexManager {
    indexes: HashMap<AttrId, AttrIndex>,
    /// Owner class of each indexed attribute (membership changes there
    /// add/remove whole owner rows).
    owners: HashMap<AttrId, ClassId>,
    /// For a grouping-ranged indexed attribute, the attribute the grouping
    /// is defined on: transitions of that attribute change the expansion of
    /// every stored index value, forcing a rebuild.
    grouping_bases: HashMap<AttrId, AttrId>,
    cursor: u64,
    stats: IndexStats,
}

impl IndexManager {
    /// An empty manager synchronised to the database's current epoch.
    pub fn new(db: &Database) -> IndexManager {
        IndexManager {
            indexes: HashMap::new(),
            owners: HashMap::new(),
            grouping_bases: HashMap::new(),
            cursor: db.delta_epoch(),
            stats: IndexStats::default(),
        }
    }

    /// Builds and registers an index for `attr`.
    pub fn add_index(&mut self, db: &Database, attr: AttrId) -> Result<()> {
        let rec = db.attr(attr)?;
        self.owners.insert(attr, rec.owner);
        if let ValueClass::Grouping(g) = rec.value_class {
            self.grouping_bases.insert(attr, db.grouping(g)?.on_attr);
        }
        self.indexes.insert(attr, AttrIndex::build(db, attr)?);
        Ok(())
    }

    /// Access a registered index.
    pub fn index(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.indexes.get(&attr)
    }

    /// The attributes currently indexed.
    pub fn indexed_attrs(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.indexes.keys().copied()
    }

    /// Maintenance counters accumulated so far.
    pub fn stats(&self) -> IndexStats {
        self.stats
    }

    /// The delta epoch the indexes are synchronised to.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Re-anchors the cursor. For coordinators that drain the delta log
    /// themselves and feed this manager explicit windows via
    /// [`IndexManager::apply`].
    pub fn set_cursor(&mut self, epoch: u64) {
        self.cursor = epoch;
    }

    /// Brings every index up to date with `db`, consuming the delta log
    /// from the manager's cursor. Falls back to full rebuilds when the
    /// window is gone (or the cursor is from another database line).
    pub fn refresh(&mut self, db: &Database) -> Result<()> {
        let changes = match db.changes_since(self.cursor) {
            Some(c) => c,
            None => {
                self.rebuild_all(db)?;
                self.cursor = db.delta_epoch();
                return Ok(());
            }
        };
        self.apply(db, &changes)?;
        self.cursor = db.delta_epoch();
        Ok(())
    }

    /// Applies one [`ChangeSet`] to the registered indexes. The set must
    /// describe the transition from the indexes' current state to `db`'s
    /// (as [`IndexManager::refresh`] guarantees).
    pub fn apply(&mut self, db: &Database, changes: &ChangeSet) -> Result<()> {
        if changes.has_schema_changes() {
            // Schema edits can delete indexed attributes, retarget value
            // classes, or reshape groupings; rebuild wholesale.
            self.drop_dead_and_rebuild(db, changes)?;
            return Ok(());
        }
        for change in changes.iter() {
            match change {
                Change::AttrAssigned {
                    entity,
                    attr,
                    old,
                    new,
                } => self.apply_transition(db, *entity, *attr, old, new)?,
                Change::MembershipAdded { entity, class } => {
                    self.apply_owner_joined(db, *entity, *class)?;
                }
                Change::MembershipRemoved { entity, class } => {
                    self.apply_owner_left(*entity, *class);
                }
                Change::EntityInserted { .. }
                | Change::EntityDeleted { .. }
                | Change::EntityRenamed { .. }
                | Change::Schema(_) => {}
            }
        }
        Ok(())
    }

    /// Rebuilds every grouping-ranged index whose grouping is keyed by
    /// `attr`: a transition of the base attribute re-partitions the
    /// grouping, changing the expansion of every stored index value.
    fn rebuild_dependents(&mut self, db: &Database, attr: AttrId) -> Result<()> {
        let dependents: Vec<AttrId> = self
            .grouping_bases
            .iter()
            .filter(|(_, &base)| base == attr)
            .map(|(&a, _)| a)
            .collect();
        for a in dependents {
            self.indexes.insert(a, AttrIndex::build(db, a)?);
            self.stats.rebuilds += 1;
        }
        Ok(())
    }

    /// Re-reads the current values of the `owners` entities for `attr` and
    /// patches the posting lists accordingly (grouping-ranged indexes and
    /// dependent grouping-ranged indexes rebuild instead). For callers that
    /// know which owners changed without having a delta window.
    pub fn refresh_owners(
        &mut self,
        db: &Database,
        attr: AttrId,
        owners: &OrderedSet,
    ) -> Result<()> {
        self.rebuild_dependents(db, attr)?;
        if !self.indexes.contains_key(&attr) {
            return Ok(());
        }
        if self.grouping_bases.contains_key(&attr) {
            self.indexes.insert(attr, AttrIndex::build(db, attr)?);
            self.stats.rebuilds += 1;
            return Ok(());
        }
        for e in owners.iter() {
            let new = db.attr_value_set(e, attr)?;
            if let Some(idx) = self.indexes.get_mut(&attr) {
                let old = idx.owned_values(e);
                idx.update(e, &old, &new);
                self.stats.incremental_updates += 1;
            }
        }
        Ok(())
    }

    fn apply_transition(
        &mut self,
        db: &Database,
        entity: EntityId,
        attr: AttrId,
        old: &AttrValue,
        new: &AttrValue,
    ) -> Result<()> {
        self.rebuild_dependents(db, attr)?;
        if let Some(idx) = self.indexes.get_mut(&attr) {
            if self.grouping_bases.contains_key(&attr) {
                // Grouping-ranged: the stored transition is in index
                // entities, but postings hold expanded members.
                *idx = AttrIndex::build(db, attr)?;
                self.stats.rebuilds += 1;
            } else {
                idx.update(entity, &old.as_set(), &new.as_set());
                self.stats.incremental_updates += 1;
            }
        }
        Ok(())
    }

    fn apply_owner_joined(
        &mut self,
        db: &Database,
        entity: EntityId,
        class: ClassId,
    ) -> Result<()> {
        let attrs: Vec<AttrId> = self
            .owners
            .iter()
            .filter(|(_, &o)| o == class)
            .map(|(&a, _)| a)
            .collect();
        if db.entity(entity).is_err() {
            // The entity was deleted later in the same window; the deletion's
            // own MembershipRemoved/AttrAssigned entries settle the index.
            return Ok(());
        }
        for attr in attrs {
            // (Re)credit any values the entity already carries — it may
            // have kept them across an earlier membership removal.
            let new = db.attr_value_set(entity, attr)?;
            if let Some(idx) = self.indexes.get_mut(&attr) {
                let old = idx.owned_values(entity);
                idx.update(entity, &old, &new);
                self.stats.incremental_updates += 1;
            }
        }
        Ok(())
    }

    fn apply_owner_left(&mut self, entity: EntityId, class: ClassId) {
        let attrs: Vec<AttrId> = self
            .owners
            .iter()
            .filter(|(_, &o)| o == class)
            .map(|(&a, _)| a)
            .collect();
        for attr in attrs {
            if let Some(idx) = self.indexes.get_mut(&attr) {
                let old = idx.owned_values(entity);
                if !old.is_empty() {
                    idx.update(entity, &old, &OrderedSet::new());
                    self.stats.incremental_updates += 1;
                }
            }
        }
    }

    fn drop_dead_and_rebuild(&mut self, db: &Database, changes: &ChangeSet) -> Result<()> {
        for change in changes.iter() {
            if let Change::Schema(SchemaEdit::AttrDeleted(a) | SchemaEdit::ValueClassChanged(a)) =
                change
            {
                self.indexes.remove(a);
                self.owners.remove(a);
                self.grouping_bases.remove(a);
            }
        }
        self.rebuild_all(db)
    }

    fn rebuild_all(&mut self, db: &Database) -> Result<()> {
        let attrs: Vec<AttrId> = self.indexes.keys().copied().collect();
        for attr in attrs {
            if db.attr(attr).is_err() {
                self.indexes.remove(&attr);
                self.owners.remove(&attr);
                self.grouping_bases.remove(&attr);
                continue;
            }
            self.indexes.insert(attr, AttrIndex::build(db, attr)?);
            self.stats.rebuilds += 1;
        }
        Ok(())
    }
}

impl IndexLookup for IndexManager {
    fn index_for(&self, attr: AttrId) -> Option<&AttrIndex> {
        self.indexes.get(&attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isis_sample::instrumental_music;

    fn assert_index_fresh(mgr: &IndexManager, db: &Database, attr: AttrId) {
        let live = AttrIndex::build(db, attr).unwrap();
        let idx = mgr.index(attr).unwrap();
        assert_eq!(idx.distinct_values(), live.distinct_values());
        for v in live.values() {
            let a = idx.owners_of(v).unwrap();
            let b = live.owners_of(v).unwrap();
            assert!(a.set_eq(b), "postings diverge for value {v:?}");
        }
    }

    #[test]
    fn refresh_applies_value_transitions() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.plays).unwrap();
        mgr.add_index(&im.db, im.family).unwrap();
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        mgr.refresh(&im.db).unwrap();
        assert_index_fresh(&mgr, &im.db, im.plays);
        assert_index_fresh(&mgr, &im.db, im.family);
        assert!(mgr.stats().incremental_updates >= 2);
        assert_eq!(mgr.stats().rebuilds, 0);
    }

    #[test]
    fn refresh_handles_inserts_and_deletes() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.plays).unwrap();
        let newbie = im.db.insert_entity(im.musicians, "Newbie").unwrap();
        im.db.add_value(newbie, im.plays, im.viola).unwrap();
        let dave = im.db.entity_by_name(im.musicians, "Dave").unwrap();
        im.db.delete_entity(dave).unwrap();
        mgr.refresh(&im.db).unwrap();
        assert_index_fresh(&mgr, &im.db, im.plays);
    }

    #[test]
    fn schema_change_triggers_rebuild() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.plays).unwrap();
        im.db.create_baseclass("venues").unwrap();
        mgr.refresh(&im.db).unwrap();
        assert!(mgr.stats().rebuilds >= 1);
        assert_index_fresh(&mgr, &im.db, im.plays);
    }

    #[test]
    fn stale_cursor_falls_back_to_rebuild() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.plays).unwrap();
        // Simulate an undo: replace the database with an older clone whose
        // delta log is behind the cursor.
        let old = im.db.clone();
        im.db.add_value(im.edith, im.plays, im.piano).unwrap();
        mgr.refresh(&im.db).unwrap();
        let restored = old;
        // cursor is now ahead of restored's epoch → None → rebuild.
        mgr.refresh(&restored).unwrap();
        assert_index_fresh(&mgr, &restored, im.plays);
    }

    #[test]
    fn grouping_rekeyed_mid_drain_keeps_ranged_index_fresh() {
        use isis_core::Multiplicity;
        let mut im = instrumental_music().unwrap();
        // sections: music_groups → by_family sets; its index postings hold
        // the *expanded* members of each named family set.
        let sections = im
            .db
            .create_attribute(
                im.music_groups,
                "sections",
                im.by_family,
                Multiplicity::Multi,
            )
            .unwrap();
        im.db
            .assign_multi(im.labelle, sections, [im.stringed, im.keyboard])
            .unwrap();
        let fling = im
            .db
            .entity_by_name(im.music_groups, "String Fling")
            .unwrap();
        im.db.assign_multi(fling, sections, [im.brass]).unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, sections).unwrap();
        mgr.add_index(&im.db, im.family).unwrap();
        // One window interleaving a sections edit, the grouping re-key
        // (flute leaves brass for woodwind, re-partitioning by_family and
        // thus the expansion of every sections value), and another edit.
        im.db
            .assign_multi(fling, sections, [im.percussion])
            .unwrap();
        im.db
            .assign_single(im.flute, im.family, im.woodwind)
            .unwrap();
        im.db
            .assign_multi(im.labelle, sections, [im.brass, im.keyboard])
            .unwrap();
        mgr.refresh(&im.db).unwrap();
        assert_index_fresh(&mgr, &im.db, sections);
        assert_index_fresh(&mgr, &im.db, im.family);
        assert!(
            mgr.stats().rebuilds >= 1,
            "base-attr move must rebuild the dependent ranged index"
        );
        // The stale-range smoking gun: flute must no longer be credited to
        // owners whose sections still name brass.
        let idx = mgr.index(sections).unwrap();
        if let Some(owners) = idx.owners_of(im.flute) {
            assert!(!owners.is_empty())
        }
        let live = AttrIndex::build(&im.db, sections).unwrap();
        assert_eq!(
            idx.owners_of(im.flute).map(|s| s.len()),
            live.owners_of(im.flute).map(|s| s.len())
        );
    }

    #[test]
    fn refresh_owners_patches_point_changes() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.plays).unwrap();
        let gil = im.db.entity_by_name(im.musicians, "Gil").unwrap();
        im.db.add_value(gil, im.plays, im.piano).unwrap();
        let owners: OrderedSet = [gil].into_iter().collect();
        mgr.refresh_owners(&im.db, im.plays, &owners).unwrap();
        assert_index_fresh(&mgr, &im.db, im.plays);
        assert_eq!(mgr.stats().rebuilds, 0);
    }

    #[test]
    fn deleted_attr_index_is_dropped() {
        let mut im = instrumental_music().unwrap();
        let mut mgr = IndexManager::new(&im.db);
        mgr.add_index(&im.db, im.popular).unwrap();
        im.db.delete_attr(im.popular).unwrap();
        mgr.refresh(&im.db).unwrap();
        assert!(mgr.index(im.popular).is_none());
    }
}
